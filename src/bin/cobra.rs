//! `cobra` — command-line front end to the compression pipeline.
//!
//! ```text
//! cobra demo
//!     Run the paper's running example end to end.
//!
//! cobra compress --polys FILE --tree TREE --bound N
//!                [--scenario v=1.1,w=0.8] [--trace] [--sensitivity]
//!                [--dag]
//!     Compress a polynomial file (text interchange format: one
//!     `label = polynomial` per line) against an abstraction tree
//!     (inline text like `Plans(Standard(p1,p2), v)` or `@file`),
//!     then optionally evaluate a what-if scenario. `--dag` adds
//!     algebraic compression: the compiled engines are factored into
//!     shared-subterm DAG programs (fewer multiplies, identical
//!     results) and the rewrite accounting is printed.
//!
//! cobra serve [--addr HOST:PORT] [--store DIR] [--kernel TARGET]
//!             [--max-sessions N]
//!     Run the COBRA sweep server (length-prefixed JSON frames over
//!     TCP). `--store` enables the persistent session tier;
//!     `--kernel` pins the batch kernel (auto | scalar | avx2 |
//!     avx2fma) for every session worker; `--max-sessions` caps the
//!     live in-memory tier, evicting least-recently-used sessions to
//!     the store directory.
//! ```

use cobra::core::{CobraSession, SensitivityReport};
use cobra::provenance::Valuation;
use cobra::util::Rat;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("cobra: {message}");
            eprintln!("usage: cobra demo | cobra compress --polys FILE --tree TREE --bound N [--scenario v=1.1,...] [--trace] [--sensitivity] [--dag] | cobra serve [--addr HOST:PORT] [--store DIR] [--kernel auto|scalar|avx2|avx2fma] [--max-sessions N]");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `compress` invocation.
#[derive(Debug, Default, PartialEq)]
struct CompressArgs {
    polys: String,
    tree: String,
    bound: u64,
    scenario: Vec<(String, Rat)>,
    trace: bool,
    sensitivity: bool,
    dag: bool,
}

fn parse_compress_args(args: &[String]) -> Result<CompressArgs, String> {
    let mut out = CompressArgs::default();
    let mut bound = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--polys" => out.polys = value()?,
            "--tree" => out.tree = value()?,
            "--bound" => {
                bound = Some(
                    value()?
                        .replace(',', "")
                        .parse::<u64>()
                        .map_err(|e| format!("--bound: {e}"))?,
                )
            }
            "--scenario" => {
                for part in value()?.split(',') {
                    let (name, factor) = part
                        .split_once('=')
                        .ok_or_else(|| format!("--scenario entries are var=factor, got {part:?}"))?;
                    let factor = Rat::parse(factor.trim())
                        .map_err(|e| format!("--scenario {name}: {e}"))?;
                    out.scenario.push((name.trim().to_owned(), factor));
                }
            }
            "--trace" => out.trace = true,
            "--sensitivity" => out.sensitivity = true,
            "--dag" => out.dag = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if out.polys.is_empty() {
        return Err("--polys is required".into());
    }
    if out.tree.is_empty() {
        return Err("--tree is required".into());
    }
    out.bound = bound.ok_or("--bound is required")?;
    Ok(out)
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("demo") => demo(),
        Some("compress") => compress(parse_compress_args(&args[1..])?),
        Some("serve") => serve(parse_serve_args(&args[1..])?),
        _ => Err("expected a subcommand: demo | compress | serve".into()),
    }
}

fn parse_serve_args(args: &[String]) -> Result<cobra::server::ServerConfig, String> {
    let mut config = cobra::server::ServerConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value()?,
            "--store" => config.store_dir = Some(value()?.into()),
            "--kernel" => {
                config.kernel = value()?
                    .parse()
                    .map_err(|e: cobra::util::kernel::UnknownKernelTarget| e.to_string())?
            }
            "--max-sessions" => {
                config.max_sessions = Some(
                    value()?
                        .parse::<usize>()
                        .map_err(|e| format!("--max-sessions: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(config)
}

fn serve(config: cobra::server::ServerConfig) -> Result<(), String> {
    let server = cobra::server::serve(config).map_err(|e| format!("cannot bind: {e}"))?;
    println!("listening on {}", server.addr());
    server.join();
    Ok(())
}

fn demo() -> Result<(), String> {
    use cobra::datagen::telephony::Telephony;
    let telephony = Telephony::paper_example();
    let polys = telephony.revenue_polyset();
    println!("Provenance of the paper's revenue query (Example 2):");
    print!("{}", polys.display(&telephony.reg));
    let mut session = CobraSession::new(telephony.reg, polys);
    session
        .add_tree_text(
            "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))",
        )
        .map_err(|e| e.to_string())?;
    session.set_bound(6);
    let report = session.compress().map_err(|e| e.to_string())?;
    println!("\n{report}");
    println!("Compressed polynomials:");
    print!(
        "{}",
        session
            .compressed_polynomials()
            .map_err(|e| e.to_string())?
            .display(session.registry())
    );
    Ok(())
}

fn compress(args: CompressArgs) -> Result<(), String> {
    // load polynomials
    let text = std::fs::read_to_string(&args.polys)
        .map_err(|e| format!("cannot read {}: {e}", args.polys))?;
    let mut session = CobraSession::from_text(&text).map_err(|e| e.to_string())?;
    if args.trace {
        session.enable_trace();
    }

    // load tree (inline or @file)
    let tree_text = match args.tree.strip_prefix('@') {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?,
        None => args.tree.clone(),
    };
    session
        .add_tree_text(tree_text.trim())
        .map_err(|e| e.to_string())?;

    session.set_bound(args.bound);
    let report = session.compress().map_err(|e| e.to_string())?;
    println!("{report}");

    if args.dag {
        let dag_report = session.compile_dag().map_err(|e| e.to_string())?;
        println!("Algebraic compression:");
        println!("{dag_report}");
    }

    println!("Meta-variables:");
    for row in session.meta_summary().map_err(|e| e.to_string())? {
        let leaves: Vec<String> = row.leaves.iter().map(|(n, _)| n.clone()).collect();
        println!(
            "  {} = {{{}}}  (default {})",
            row.name,
            leaves.join(", "),
            row.default_value
        );
    }

    if !args.scenario.is_empty() {
        let mut valuation = Valuation::with_default(Rat::ONE);
        for (name, factor) in &args.scenario {
            let var = session.registry_mut().var(name);
            valuation.set(var, *factor);
        }
        let cmp = session.assign(&valuation).map_err(|e| e.to_string())?;
        println!("\nScenario results (full vs compressed):");
        for row in &cmp.rows {
            println!(
                "  {:<12} {:<14} {:<14} rel.err {:.6}",
                row.label,
                row.full.to_f64(),
                row.compressed.to_f64(),
                row.rel_error()
            );
        }
        println!(
            "max relative error: {:.6}{}",
            cmp.max_rel_error(),
            if cmp.is_exact() { " (exact)" } else { "" }
        );
    }

    if args.sensitivity {
        let report = SensitivityReport::compute(
            session.polynomials(),
            &Valuation::with_default(Rat::ONE),
        );
        println!("\nSensitivity ranking (at the all-ones valuation):");
        print!("{}", report.to_table(session.registry()));
    }

    if args.trace {
        println!("\nTrace:");
        for line in session.trace() {
            println!("  {line}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let args = parse_compress_args(&s(&[
            "--polys",
            "p.txt",
            "--tree",
            "T(a,b)",
            "--bound",
            "94,600",
            "--scenario",
            "m3=0.8, b1=1.1",
            "--trace",
            "--sensitivity",
            "--dag",
        ]))
        .unwrap();
        assert_eq!(args.polys, "p.txt");
        assert_eq!(args.bound, 94_600);
        assert_eq!(args.scenario.len(), 2);
        assert_eq!(args.scenario[0].0, "m3");
        assert_eq!(args.scenario[0].1, Rat::parse("0.8").unwrap());
        assert!(args.trace && args.sensitivity && args.dag);
    }

    #[test]
    fn rejects_missing_required_flags() {
        assert!(parse_compress_args(&s(&["--polys", "p"])).is_err());
        assert!(parse_compress_args(&s(&["--tree", "T(a)"])).is_err());
        assert!(parse_compress_args(&s(&["--polys", "p", "--tree", "t", "--bound"])).is_err());
        assert!(parse_compress_args(&s(&["--nope"])).is_err());
        assert!(parse_compress_args(&s(&[
            "--polys", "p", "--tree", "t", "--bound", "5", "--scenario", "novalue"
        ]))
        .is_err());
    }

    #[test]
    fn parses_serve_flags() {
        let config = parse_serve_args(&s(&["--addr", "0.0.0.0:7070", "--store", "/tmp/x"])).unwrap();
        assert_eq!(config.addr, "0.0.0.0:7070");
        assert_eq!(config.store_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(parse_serve_args(&[]).unwrap().addr, "127.0.0.1:0");
        assert!(parse_serve_args(&s(&["--addr"])).is_err());
        assert!(parse_serve_args(&s(&["--nope"])).is_err());

        use cobra::util::KernelTarget;
        assert_eq!(parse_serve_args(&[]).unwrap().kernel, KernelTarget::Auto);
        let config = parse_serve_args(&s(&["--kernel", "scalar"])).unwrap();
        assert_eq!(config.kernel, KernelTarget::Scalar);
        let config = parse_serve_args(&s(&["--kernel", "avx2+fma"])).unwrap();
        assert_eq!(config.kernel, KernelTarget::Avx2Fma);
        assert!(parse_serve_args(&s(&["--kernel", "sse9"])).is_err());

        assert_eq!(parse_serve_args(&[]).unwrap().max_sessions, None);
        let config = parse_serve_args(&s(&["--max-sessions", "8"])).unwrap();
        assert_eq!(config.max_sessions, Some(8));
        assert!(parse_serve_args(&s(&["--max-sessions", "lots"])).is_err());
    }

    #[test]
    fn run_demo_succeeds() {
        run(&s(&["demo"])).unwrap();
        assert!(run(&s(&["unknown"])).is_err());
        assert!(run(&[]).is_err());
    }
}
