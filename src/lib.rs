//! # COBRA — Compression via Abstraction of Provenance for Hypothetical Reasoning
//!
//! A from-scratch Rust reproduction of Deutch, Moskovitch & Rinetzky's
//! ICDE 2019 demonstration (arXiv:2007.05389), including every substrate
//! the paper depends on. This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`util`] (cobra-util) | exact rationals, interning, fast hashing, RNG, timing, tables |
//! | [`provenance`] (cobra-provenance) | provenance polynomials, semirings, valuations, text format |
//! | [`engine`] (cobra-engine) | provenance-aware SPJA query engine, SQL subset, K-relations |
//! | [`core`] (cobra-core) | abstraction trees, the exact DP compression optimizer, sessions |
//! | [`server`] (cobra-server) | COBRA-as-a-service: TCP sweep server, session store, coalescing |
//! | [`datagen`] (cobra-datagen) | telephony & TPC-H-style workloads, scenarios, synthetic inputs |
//!
//! ## The 30-second tour
//!
//! ```
//! use cobra::core::CobraSession;
//!
//! // Provenance polynomials from any engine (paper Example 2, abridged):
//! let mut session = CobraSession::from_text(
//!     "P1 = 208.8*p1*m1 + 127.4*f1*m1 + 75.9*y1*m1 + 42*v*m1",
//! ).unwrap();
//! // The Fig. 2 abstraction tree and a size bound:
//! session.add_tree_text(
//!     "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))",
//! ).unwrap();
//! session.set_bound(2);
//! // Compress: the optimizer groups the special plans, keeping the rest.
//! let report = session.compress().unwrap();
//! assert!(report.compressed_size <= 2);
//! ```
//!
//! See `examples/` for the full walk-throughs (quickstart, telephony at
//! paper scale, TPC-H, and the bound-sweep explorer) and EXPERIMENTS.md
//! for the paper-vs-measured tables.

pub use cobra_core as core;
pub use cobra_datagen as datagen;
pub use cobra_engine as engine;
pub use cobra_provenance as provenance;
pub use cobra_server as server;
pub use cobra_util as util;
