//! Experiment E1/E2: the paper's worked examples, verbatim.
//!
//! Example 2: the Figure 1 database + revenue query yield exactly the
//! polynomials `P1`, `P2`. Example 4: the cuts S1–S5 compress `P1` to the
//! stated monomial/variable counts and coefficients.

use cobra::core::{apply_cut, Cut, GroupAnalysis};
use cobra::datagen::telephony::Telephony;
use cobra::provenance::Monomial;
use cobra::util::Rat;

fn rat(s: &str) -> Rat {
    Rat::parse(s).unwrap()
}

/// The full Example 2 polynomials as printed in the paper.
const EXAMPLE2: [(&str, &str, &str); 14] = [
    ("10001", "p1", "208.8"),
    ("10001", "f1", "127.4"),
    ("10001", "y1", "75.9"),
    ("10001", "v", "42"),
    ("10002", "b1", "77.9"),
    ("10002", "e", "52.2"),
    ("10002", "b2", "69.7"),
    // month 3
    ("10001", "p1~m3", "240"),
    ("10001", "f1~m3", "114.45"),
    ("10001", "y1~m3", "72.5"),
    ("10001", "v~m3", "24.2"),
    ("10002", "b1~m3", "80.5"),
    ("10002", "e~m3", "56.5"),
    ("10002", "b2~m3", "100.65"),
];

#[test]
fn example2_polynomials_exactly() {
    let t = Telephony::paper_example();
    let set = t.revenue_polyset();
    assert_eq!(set.total_monomials(), 14);
    for (zip, spec, coeff) in EXAMPLE2 {
        let (plan, month) = match spec.split_once('~') {
            Some((p, m)) => (p, m),
            None => (spec, "m1"),
        };
        let poly = set.get(zip).expect("zip present");
        let m = Monomial::from_pairs([
            (t.reg.lookup(plan).unwrap(), 1),
            (t.reg.lookup(month).unwrap(), 1),
        ]);
        assert_eq!(poly.coeff_of(&m), rat(coeff), "{zip} {spec}");
    }
}

#[test]
fn example4_all_five_cuts() {
    let t = Telephony::paper_example();
    let set = t.revenue_polyset();
    let mut reg = t.reg.clone();
    let tree = Telephony::plans_tree(&mut reg);

    // (cut, expected monomials of P1, expected distinct vars of P1)
    let cases: [(&[&str], usize, usize); 5] = [
        (&["Business", "Special", "Standard"], 4, 4), // S1
        (&["SB", "e", "f1", "f2", "Y", "v", "Standard"], 8, 6), // S2
        (&["b1", "b2", "e", "Special", "Standard"], 4, 4), // S3
        (&["SB", "e", "F", "Y", "v", "p1", "p2"], 8, 6), // S4
        (&["Plans"], 2, 3),                           // S5
    ];
    for (names, p1_monomials, p1_vars) in cases {
        let cut = Cut::from_names(&tree, names).unwrap();
        let mut reg2 = reg.clone();
        let applied = apply_cut(&set, &tree, &cut, &mut reg2);
        let p1 = applied.compressed.get("10001").unwrap();
        assert_eq!(p1.num_terms(), p1_monomials, "cut {names:?}");
        assert_eq!(p1.vars().len(), p1_vars, "cut {names:?}");
    }
}

/// Example 4's printed coefficients for S1, including the sums
/// 245.3 = 127.4 + 75.9 + 42 and 211.15 = 114.45 + 72.5 + 24.2.
#[test]
fn example4_s1_printed_coefficients() {
    let t = Telephony::paper_example();
    let set = t.revenue_polyset();
    let mut reg = t.reg.clone();
    let tree = Telephony::plans_tree(&mut reg);
    let cut = Cut::from_names(&tree, &["Business", "Special", "Standard"]).unwrap();
    let applied = apply_cut(&set, &tree, &cut, &mut reg);
    let p1 = applied.compressed.get("10001").unwrap();
    let st = reg.lookup("Standard").unwrap();
    let sp = reg.lookup("Special").unwrap();
    let m1 = reg.lookup("m1").unwrap();
    let m3 = reg.lookup("m3").unwrap();
    for (a, b, expected) in [
        (st, m1, "208.8"),
        (st, m3, "240"),
        (sp, m1, "245.3"),
        (sp, m3, "211.15"),
    ] {
        assert_eq!(
            p1.coeff_of(&Monomial::from_pairs([(a, 1), (b, 1)])),
            rat(expected)
        );
    }
}

/// Example 4's S5 output — the paper prints `466.1·Plans·m1`, but the
/// Example 2 coefficients sum to 454.1; the m3 coefficient (451.15)
/// matches the paper exactly. Recorded as a paper typo in EXPERIMENTS.md.
#[test]
fn example4_s5_printed_coefficients_modulo_paper_typo() {
    let t = Telephony::paper_example();
    let set = t.revenue_polyset();
    let mut reg = t.reg.clone();
    let tree = Telephony::plans_tree(&mut reg);
    let applied = apply_cut(&set, &tree, &Cut::root(&tree), &mut reg);
    let p1 = applied.compressed.get("10001").unwrap();
    let plans = reg.lookup("Plans").unwrap();
    let m1 = reg.lookup("m1").unwrap();
    let m3 = reg.lookup("m3").unwrap();
    let c_m1 = p1.coeff_of(&Monomial::from_pairs([(plans, 1), (m1, 1)]));
    let c_m3 = p1.coeff_of(&Monomial::from_pairs([(plans, 1), (m3, 1)]));
    // sum of Example 2's m1 coefficients:
    assert_eq!(c_m1, rat("208.8") + rat("127.4") + rat("75.9") + rat("42"));
    assert_eq!(c_m1, rat("454.1")); // ≠ the paper's 466.1 (typo)
    assert_eq!(c_m3, rat("451.15")); // = the paper's value
}

/// The group-analysis size formula agrees with real application on every
/// cut of the Fig. 2 tree over the paper example.
#[test]
fn size_formula_matches_application_for_all_31_cuts() {
    let t = Telephony::paper_example();
    let set = t.revenue_polyset();
    let mut reg = t.reg.clone();
    let tree = Telephony::plans_tree(&mut reg);
    let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
    let cuts = cobra::core::enumerate_cuts(&tree, 100).unwrap();
    assert_eq!(cuts.len(), 31);
    for cut in cuts {
        let mut reg2 = reg.clone();
        let applied = apply_cut(&set, &tree, &cut, &mut reg2);
        assert_eq!(
            applied.compressed_size as u64,
            analysis.compressed_size(cut.nodes()),
            "cut {}",
            cut.display(&tree)
        );
    }
}
