//! The correctness guarantee of the whole approach (paper §1): applying a
//! valuation to the provenance polynomial yields the same result as
//! modifying the inputs and re-running the query.
//!
//! Property-tested end to end through the engine: random telephony-shaped
//! databases, random multiplicative scenarios, both evaluation orders.

use cobra::engine::{parameterize, Database, Relation, Value};
use cobra::provenance::{Monomial, Valuation, VarRegistry};
use cobra::util::Rat;
use proptest::prelude::*;

const QUERY: &str = "SELECT Zip, SUM(Calls.Dur * Plans.Price) AS revenue \
     FROM Calls, Cust, Plans \
     WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID AND Calls.Mo = Plans.Mo \
     GROUP BY Cust.Zip";

#[derive(Debug, Clone)]
struct Workload {
    customers: Vec<(usize, i64)>, // (plan index, zip)
    durations: Vec<Vec<i64>>,     // per customer, per month
    prices: Vec<Vec<i64>>,        // per plan, per month (cents)
    factors: Vec<Vec<(i64, i64)>>, // scenario factor per (plan, month) as num/den
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    let plans = 3usize;
    let months = 2usize;
    (1usize..6).prop_flat_map(move |n_cust| {
        (
            proptest::collection::vec((0..plans, 0i64..3), n_cust),
            proptest::collection::vec(
                proptest::collection::vec(1i64..500, months),
                n_cust,
            ),
            proptest::collection::vec(
                proptest::collection::vec(1i64..100, months),
                plans,
            ),
            proptest::collection::vec(
                proptest::collection::vec((0i64..30, 1i64..10), months),
                plans,
            ),
        )
            .prop_map(|(customers, durations, prices, factors)| Workload {
                customers,
                durations,
                prices,
                factors,
            })
    })
}

fn plan_name(i: usize) -> String {
    format!("PL{i}")
}

/// Builds the database; `scaled` applies the scenario factors directly to
/// the price table (the "re-execute on modified input" side).
fn build_db(w: &Workload, scaled: bool) -> Database {
    let months = w.durations[0].len();
    let mut cust_rows = Vec::new();
    for (i, (plan, zip)) in w.customers.iter().enumerate() {
        cust_rows.push(vec![
            Value::Int(i as i64 + 1),
            Value::str(&plan_name(*plan)),
            Value::Int(10_000 + zip),
        ]);
    }
    let mut call_rows = Vec::new();
    for (i, durs) in w.durations.iter().enumerate() {
        for (mo, &d) in durs.iter().enumerate() {
            call_rows.push(vec![
                Value::Int(i as i64 + 1),
                Value::Int(mo as i64 + 1),
                Value::Int(d),
            ]);
        }
    }
    let mut plan_rows = Vec::new();
    for (p, prices) in w.prices.iter().enumerate() {
        for (mo, &cents) in prices.iter().enumerate().take(months) {
            let mut price = Rat::new(cents as i128, 100);
            if scaled {
                let (num, den) = w.factors[p][mo];
                price *= Rat::new(num as i128, den as i128);
            }
            plan_rows.push(vec![
                Value::str(&plan_name(p)),
                Value::Int(mo as i64 + 1),
                Value::Num(price),
            ]);
        }
    }
    let mut db = Database::new();
    db.insert("Cust", Relation::from_rows(["ID", "Plan", "Zip"], cust_rows).unwrap());
    db.insert("Calls", Relation::from_rows(["CID", "Mo", "Dur"], call_rows).unwrap());
    db.insert(
        "Plans",
        Relation::from_rows(["Plan", "Mo", "Price"], plan_rows).unwrap(),
    );
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// eval(valuation, provenance(Q, D)) == Q(scale(D, valuation))
    #[test]
    fn valuation_commutes_with_reexecution(w in workload_strategy()) {
        let months = w.durations[0].len();
        // ── symbolic side: parameterize, run once, evaluate polynomial ──
        let mut reg = VarRegistry::new();
        let vars: Vec<Vec<_>> = (0..w.prices.len())
            .map(|p| {
                (0..months)
                    .map(|mo| reg.var(&format!("x_{p}_{mo}")))
                    .collect()
            })
            .collect();
        let mut db = build_db(&w, false);
        let plans_table = db.table_mut("Plans").unwrap();
        parameterize(plans_table, "Price", |row| {
            let p: usize = match &row[0] {
                Value::Str(s) => s[2..].parse().unwrap(),
                _ => return None,
            };
            let mo = match row[1] {
                Value::Int(m) => m as usize - 1,
                _ => return None,
            };
            Some(Monomial::var(vars[p][mo]))
        })
        .unwrap();
        let result = db.sql(QUERY).unwrap();
        let polys = result.extract_polyset(&["Zip"], "revenue").unwrap();

        let mut valuation = Valuation::with_default(Rat::ONE);
        for (p, row) in w.factors.iter().enumerate() {
            for (mo, (num, den)) in row.iter().enumerate() {
                valuation.set(vars[p][mo], Rat::new(*num as i128, *den as i128));
            }
        }
        let symbolic: Vec<(String, Rat)> = polys.eval(&valuation).unwrap();

        // ── concrete side: scale the input prices and re-run ───────────
        let db2 = build_db(&w, true);
        let rerun = db2.sql(QUERY).unwrap();
        let concrete = rerun.extract_polyset(&["Zip"], "revenue").unwrap();

        prop_assert_eq!(symbolic.len(), concrete.len());
        for (label, value) in &symbolic {
            let poly = concrete.get(label).expect("zip in re-run");
            // a fully concrete polynomial is a constant
            prop_assert_eq!(poly.num_terms() <= 1, true);
            let constant = poly.coeff_of(&Monomial::one());
            prop_assert_eq!(*value, constant, "zip {}", label);
        }
    }
}
