//! Ablation A1's correctness side: the greedy agglomerative baseline is
//! feasible but *strictly suboptimal* on a constructed witness, while the
//! DP is exactly optimal everywhere (property-tested on synthetic
//! workloads against the brute-force oracle elsewhere).

use cobra::core::{dp, optimize_greedy, AbstractionTree, GroupAnalysis};
use cobra::datagen::synthetic::{generate, SyntheticConfig};
use cobra::provenance::{parse_polyset, VarRegistry};
use proptest::prelude::*;

/// The trap: merging A has the better savings-per-variable ratio (2.0 vs
/// 1.5), but the bound only requires the savings that merging B alone
/// provides. Greedy commits to A first and is forced to merge both
/// (2 variables); the DP keeps A split (3 variables).
#[test]
fn greedy_is_strictly_suboptimal_on_ratio_trap() {
    let mut reg = VarRegistry::new();
    let tree = AbstractionTree::parse("T(A(a1,a2), B(b1,b2,b3))", &mut reg).unwrap();
    let set = parse_polyset(
        "P = 1*c1*a1 + 1*c1*a2 + 1*c2*a1 + 1*c2*a2 \
           + 1*c3*b1 + 1*c3*b2 + 1*c4*b2 + 1*c4*b3 + 1*c5*b1 + 1*c5*b3",
        &mut reg,
    )
    .unwrap();
    let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
    assert_eq!(analysis.total_monomials(), 10);

    let bound = 7; // requires saving ≥ 3: merging B alone saves exactly 3
    let greedy = optimize_greedy(&tree, &analysis, bound).unwrap();
    let exact = dp::optimize(&tree, &analysis, bound).unwrap();
    assert_eq!(exact.variables, 3, "DP keeps a1, a2, B");
    assert_eq!(exact.size, 7);
    assert_eq!(greedy.variables, 2, "greedy merged both subtrees");
    assert!(greedy.size <= bound);
    assert!(greedy.variables < exact.variables, "witnessed gap");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On random synthetic workloads: greedy is always feasible when the
    /// DP is, never exceeds the optimum, and both agree with the size
    /// formula.
    #[test]
    fn greedy_feasible_and_dominated_by_dp(
        leaves in 2usize..20,
        seed in 0u64..500,
        divisor in 1u64..6,
    ) {
        let synthetic = generate(SyntheticConfig {
            leaves,
            max_children: 4,
            polynomials: 2,
            contexts: 3,
            density: 0.5,
            seed,
        });
        let analysis = GroupAnalysis::analyze(&synthetic.set, &synthetic.tree)
            .expect("single-leaf monomials");
        let bound = (analysis.total_monomials() / divisor).max(1);
        match (
            optimize_greedy(&synthetic.tree, &analysis, bound),
            dp::optimize(&synthetic.tree, &analysis, bound),
        ) {
            (Ok(greedy), Ok(exact)) => {
                prop_assert!(greedy.size <= bound);
                prop_assert!(greedy.variables <= exact.variables);
                prop_assert_eq!(
                    analysis.compressed_size(greedy.cut.nodes()),
                    greedy.size
                );
            }
            (Err(_), Err(_)) => {} // both infeasible: consistent
            (greedy, exact) => {
                return Err(TestCaseError::fail(format!(
                    "feasibility disagreement: greedy {greedy:?} vs dp {exact:?}"
                )));
            }
        }
    }
}
