//! End-to-end tests for the COBRA sweep server: real TCP connections
//! against an ephemeral-port server, exercising the session store, the
//! request coalescer, the persistence tier, deadlines, and fault
//! isolation.

use cobra::server::json::{parse, Json};
use cobra::server::{serve, ServerConfig};
use cobra::util::framed::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

const POLYS: &str = "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3";
const TREE: &str = "Plans(Standard(p1,p2), v)";

fn connect(addr: SocketAddr) -> TcpStream {
    TcpStream::connect(addr).expect("connecting to the test server")
}

fn request(stream: &mut TcpStream, body: &str) -> Json {
    write_frame(stream, body.as_bytes()).unwrap();
    let bytes = read_frame(stream, DEFAULT_MAX_FRAME)
        .expect("reading the reply frame")
        .expect("server closed the connection mid-request");
    parse(std::str::from_utf8(&bytes).unwrap()).expect("reply is valid JSON")
}

fn assert_ok(reply: &Json) {
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "expected an ok reply, got {reply:?}"
    );
}

fn prepare(stream: &mut TcpStream, session: &str, persist: bool) -> Json {
    let body = Json::Obj(vec![
        ("op".into(), Json::Str("prepare".into())),
        ("session".into(), Json::Str(session.into())),
        ("polys".into(), Json::Str(POLYS.into())),
        ("tree".into(), Json::Str(TREE.into())),
        ("persist".into(), Json::Bool(persist)),
    ]);
    request(stream, &body.to_string())
}

fn select_bound(stream: &mut TcpStream, session: &str, bound: u64) -> Json {
    request(
        stream,
        &format!(r#"{{"op":"select_bound","session":{session:?},"bound":{bound}}}"#),
    )
}

fn sweep_request(session: &str, scenarios: &[(&str, &str)], deadline_ms: Option<u64>) -> String {
    let pairs: Vec<Json> = scenarios
        .iter()
        .map(|(var, factor)| {
            Json::Arr(vec![
                Json::Str((*var).to_owned()),
                Json::Str((*factor).to_owned()),
            ])
        })
        .collect();
    let mut members = vec![
        ("op".to_owned(), Json::Str("sweep_fold_f64".into())),
        ("session".to_owned(), Json::Str(session.to_owned())),
        ("scenarios".to_owned(), Json::Arr(pairs)),
    ];
    if let Some(ms) = deadline_ms {
        members.push(("deadline_ms".to_owned(), Json::Num(ms as f64)));
    }
    Json::Obj(members).to_string()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cobra-server-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn end_to_end_session_lifecycle() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let mut c = connect(addr);

    let reply = prepare(&mut c, "demo", false);
    assert_ok(&reply);
    assert_eq!(reply.get("source").and_then(Json::as_str), Some("built"));
    assert!(reply.get("frontier_points").unwrap().as_u64().unwrap() >= 2);

    // Idempotent re-prepare hits the in-memory tier.
    let reply = prepare(&mut c, "demo", false);
    assert_eq!(reply.get("source").and_then(Json::as_str), Some("cached"));

    let reply = select_bound(&mut c, "demo", 2);
    assert_ok(&reply);
    assert_eq!(reply.get("compressed_size"), Some(&Json::Num(2.0)));

    let reply = request(
        &mut c,
        r#"{"op":"assign","session":"demo","scenario":{"m3":"0.8"}}"#,
    );
    assert_ok(&reply);
    assert_eq!(reply.get("exact"), Some(&Json::Bool(true)));
    let rows = reply.get("rows").unwrap().as_arr().unwrap();
    assert_eq!(rows.len(), 1);
    // 208.8 + 240*0.8 + 42 + 24.2*0.8 = 462.16 exactly, both sides.
    assert_eq!(
        rows[0].get("full").and_then(Json::as_str),
        Some("462.16")
    );
    assert_eq!(rows[0].get("full"), rows[0].get("compressed"));

    let reply = request(
        &mut c,
        &sweep_request("demo", &[("m3", "0.8"), ("m1", "1.2")], None),
    );
    assert_ok(&reply);
    assert_eq!(reply.get("partial"), Some(&Json::Bool(false)));
    assert_eq!(reply.get("rows").unwrap().as_arr().unwrap().len(), 2);

    let reply = request(&mut c, r#"{"op":"stats","session":"demo"}"#);
    assert_ok(&reply);
    assert_eq!(reply.get("trees"), Some(&Json::Num(1.0)));
    assert_eq!(reply.get("bound"), Some(&Json::Num(2.0)));
    assert_eq!(reply.get("hydrated"), Some(&Json::Bool(false)));

    // Unknown sessions are typed errors, not hangs.
    let reply = request(&mut c, r#"{"op":"stats","session":"nope"}"#);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        reply.get("kind").and_then(Json::as_str),
        Some("unknown_session")
    );

    let reply = request(&mut c, r#"{"id":9,"op":"shutdown"}"#);
    assert_ok(&reply);
    assert_eq!(reply.get("id"), Some(&Json::Num(9.0)));
    server.join();
}

#[test]
fn coalesced_concurrent_sweeps_match_sequential_bit_for_bit() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.addr();
    let mut c = connect(addr);
    assert_ok(&prepare(&mut c, "coal", false));
    assert_ok(&select_bound(&mut c, "coal", 2));

    // Eight distinct sweep requests with overlapping perturbations, so
    // fused union grids genuinely dedup across requests.
    let requests: Vec<Vec<(String, String)>> = (0..8)
        .map(|i| {
            (0..6)
                .map(|j| {
                    let var = ["m1", "m3", "v", "p1"][(i + j) % 4];
                    (var.to_owned(), format!("{}/10", 8 + ((i * j) % 5)))
                })
                .collect()
        })
        .collect();

    // Sequential baseline: one request at a time on one connection.
    let baseline: Vec<Json> = requests
        .iter()
        .map(|scenarios| {
            let pairs: Vec<(&str, &str)> = scenarios
                .iter()
                .map(|(v, f)| (v.as_str(), f.as_str()))
                .collect();
            let reply = request(&mut c, &sweep_request("coal", &pairs, None));
            assert_ok(&reply);
            reply.get("rows").unwrap().clone()
        })
        .collect();

    // Concurrent: one connection per request, all in flight at once, so
    // the session worker drains them in batches and fuses sweeps.
    for round in 0..3 {
        let replies: Vec<Json> = std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .iter()
                .map(|scenarios| {
                    scope.spawn(move || {
                        let pairs: Vec<(&str, &str)> = scenarios
                            .iter()
                            .map(|(v, f)| (v.as_str(), f.as_str()))
                            .collect();
                        let mut c = connect(addr);
                        request(&mut c, &sweep_request("coal", &pairs, None))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, reply) in replies.iter().enumerate() {
            assert_ok(reply);
            assert_eq!(
                reply.get("rows"),
                Some(&baseline[i]),
                "round {round}, request {i}: coalesced rows diverged from sequential"
            );
        }
    }
    server.shutdown();
}

#[test]
fn persisted_session_reloads_by_mmap_and_answers_identically() {
    let dir = scratch_dir("persist");
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // First server: build, persist, and capture reference answers.
    let server = serve(config.clone()).unwrap();
    let mut c = connect(server.addr());
    let reply = prepare(&mut c, "tier", true);
    assert_ok(&reply);
    assert_eq!(reply.get("persisted"), Some(&Json::Bool(true)));
    assert!(dir.join("tier.cobra").is_file());

    let fresh_select = select_bound(&mut c, "tier", 2);
    assert_ok(&fresh_select);
    let fresh_assign = request(
        &mut c,
        r#"{"op":"assign","session":"tier","scenario":{"m3":"0.8","m1":"6/5"}}"#,
    );
    assert_ok(&fresh_assign);
    let fresh_sweep = request(
        &mut c,
        &sweep_request("tier", &[("m3", "0.8"), ("v", "2"), ("m1", "6/5")], None),
    );
    assert_ok(&fresh_sweep);
    server.shutdown();

    // Second server, same store: the first request re-hydrates the
    // session from the artifact (mmap, zero-copy) without re-compiling.
    let server = serve(config).unwrap();
    let mut c = connect(server.addr());
    let reply = request(&mut c, r#"{"op":"prepare","session":"tier"}"#);
    assert_ok(&reply);
    assert_eq!(reply.get("source").and_then(Json::as_str), Some("loaded"));

    let stats = request(&mut c, r#"{"op":"stats","session":"tier"}"#);
    assert_eq!(stats.get("hydrated"), Some(&Json::Bool(true)));

    let loaded_select = select_bound(&mut c, "tier", 2);
    let loaded_assign = request(
        &mut c,
        r#"{"op":"assign","session":"tier","scenario":{"m3":"0.8","m1":"6/5"}}"#,
    );
    let loaded_sweep = request(
        &mut c,
        &sweep_request("tier", &[("m3", "0.8"), ("v", "2"), ("m1", "6/5")], None),
    );
    for (fresh, loaded) in [
        (&fresh_select, &loaded_select),
        (&fresh_assign, &loaded_assign),
        (&fresh_sweep, &loaded_sweep),
    ] {
        assert_eq!(fresh, loaded, "re-hydrated session diverged");
    }

    // The disk tier also serves requests that *skip* prepare entirely:
    // a third server re-hydrates lazily on first dispatch.
    server.shutdown();
    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = connect(server.addr());
    let lazy_select = select_bound(&mut c, "tier", 2);
    assert_eq!(&lazy_select, &fresh_select);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_returns_typed_partial_and_session_stays_live() {
    let server = serve(ServerConfig::default()).unwrap();
    let mut c = connect(server.addr());
    assert_ok(&prepare(&mut c, "dl", false));
    assert_ok(&select_bound(&mut c, "dl", 2));

    // 2000 scenarios under a zero deadline: the budget poll fires before
    // the first block, so the sweep stops early with an exact prefix.
    let scenarios: Vec<(String, String)> = (0..2000)
        .map(|i| ("m1".to_owned(), format!("{}/1000", 1000 + i)))
        .collect();
    let pairs: Vec<(&str, &str)> = scenarios
        .iter()
        .map(|(v, f)| (v.as_str(), f.as_str()))
        .collect();
    let reply = request(&mut c, &sweep_request("dl", &pairs, Some(0)));
    assert_ok(&reply);
    assert_eq!(reply.get("partial"), Some(&Json::Bool(true)));
    assert_eq!(reply.get("stop").and_then(Json::as_str), Some("deadline"));
    let done = reply.get("done").unwrap().as_u64().unwrap();
    assert!(done < 2000, "a zero deadline must interrupt the sweep");
    assert_eq!(
        reply.get("rows").unwrap().as_arr().unwrap().len(),
        done as usize,
        "partial rows must cover exactly the completed prefix"
    );

    // A generous deadline completes; rows are bit-identical to the
    // deadline-free run.
    let complete = request(&mut c, &sweep_request("dl", &pairs[..50], Some(60_000)));
    assert_ok(&complete);
    assert_eq!(complete.get("partial"), Some(&Json::Bool(false)));
    let unbudgeted = request(&mut c, &sweep_request("dl", &pairs[..50], None));
    assert_eq!(complete.get("rows"), unbudgeted.get("rows"));

    // The session kept serving throughout.
    let reply = request(
        &mut c,
        r#"{"op":"assign","session":"dl","scenario":{"m3":"0.8"}}"#,
    );
    assert_ok(&reply);
    server.shutdown();
}

#[test]
fn worker_panic_is_isolated_to_an_error_reply() {
    let server = serve(ServerConfig::default()).unwrap();
    let mut c = connect(server.addr());
    assert_ok(&prepare(&mut c, "flt", false));

    let reply = request(&mut c, r#"{"id":"p1","op":"panic","session":"flt"}"#);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("panic"));
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("p1"));

    // Same session, same worker: still serving.
    let reply = request(&mut c, r#"{"op":"stats","session":"flt"}"#);
    assert_ok(&reply);
    assert_eq!(reply.get("trees"), Some(&Json::Num(1.0)));
    let reply = select_bound(&mut c, "flt", 2);
    assert_ok(&reply);
    server.shutdown();
}

/// Two servers pinned to different batch kernels (`--kernel scalar` vs
/// `--kernel avx2`) must answer `sweep_fold_f64` — sequential *and*
/// coalesced-concurrent — bit-identically: the AVX2 kernel performs the
/// scalar kernel's exact multiply/add sequence, four lanes at a time.
/// `stats` reports which kernel each worker resolved.
#[test]
fn forced_kernel_servers_reply_bit_identically() {
    use cobra::util::{kernel, KernelTarget};

    let kernel_of = |target: KernelTarget| {
        let server = serve(ServerConfig {
            kernel: target,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.addr();
        let mut c = connect(addr);
        assert_ok(&prepare(&mut c, "kern", false));
        assert_ok(&select_bound(&mut c, "kern", 2));

        // One plain sweep…
        let sweep = request(
            &mut c,
            &sweep_request("kern", &[("m3", "0.8"), ("m1", "6/5"), ("v", "2")], None),
        );
        assert_ok(&sweep);

        // …and one coalesced round: four concurrent connections, fused
        // by the session worker into a union-grid sweep.
        let concurrent: Vec<Json> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    scope.spawn(move || {
                        let factor = format!("{}/10", 7 + i);
                        let mut c = connect(addr);
                        request(
                            &mut c,
                            &sweep_request("kern", &[("m3", factor.as_str()), ("m1", "6/5")], None),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for reply in &concurrent {
            assert_ok(reply);
        }

        let stats = request(&mut c, r#"{"op":"stats","session":"kern"}"#);
        assert_ok(&stats);
        let resolved = stats
            .get("kernel")
            .and_then(Json::as_str)
            .expect("stats reports the resolved kernel")
            .to_owned();
        server.shutdown();
        (sweep, concurrent, resolved)
    };

    let (scalar_sweep, scalar_conc, scalar_name) = kernel_of(KernelTarget::Scalar);
    assert_eq!(scalar_name, "scalar");

    let (avx2_sweep, avx2_conc, avx2_name) = kernel_of(KernelTarget::Avx2);
    if kernel::avx2_available() {
        assert_eq!(avx2_name, "avx2");
    } else {
        assert_eq!(avx2_name, "scalar"); // silent fallback on older CPUs
    }

    assert_eq!(
        scalar_sweep.get("rows"),
        avx2_sweep.get("rows"),
        "scalar and avx2 servers must agree bit for bit"
    );
    for (i, (s, a)) in scalar_conc.iter().zip(&avx2_conc).enumerate() {
        assert_eq!(
            s.get("rows"),
            a.get("rows"),
            "coalesced request {i} diverged between kernels"
        );
    }
}

#[test]
fn apply_delta_patches_live_sessions_over_the_wire() {
    let server = serve(ServerConfig::default()).unwrap();
    let mut c = connect(server.addr());
    assert_ok(&prepare(&mut c, "inc", false));
    assert_ok(&select_bound(&mut c, "inc", 2));

    // Coefficient-only edit: the p1*m1 revenue 208.8 → 250.
    let reply = request(
        &mut c,
        r#"{"op":"apply_delta","session":"inc","ops":[{"poly":"P1","action":"set","term":"250*p1*m1"}]}"#,
    );
    assert_ok(&reply);
    assert_eq!(reply.get("structural"), Some(&Json::Bool(false)));
    assert_eq!(reply.get("terms_touched"), Some(&Json::Num(1.0)));

    // Structural edit: a tuple delete plus a tuple insert.
    let reply = request(
        &mut c,
        r#"{"op":"apply_delta","session":"inc","ops":[{"poly":"P1","action":"delete","term":"v*m3"},{"poly":"P1","action":"insert","term":"10*p2*m1"}]}"#,
    );
    assert_ok(&reply);
    assert_eq!(reply.get("structural"), Some(&Json::Bool(true)));
    assert_eq!(reply.get("polys_touched"), Some(&Json::Num(1.0)));

    // The patched session answers exactly like a server that built the
    // post-delta polynomials from scratch.
    let assign = r#"{"op":"assign","session":"inc","scenario":{"m3":"0.8","m1":"6/5"}}"#;
    let patched_assign = request(&mut c, assign);
    assert_ok(&patched_assign);
    let patched_sweep = request(
        &mut c,
        &sweep_request("inc", &[("m3", "0.8"), ("m1", "6/5"), ("v", "2")], None),
    );
    assert_ok(&patched_sweep);

    let fresh_server = serve(ServerConfig::default()).unwrap();
    let mut f = connect(fresh_server.addr());
    let body = Json::Obj(vec![
        ("op".into(), Json::Str("prepare".into())),
        ("session".into(), Json::Str("inc".into())),
        (
            "polys".into(),
            Json::Str("P1 = 250*p1*m1 + 240*p1*m3 + 42*v*m1 + 10*p2*m1".into()),
        ),
        ("tree".into(), Json::Str(TREE.into())),
    ]);
    assert_ok(&request(&mut f, &body.to_string()));
    assert_ok(&select_bound(&mut f, "inc", 2));
    let fresh_assign = request(&mut f, assign);
    let fresh_sweep = request(
        &mut f,
        &sweep_request("inc", &[("m3", "0.8"), ("m1", "6/5"), ("v", "2")], None),
    );
    assert_eq!(patched_assign.get("rows"), fresh_assign.get("rows"));
    assert_eq!(patched_sweep.get("rows"), fresh_sweep.get("rows"));

    // Bad deltas are typed errors and the session keeps serving.
    let reply = request(
        &mut c,
        r#"{"op":"apply_delta","session":"inc","ops":[{"poly":"Nope","action":"set","term":"1*p1*m1"}]}"#,
    );
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("bad_request"));
    assert_ok(&request(&mut c, r#"{"op":"stats","session":"inc"}"#));

    server.shutdown();
    fresh_server.shutdown();
}

#[test]
fn session_cap_evicts_lru_to_store_and_reloads_transparently() {
    let dir = scratch_dir("cap");
    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: Some(dir.clone()),
        max_sessions: Some(2),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = connect(server.addr());
    for id in ["ca", "cb", "cc"] {
        assert_ok(&prepare(&mut c, id, false));
    }
    // "ca" was least recently used: its own worker persisted it into
    // the disk tier on the way out.
    assert!(dir.join("ca.cobra").is_file());

    // …and it keeps answering — the next request re-hydrates it by
    // mmap, exactly like an explicitly persisted session.
    let stats = request(&mut c, r#"{"op":"stats","session":"ca"}"#);
    assert_ok(&stats);
    assert_eq!(stats.get("hydrated"), Some(&Json::Bool(true)));
    let reply = select_bound(&mut c, "ca", 2);
    assert_ok(&reply);
    assert_eq!(reply.get("compressed_size"), Some(&Json::Num(2.0)));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn session_cap_without_store_is_a_typed_store_full_error() {
    let server = serve(ServerConfig {
        max_sessions: Some(1),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = connect(server.addr());
    assert_ok(&prepare(&mut c, "one", false));
    let reply = prepare(&mut c, "two", false);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("store_full"));
    // The incumbent session is untouched and keeps serving.
    assert_ok(&request(&mut c, r#"{"op":"stats","session":"one"}"#));
    server.shutdown();
}

#[test]
fn graceful_shutdown_persists_live_sessions() {
    let dir = scratch_dir("drain");
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server = serve(config.clone()).unwrap();
    let mut c = connect(server.addr());
    // Prepared WITHOUT persist: only the shutdown drain writes it out.
    assert_ok(&prepare(&mut c, "drain", false));
    let fresh_select = select_bound(&mut c, "drain", 2);
    assert_ok(&fresh_select);
    let assign = r#"{"op":"assign","session":"drain","scenario":{"m3":"0.8","m1":"6/5"}}"#;
    let fresh_assign = request(&mut c, assign);
    assert_ok(&fresh_assign);

    let reply = request(&mut c, r#"{"op":"shutdown"}"#);
    assert_ok(&reply);
    assert_eq!(reply.get("persisted"), Some(&Json::Num(1.0)));
    server.join();
    assert!(dir.join("drain.cobra").is_file());

    // A restarted server answers from the drained artifact — no
    // re-prepare, bit-identical replies.
    let server = serve(config).unwrap();
    let mut c = connect(server.addr());
    let loaded_select = select_bound(&mut c, "drain", 2);
    assert_eq!(&loaded_select, &fresh_select);
    assert_eq!(
        request(&mut c, assign).get("rows"),
        fresh_assign.get("rows")
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dag_armed_sessions_answer_identically_and_report_stats() {
    let server = serve(ServerConfig::default()).unwrap();
    let mut c = connect(server.addr());
    assert_ok(&prepare(&mut c, "flat", false));
    assert_ok(&select_bound(&mut c, "flat", 2));

    let body = Json::Obj(vec![
        ("op".into(), Json::Str("prepare".into())),
        ("session".into(), Json::Str("dg".into())),
        ("polys".into(), Json::Str(POLYS.into())),
        ("tree".into(), Json::Str(TREE.into())),
        ("dag".into(), Json::Bool(true)),
    ]);
    let reply = request(&mut c, &body.to_string());
    assert_ok(&reply);
    assert_eq!(reply.get("dag"), Some(&Json::Bool(true)));
    assert_ok(&select_bound(&mut c, "dg", 2));

    // The exact path through the DAG programs is bit-identical to flat.
    let assign_req = |session: &str| {
        format!(r#"{{"op":"assign","session":{session:?},"scenario":{{"m3":"0.8","m1":"6/5"}}}}"#)
    };
    let flat_assign = request(&mut c, &assign_req("flat"));
    let dag_assign = request(&mut c, &assign_req("dg"));
    assert_ok(&dag_assign);
    assert_eq!(flat_assign.get("rows"), dag_assign.get("rows"));

    // f64 sweeps run the slot programs end to end (certified by the
    // slot-aware error bounds; exact equality is pinned in dag_diff.rs).
    let dag_sweep = request(
        &mut c,
        &sweep_request("dg", &[("m3", "0.8"), ("m1", "6/5"), ("v", "2")], None),
    );
    assert_ok(&dag_sweep);
    assert_eq!(dag_sweep.get("partial"), Some(&Json::Bool(false)));
    assert_eq!(dag_sweep.get("rows").unwrap().as_arr().unwrap().len(), 3);

    let stats = request(&mut c, r#"{"op":"stats","session":"dg"}"#);
    assert_ok(&stats);
    assert_eq!(stats.get("dag"), Some(&Json::Bool(true)));
    // select_bound warmed every engine, so slot counts are built.
    assert!(stats.get("dag_slots").unwrap().as_u64().is_some());
    let flat_stats = request(&mut c, r#"{"op":"stats","session":"flat"}"#);
    assert_eq!(flat_stats.get("dag"), Some(&Json::Bool(false)));
    server.shutdown();
}

#[test]
fn malformed_frames_get_typed_errors_without_killing_the_connection() {
    let server = serve(ServerConfig::default()).unwrap();
    let mut c = connect(server.addr());

    let reply = request(&mut c, "{not json");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("bad_request"));

    let reply = request(&mut c, r#"{"op":"warp"}"#);
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("bad_request"));

    // The connection survives both.
    assert_ok(&prepare(&mut c, "ok", false));
    server.shutdown();
}
