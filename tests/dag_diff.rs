//! DAG differential suite (ISSUE 10): algebraic compression — the
//! shared-subterm DAG rewrite ([`cobra::provenance::dag`]) and its
//! session surface ([`cobra::core::CobraSession::compile_dag`]) — is
//! pinned against the flat programs it factors.
//!
//! The contracts under test:
//!
//! * on random polynomial sets, the rewritten program (CSE + pair
//!   mining + Horner, and the CSE-only profile) evaluates **identically**
//!   to the flat program on the exact (`Rat`) path — rearrangement is
//!   exact in the ring and `Rat` is canonical, so every numerator and
//!   denominator matches — through both the generic term walk and the
//!   batch kernels, at 1 and 4 worker threads;
//! * the rewrite only ever removes multiply work (`dag_multiply_ops ≤
//!   flat_multiply_ops`) and never changes the output row count;
//! * a DAG-armed session answers exact sweeps bit-identically to a flat
//!   twin under the kernel-target × thread matrix, and its `f64` sweeps
//!   stay within the **joint** Higham certificate of the flat twin's
//!   (each side is within its own sound bound of the true value, so the
//!   two runs differ by at most the sum of the bounds);
//! * slot programs are never stale: structural and coeff-only deltas
//!   applied to a DAG-armed session leave it bit-identical to a fresh
//!   flat rebuild of the patched polynomials;
//! * `compress()` + `compile_dag()` compose, survive a re-selection
//!   hop, and disarm cleanly back to the flat engines.

use cobra::core::folds::{self, MergeFold, SweepFold};
use cobra::core::scenario::FoldItem;
use cobra::core::{CobraSession, PolyDelta, ScenarioSet, SweepBudget};
use cobra::provenance::dag;
use cobra::provenance::{
    parse_polyset, BatchEvaluator, Coeff, DagOptions, Monomial, VarRegistry,
};
use cobra::util::kernel::{self, KernelTarget};
use cobra::util::par::with_threads;
use cobra::util::Rat;
use proptest::prelude::*;

/// Worker-thread counts the equivalences are pinned under.
const THREAD_MATRIX: [usize; 2] = [1, 4];

/// Kernel targets the equivalences are pinned under.
const KERNEL_MATRIX: [KernelTarget; 2] = [KernelTarget::Auto, KernelTarget::Scalar];

const PAPER_POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";

const FIG2_TREE: &str =
    "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))";

fn rat(s: &str) -> Rat {
    Rat::parse(s).unwrap()
}

/// A compressed flat session over the paper fixture.
fn flat_session(bound: u64) -> CobraSession {
    let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
    s.add_tree_text(FIG2_TREE).unwrap();
    s.set_bound(bound);
    s.compress().unwrap();
    s
}

/// The same compression with algebraic compression armed on top.
fn dag_session(bound: u64) -> CobraSession {
    let mut s = flat_session(bound);
    s.compile_dag().unwrap();
    s
}

/// The differential collector from `tests/kernel_diff.rs`: records every
/// scenario's index and both result rows in the fold's native
/// coefficient type.
#[derive(Clone, Debug, PartialEq)]
struct Collect<C> {
    rows: Vec<(usize, Vec<C>, Vec<C>)>,
}

impl<C> Collect<C> {
    fn new() -> Collect<C> {
        Collect { rows: Vec::new() }
    }
}

impl<K: Coeff> SweepFold for Collect<K> {
    type Output = Vec<(usize, Vec<K>, Vec<K>)>;

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        let cast = |xs: &[C]| -> Vec<K> {
            xs.iter()
                .map(|x| {
                    (x as &dyn std::any::Any)
                        .downcast_ref::<K>()
                        .expect("collector used on a stream of its own coefficient type")
                        .clone()
                })
                .collect()
        };
        self.rows
            .push((item.scenario, cast(item.full), cast(item.compressed)));
    }

    fn finish(self) -> Self::Output {
        self.rows
    }
}

impl<K: Coeff> MergeFold for Collect<K> {
    fn init(&self) -> Collect<K> {
        Collect::new()
    }

    fn merge(&mut self, later: Collect<K>) {
        self.rows.extend(later.rows);
    }
}

type Rows<C> = Vec<(usize, Vec<C>, Vec<C>)>;

fn exact_rows_seq(s: &CobraSession, grid: &ScenarioSet, t: KernelTarget) -> Rows<Rat> {
    kernel::with_target(t, || {
        s.sweep_fold(grid, Collect::<Rat>::new(), folds::step).unwrap()
    })
    .finish()
}

fn exact_rows_par(
    s: &CobraSession,
    grid: &ScenarioSet,
    t: KernelTarget,
    threads: usize,
) -> Rows<Rat> {
    with_threads(threads, || {
        kernel::with_target(t, || s.sweep_fold_par(grid, Collect::<Rat>::new()).unwrap())
    })
    .finish()
}

/// A month × special-leaf grid over the paper fixture.
fn month_grid(s: &mut CobraSession, m3_levels: Vec<Rat>, y1_levels: Vec<Rat>) -> ScenarioSet {
    let m3 = s.registry_mut().var("m3");
    let y1 = s.registry_mut().var("y1");
    ScenarioSet::grid()
        .axis([m3], m3_levels)
        .axis([y1], y1_levels)
        .build()
        .unwrap()
}

fn levels_strategy() -> impl Strategy<Value = Vec<Rat>> {
    proptest::collection::vec((-20i128..40, 1i128..5), 1..4)
        .prop_map(|pairs| pairs.into_iter().map(|(n, d)| Rat::new(n, d)).collect())
}

// ---------------------------------------------------------------------
// Random programs: the rewrite itself
// ---------------------------------------------------------------------

const VAR_POOL: [&str; 5] = ["a", "b", "c", "d", "w"];

/// One random term: numerator, denominator, and factors as
/// `(variable index, exponent)` pairs. Exponents up to 4 exercise the
/// power-product CSE (`x^e` splitting) and Horner restructuring, not
/// just plain multiplies.
type TermSpec = (i128, i128, Vec<(u8, u8)>);

fn term_strategy() -> impl Strategy<Value = TermSpec> {
    (
        -500i128..500,
        1i128..40,
        proptest::collection::vec((0u8..5, 1u8..5), 0..5),
    )
}

fn render_polyset(polys: &[Vec<TermSpec>]) -> String {
    let mut out = String::new();
    for (i, terms) in polys.iter().enumerate() {
        out.push_str(&format!("P{i} = 0"));
        for (num, den, factors) in terms {
            out.push_str(if *num < 0 { " - " } else { " + " });
            out.push_str(&format!("{}/{}", num.abs(), den));
            for (v, e) in factors {
                out.push_str(&format!("*{}^{}", VAR_POOL[*v as usize], e));
            }
        }
        out.push('\n');
    }
    out
}

fn polyset_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::collection::vec(term_strategy(), 1..10), 1..4)
        .prop_map(|polys| render_polyset(&polys))
}

fn rat_pool_strategy() -> impl Strategy<Value = Vec<Rat>> {
    proptest::collection::vec((-60i128..60, 1i128..8), 8..20)
        .prop_map(|pairs| pairs.into_iter().map(|(n, d)| Rat::new(n, d)).collect())
}

fn rat_rows(pool: &[Rat], n: usize, width: usize) -> Vec<Vec<Rat>> {
    (0..n)
        .map(|k| (0..width).map(|v| pool[(k * width + v) % pool.len()]).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random programs, every rewrite profile produces a program
    /// that (a) evaluates identically to the flat walk on the exact
    /// path — generic walk and batch kernels, per thread count — and
    /// (b) never adds multiply work or changes the output row count.
    #[test]
    fn dag_rewrite_is_exact_on_random_programs(
        src in polyset_strategy(),
        pool in rat_pool_strategy(),
        n in 1usize..40,
    ) {
        let mut reg = VarRegistry::new();
        let set = parse_polyset(&src, &mut reg).unwrap();
        let ev: BatchEvaluator<Rat> = BatchEvaluator::compile(&set);
        let flat = ev.program();
        let (np, width) = (flat.num_polys(), flat.num_locals());
        let rows = rat_rows(&pool, n, width);

        let mut reference = vec![Rat::ZERO; n * np];
        for (k, row) in rows.iter().enumerate() {
            flat.eval_scenario_into(row, &mut reference[k * np..(k + 1) * np]);
        }

        for opts in [DagOptions::default(), DagOptions::cse_only()] {
            let build = dag::rewrite(flat, &opts);
            prop_assert_eq!(build.stats.num_polys, np);
            prop_assert!(
                build.stats.dag_multiply_ops <= build.stats.flat_multiply_ops,
                "rewrite must never add multiplies ({} > {})",
                build.stats.dag_multiply_ops, build.stats.flat_multiply_ops
            );
            prop_assert_eq!(build.program.num_polys(), np);
            prop_assert_eq!(build.program.num_locals(), width);
            prop_assert_eq!(build.program.multiply_ops(), build.stats.dag_multiply_ops);

            // Generic term walk, slot rows staged natively.
            let mut out = vec![Rat::ZERO; np];
            for (k, row) in rows.iter().enumerate() {
                build.program.eval_scenario_into(row, &mut out);
                for (p, got) in out.iter().enumerate() {
                    let want = &reference[k * np + p];
                    prop_assert_eq!(
                        (got.numer(), got.denom()),
                        (want.numer(), want.denom()),
                        "scenario {} poly {}",
                        k, p
                    );
                }
            }

            // Batch kernels over the slot program, per target × threads.
            let dag_ev = BatchEvaluator::new(build.program);
            for threads in THREAD_MATRIX {
                for t in KERNEL_MATRIX {
                    let mut out = vec![Rat::ZERO; n * np];
                    with_threads(threads, || {
                        kernel::with_target(t, || dag_ev.eval_batch_exact_into(&rows, &mut out))
                    });
                    for (slot, (got, want)) in out.iter().zip(&reference).enumerate() {
                        prop_assert_eq!(
                            (got.numer(), got.denom()),
                            (want.numer(), want.denom()),
                            "target {} threads {} slot {}",
                            t, threads, slot
                        );
                    }
                }
            }

            // f64 twin of the slot program: every bit-identical dispatch
            // target agrees with the generic walk over the same slots.
            let dag_f64 = BatchEvaluator::new(dag_ev.program().to_f64_program());
            let f64_rows: Vec<Vec<f64>> = rows
                .iter()
                .map(|row| row.iter().map(|x| x.to_f64()).collect())
                .collect();
            let mut f64_ref = vec![0.0f64; n * np];
            for (k, row) in f64_rows.iter().enumerate() {
                dag_f64
                    .program()
                    .eval_scenario_into(row, &mut f64_ref[k * np..(k + 1) * np]);
            }
            for threads in THREAD_MATRIX {
                for t in KERNEL_MATRIX {
                    let mut out = vec![0.0f64; n * np];
                    with_threads(threads, || {
                        kernel::with_target(t, || {
                            dag_f64.eval_batch_fast_into(&f64_rows, &mut out)
                        })
                    });
                    for (slot, (&got, &want)) in out.iter().zip(&f64_ref).enumerate() {
                        prop_assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "f64 target {} threads {} slot {} ({} vs {})",
                            t, threads, slot, got, want
                        );
                    }
                }
            }
        }
    }

    /// A DAG-armed session answers exact sweeps bit-identically to a
    /// flat twin under the kernel × thread matrix, and its bounded `f64`
    /// sweeps stay within the joint Higham certificate of the twin's.
    #[test]
    fn dag_session_matches_flat_twin_on_random_grids(
        m3_levels in levels_strategy(),
        y1_levels in levels_strategy(),
        bound in 4u64..9,
    ) {
        let mut flat = flat_session(bound);
        let mut dagged = dag_session(bound);
        let grid = month_grid(&mut flat, m3_levels.clone(), y1_levels.clone());
        let dag_grid = month_grid(&mut dagged, m3_levels, y1_levels);

        // Exact path: bit-identical, sequential and parallel.
        let want = exact_rows_seq(&flat, &grid, KernelTarget::Scalar);
        for t in KERNEL_MATRIX {
            prop_assert_eq!(
                exact_rows_seq(&dagged, &dag_grid, t),
                want.clone(),
                "exact rows diverge (seq, target {})", t
            );
            for threads in THREAD_MATRIX {
                prop_assert_eq!(
                    exact_rows_par(&dagged, &dag_grid, t, threads),
                    want.clone(),
                    "exact rows diverge (par, target {}, {} threads)", t, threads
                );
            }
        }

        // f64 path: the slot programs reassociate, so rows may differ —
        // but each run carries a sound rounding certificate, so the two
        // differ by at most the sum of the certificates.
        let (dag_out, dag_bound) = dagged
            .sweep_fold_f64_bounded(
                &dag_grid,
                SweepBudget::unlimited(),
                Collect::<f64>::new(),
                folds::step,
            )
            .unwrap();
        let (flat_out, flat_bound) = flat
            .sweep_fold_f64_bounded(
                &grid,
                SweepBudget::unlimited(),
                Collect::<f64>::new(),
                folds::step,
            )
            .unwrap();
        let budget = dag_bound.max_abs_bound + flat_bound.max_abs_bound;
        let dag_rows = dag_out.into_fold().finish();
        let flat_rows = flat_out.into_fold().finish();
        prop_assert_eq!(dag_rows.len(), flat_rows.len());
        for ((i, d_full, d_comp), (j, f_full, f_comp)) in dag_rows.iter().zip(&flat_rows) {
            prop_assert_eq!(i, j);
            for (a, b) in d_full.iter().zip(f_full).chain(d_comp.iter().zip(f_comp)) {
                prop_assert!(
                    (a - b).abs() <= budget,
                    "scenario {}: dag {} vs flat {} exceeds joint certificate {}",
                    i, a, b, budget
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic: deltas, composition, disarm
// ---------------------------------------------------------------------

/// The oracle for delta interaction: a brand-new *flat* session over the
/// patched session's current polynomials (exact rows are bit-identical
/// between flat and DAG by construction, so a flat oracle pins both).
fn fresh_flat_rebuild(s: &CobraSession, bound: u64) -> CobraSession {
    let mut fresh = CobraSession::new(s.registry().clone(), s.polynomials().clone());
    fresh.add_tree_text(FIG2_TREE).unwrap();
    fresh.compress_frontier().unwrap();
    fresh.select_bound(bound).unwrap();
    fresh
}

fn paper_grid(s: &mut CobraSession) -> ScenarioSet {
    month_grid(s, vec![rat("0.5"), rat("1"), rat("1.25")], vec![rat("0.8"), rat("1.2")])
}

/// Slot programs are never stale: a structural delta (delete + insert)
/// and a coeff-only delta against a DAG-armed session both leave it
/// bit-identical to a fresh flat rebuild of the patched polynomials.
#[test]
fn deltas_never_leave_stale_slots() {
    let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
    s.add_tree_text(FIG2_TREE).unwrap();
    s.compress_frontier().unwrap();
    s.select_bound(6).unwrap();
    s.compile_dag().unwrap();
    let grid = paper_grid(&mut s);
    let baseline = exact_rows_seq(&s, &grid, KernelTarget::Auto);

    // Structural: delete one paper term, insert a brand-new monomial.
    let (vm3, p2m1) = {
        let v = s.registry().lookup("v").unwrap();
        let p2 = s.registry().lookup("p2").unwrap();
        let m1 = s.registry().lookup("m1").unwrap();
        let m3 = s.registry().lookup("m3").unwrap();
        (
            Monomial::from_pairs([(v, 1), (m3, 1)]),
            Monomial::from_pairs([(p2, 1), (m1, 1)]),
        )
    };
    let mut delta = PolyDelta::new();
    delta.remove(0, vm3);
    delta.set(0, p2m1.clone(), rat("33.3"));
    let report = s.apply_delta(&delta).unwrap();
    assert!(report.is_structural());
    assert!(s.dag_mode(), "deltas must not disarm DAG mode");
    let after_structural = exact_rows_seq(&s, &grid, KernelTarget::Auto);
    assert_ne!(after_structural, baseline, "the delta must be observable");
    let fresh = fresh_flat_rebuild(&s, 6);
    assert_eq!(
        after_structural,
        exact_rows_seq(&fresh, &grid, KernelTarget::Scalar),
        "stale slot values after a structural delta"
    );

    // Coeff-only: patches ride the in-place CSR path; the DAG engines
    // must still rebuild from the patched coefficients.
    let mut coeff = PolyDelta::new();
    coeff.set(0, p2m1, rat("44.4"));
    let report = s.apply_delta(&coeff).unwrap();
    assert!(!report.is_structural());
    let after_coeff = exact_rows_seq(&s, &grid, KernelTarget::Auto);
    let fresh = fresh_flat_rebuild(&s, 6);
    assert_eq!(
        after_coeff,
        exact_rows_seq(&fresh, &grid, KernelTarget::Scalar),
        "stale slot values after a coeff-only delta"
    );
}

/// `compress()` + `compile_dag()` compose: the report covers both the
/// full and compressed sides, the armed session survives a re-selection
/// hop to another bound, and disarming returns the flat engines — all
/// without changing a single exact row.
#[test]
fn compose_reselect_and_disarm() {
    let mut s = flat_session(6);
    let report = s.compile_dag().unwrap();
    assert_eq!(report.full.num_polys, 2);
    assert_eq!(report.compressed.num_polys, 2);
    assert!(report.full.dag_multiply_ops <= report.full.flat_multiply_ops);
    assert!(report.compressed.dag_multiply_ops <= report.compressed.flat_multiply_ops);
    assert!(report.op_ratio() >= 1.0);

    let grid = paper_grid(&mut s);
    let mut flat6 = flat_session(6);
    let grid6 = paper_grid(&mut flat6);
    assert_eq!(
        exact_rows_seq(&s, &grid, KernelTarget::Auto),
        exact_rows_seq(&flat6, &grid6, KernelTarget::Scalar)
    );

    // Hop to another bound: the frontier re-selection rebuilds the
    // compressed side; DAG mode stays armed and stays exact.
    s.compress_frontier().unwrap();
    s.select_bound(4).unwrap();
    assert!(s.dag_mode());
    let mut flat4 = CobraSession::from_text(PAPER_POLYS).unwrap();
    flat4.add_tree_text(FIG2_TREE).unwrap();
    flat4.compress_frontier().unwrap();
    flat4.select_bound(4).unwrap();
    let grid4 = paper_grid(&mut flat4);
    assert_eq!(
        exact_rows_seq(&s, &grid, KernelTarget::Auto),
        exact_rows_seq(&flat4, &grid4, KernelTarget::Scalar)
    );

    // Disarm: back on the flat engines, same rows.
    s.set_dag_mode(false);
    assert!(!s.dag_mode());
    assert_eq!(
        exact_rows_seq(&s, &grid, KernelTarget::Auto),
        exact_rows_seq(&flat4, &grid4, KernelTarget::Scalar)
    );
}
