//! Persistence-format stability: session artifacts committed to the
//! repo (`tests/golden/session_v1.cobra`, a version-1 artifact, and
//! `session_v2.cobra`, a version-2 artifact with algebraic compression
//! armed) must keep loading — and keep answering bit-identically — as
//! the codebase evolves. A failure here means the on-disk format
//! changed; bump the format version in `cobra_provenance::persist` and
//! regenerate the *current*-version artifact instead of silently
//! breaking persisted stores (older goldens are never regenerated —
//! they pin backward compatibility):
//!
//! ```text
//! cargo test --test persist_golden -- --ignored regenerate
//! ```

use cobra::core::{restore_session_from_bytes, snapshot_session, CobraSession};
use cobra::provenance::Valuation;
use cobra::util::Rat;

const POLYS: &str = "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3";
const TREE: &str = "Plans(Standard(p1,p2), v)";
const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/session_v1.cobra"
);
const GOLDEN_V2: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/session_v2.cobra"
);

/// The reference session the golden artifact was generated from: paper
/// running example, full frontier, one warm engine left by a bound hop.
fn reference_session() -> CobraSession {
    let mut s = CobraSession::from_text(POLYS).unwrap();
    s.add_tree_text(TREE).unwrap();
    let sizes: Vec<u64> = s
        .compress_frontier()
        .unwrap()
        .points()
        .iter()
        .map(|p| p.size)
        .collect();
    let probe = Valuation::with_default(Rat::ONE);
    for size in sizes {
        s.select_bound(size).unwrap();
        s.assign(&probe).unwrap(); // compile engines so they persist warm
    }
    s
}

fn assert_answers_match_reference(restored: &mut CobraSession) {
    let mut fresh = reference_session();
    let mut scenario = Valuation::with_default(Rat::ONE);
    let m3 = fresh.registry_mut().var("m3");
    scenario.set(m3, Rat::parse("0.8").unwrap());
    assert_eq!(restored.registry_mut().var("m3"), m3);

    let sizes: Vec<u64> = fresh
        .frontier()
        .unwrap()
        .points()
        .iter()
        .map(|p| p.size)
        .collect();
    assert!(!sizes.is_empty());
    for size in sizes {
        let want = fresh.select_bound(size).unwrap();
        let got = restored.select_bound(size).unwrap();
        assert_eq!(
            format!("{want:?}"),
            format!("{got:?}"),
            "golden report diverged at bound {size}"
        );
        let want = fresh.assign(&scenario).unwrap();
        let got = restored.assign(&scenario).unwrap();
        for (w, g) in want.rows.iter().zip(&got.rows) {
            assert_eq!(w.full, g.full, "bound {size}");
            assert_eq!(w.compressed, g.compressed, "bound {size}");
        }
    }
}

#[test]
fn golden_artifact_still_loads_and_answers_identically() {
    let bytes = std::fs::read(GOLDEN).unwrap_or_else(|e| {
        panic!(
            "missing golden artifact {GOLDEN}: {e}\n\
             v1 goldens are committed once and never regenerated"
        )
    });
    let mut restored = restore_session_from_bytes(&bytes)
        .expect("the committed v1 golden artifact must keep loading — format change?");
    let info = restored.info();
    assert!(info.hydrated, "a restored session starts hydrated");
    assert_eq!(info.trees, 1);
    assert!(info.warm_engines >= 1, "the golden carries a warm engine");
    assert!(
        !info.dag,
        "a v1 artifact predates the dag flag, which must default off"
    );
    assert_answers_match_reference(&mut restored);
}

#[test]
fn golden_v2_artifact_restores_with_dag_armed() {
    let bytes = std::fs::read(GOLDEN_V2).unwrap_or_else(|e| {
        panic!(
            "missing golden artifact {GOLDEN_V2}: {e}\n\
             regenerate with: cargo test --test persist_golden -- --ignored regenerate"
        )
    });
    let mut restored = restore_session_from_bytes(&bytes)
        .expect("the committed v2 golden artifact must keep loading — format change?");
    let info = restored.info();
    assert!(info.hydrated, "a restored session starts hydrated");
    assert!(
        info.dag,
        "the v2 golden was snapshotted with algebraic compression armed"
    );
    // DAG programs are deterministic rewrites and never persisted: the
    // restored session re-derives them lazily and must still answer
    // bit-identically to the flat reference.
    assert_answers_match_reference(&mut restored);
}

#[test]
fn freshly_snapshotted_bytes_restore_identically() {
    // The committed golden plus this round-trip pin both directions:
    // old bytes keep loading, and new bytes still follow the format.
    let bytes = snapshot_session(&reference_session()).unwrap();
    let mut restored = restore_session_from_bytes(&bytes).unwrap();
    assert_answers_match_reference(&mut restored);
}

#[test]
#[ignore = "regenerates tests/golden/session_v2.cobra in place"]
fn regenerate() {
    // Only the current-version artifact is ever regenerated; the v1
    // golden is frozen history pinning backward compatibility.
    let mut session = reference_session();
    session.compile_dag().unwrap();
    let bytes = snapshot_session(&session).unwrap();
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden")).unwrap();
    std::fs::write(GOLDEN_V2, &bytes).unwrap();
    println!("wrote {} bytes to {GOLDEN_V2}", bytes.len());
}
