//! Property tests for the semantics of abstraction itself:
//!
//! 1. **Soundness** — for any cut, evaluating the compressed provenance
//!    under a meta-valuation equals evaluating the full provenance under
//!    the expansion of that valuation to the leaves (the degrees of
//!    freedom lost are exactly "grouped variables share a value").
//! 2. Compression never increases the provenance size, and the root cut
//!    never beats the bound formula from the group analysis.
//! 3. Refining a cut (replacing a node by its children) never decreases
//!    the size.

use cobra::core::{apply_cut, enumerate_cuts, GroupAnalysis};
use cobra::core::{AbstractionTree, Cut};
use cobra::datagen::synthetic::{generate, SyntheticConfig};
use cobra::provenance::{Valuation, Var};
use cobra::util::Rat;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = SyntheticConfig> {
    (2usize..10, 2usize..4, 1usize..4, 1usize..4, 1u64..1000).prop_map(
        |(leaves, max_children, polynomials, contexts, seed)| SyntheticConfig {
            leaves,
            max_children,
            polynomials,
            contexts,
            density: 0.6,
            seed,
        },
    )
}

/// Meta valuation with distinct values per meta var; expansion to leaves.
fn valuations_for_cut(
    tree: &AbstractionTree,
    cut: &Cut,
    metas: &[cobra::core::MetaVar],
    salt: i64,
) -> (Valuation<Rat>, Valuation<Rat>) {
    let mut meta_val = Valuation::with_default(Rat::ONE);
    let mut leaf_val = Valuation::with_default(Rat::ONE);
    for (i, meta) in metas.iter().enumerate() {
        let value = Rat::new((salt + i as i64 + 2) as i128, 7);
        meta_val.set(meta.var, value);
        for &leaf in &meta.leaves {
            leaf_val.set(leaf, value);
        }
    }
    let _ = (tree, cut);
    (meta_val, leaf_val)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compressed_eval_equals_full_eval_under_grouping(
        config in config_strategy(),
        salt in 0i64..100,
    ) {
        let mut synthetic = generate(config);
        let cuts = enumerate_cuts(&synthetic.tree, 10_000).expect("small tree");
        for cut in cuts {
            let applied = apply_cut(&synthetic.set, &synthetic.tree, &cut, &mut synthetic.reg);
            let (meta_val, leaf_val) =
                valuations_for_cut(&synthetic.tree, &cut, &applied.meta_vars, salt);
            let full = synthetic.set.eval(&leaf_val).expect("total valuation");
            let compressed = applied.compressed.eval(&meta_val).expect("total valuation");
            prop_assert_eq!(full, compressed, "cut {}", cut.display(&synthetic.tree));
        }
    }

    #[test]
    fn compression_never_grows_and_refinement_is_monotone(
        config in config_strategy(),
    ) {
        let mut synthetic = generate(config);
        let analysis = GroupAnalysis::analyze(&synthetic.set, &synthetic.tree)
            .expect("single-leaf monomials");
        let full = synthetic.set.total_monomials();
        for cut in enumerate_cuts(&synthetic.tree, 10_000).expect("small tree") {
            let applied =
                apply_cut(&synthetic.set, &synthetic.tree, &cut, &mut synthetic.reg);
            // never larger than the original
            prop_assert!(applied.compressed_size <= full);
            // formula agreement
            prop_assert_eq!(
                applied.compressed_size as u64,
                analysis.compressed_size(cut.nodes())
            );
            // refinement monotonicity: expand the first inner cut node
            if let Some(&node) = cut
                .nodes()
                .iter()
                .find(|&&n| !synthetic.tree.is_leaf(n))
            {
                let mut refined: Vec<_> =
                    cut.nodes().iter().copied().filter(|&n| n != node).collect();
                refined.extend_from_slice(synthetic.tree.children(node));
                let refined_cut = Cut::new(&synthetic.tree, refined).expect("valid refinement");
                let refined_size = analysis.compressed_size(refined_cut.nodes());
                prop_assert!(
                    refined_size >= applied.compressed_size as u64,
                    "refining must not shrink: {} -> {}",
                    cut.display(&synthetic.tree),
                    refined_cut.display(&synthetic.tree)
                );
            }
        }
    }

    /// Meta-variables partition the leaves: every tree leaf belongs to
    /// exactly one meta-variable, and identity cuts at leaves map to
    /// themselves.
    #[test]
    fn meta_vars_partition_leaves(config in config_strategy()) {
        let mut synthetic = generate(config);
        for cut in enumerate_cuts(&synthetic.tree, 10_000).expect("small tree") {
            let applied =
                apply_cut(&synthetic.set, &synthetic.tree, &cut, &mut synthetic.reg);
            let mut seen: Vec<Var> = Vec::new();
            for meta in &applied.meta_vars {
                for &leaf in &meta.leaves {
                    prop_assert!(!seen.contains(&leaf), "leaf covered twice");
                    seen.push(leaf);
                }
            }
            prop_assert_eq!(seen.len(), synthetic.tree.num_leaves());
        }
    }
}
