//! Property tests for the multi-tree coordinate-descent optimizer
//! (extension beyond the demo's single-tree setting): feasibility, parity
//! with the exact single-tree DP when the forest has one tree, and parity
//! with the brute-force forest oracle on small two-tree instances.

use cobra::core::{brute, dp, optimize_forest_descent, AbstractionTree, GroupAnalysis};
use cobra::provenance::{Monomial, PolySet, Polynomial, VarRegistry};
use cobra::util::Rat;
use proptest::prelude::*;

/// Builds a two-tree workload: monomials are `coeff · leafA · leafB`
/// with one leaf from each tree (the general shape of the telephony and
/// TPC-H parameterizations).
fn two_tree_workload(
    picks: &[(usize, usize, usize, i64)],
) -> (VarRegistry, AbstractionTree, AbstractionTree, PolySet<Rat>) {
    let mut reg = VarRegistry::new();
    let tree_a = AbstractionTree::parse("A(a0,a1,A2(a2,a3))", &mut reg).unwrap();
    let tree_b = AbstractionTree::parse("B(B1(b0,b1),b2)", &mut reg).unwrap();
    let a_leaves = tree_a.leaves().to_vec();
    let b_leaves = tree_b.leaves().to_vec();
    let mut polys = vec![Polynomial::zero(); 2];
    for &(poly, la, lb, coeff) in picks {
        polys[poly % 2].add_term(
            Monomial::from_pairs([
                (a_leaves[la % a_leaves.len()], 1),
                (b_leaves[lb % b_leaves.len()], 1),
            ]),
            Rat::int(coeff.max(1)),
        );
    }
    let set = PolySet::from_entries(
        polys
            .into_iter()
            .enumerate()
            .map(|(i, p)| (format!("P{i}"), p)),
    );
    (reg, tree_a, tree_b, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn descent_single_tree_equals_dp(
        picks in proptest::collection::vec((0usize..2, 0usize..4, 0usize..3, 1i64..50), 1..16),
        divisor in 1u64..5,
    ) {
        let (mut reg, tree_a, _, set) = two_tree_workload(&picks);
        let analysis = GroupAnalysis::analyze(&set, &tree_a).expect("one leaf per tree");
        let bound = (analysis.total_monomials() / divisor).max(1);
        let exact = dp::optimize(&tree_a, &analysis, bound);
        let descent = optimize_forest_descent(&set, &[&tree_a], bound, &mut reg, 16);
        match (exact, descent) {
            (Ok(e), Ok(d)) => {
                prop_assert_eq!(e.variables, d.variables);
                prop_assert_eq!(e.size, d.size);
            }
            (Err(_), Err(_)) => {}
            (e, d) => return Err(TestCaseError::fail(format!("{e:?} vs {d:?}"))),
        }
    }

    #[test]
    fn descent_feasible_and_close_to_forest_oracle(
        picks in proptest::collection::vec((0usize..2, 0usize..4, 0usize..3, 1i64..50), 1..16),
        divisor in 1u64..6,
    ) {
        let (mut reg, tree_a, tree_b, set) = two_tree_workload(&picks);
        let full = set.total_monomials() as u64;
        let bound = (full / divisor).max(1);
        let descent =
            optimize_forest_descent(&set, &[&tree_a, &tree_b], bound, &mut reg, 32);
        let oracle = brute::optimize_forest(&set, &[&tree_a, &tree_b], bound, &mut reg, 100_000);
        match (descent, oracle) {
            (Ok(d), Ok(o)) => {
                prop_assert!(d.size <= bound, "descent must respect the bound");
                // heuristic never beats the oracle and, on these small
                // instances, should not trail it by more than one variable
                prop_assert!(d.variables <= o.variables);
                prop_assert!(
                    o.variables - d.variables <= 1,
                    "descent {} vs oracle {} (bound {})",
                    d.variables,
                    o.variables,
                    bound
                );
            }
            (Err(_), Err(_)) => {}
            (d, o) => return Err(TestCaseError::fail(format!("{d:?} vs {o:?}"))),
        }
    }
}
