//! Experiment E7 plumbing: the TPC-H phase end to end — generate,
//! instrument, query, compress against geography/time trees, and verify
//! scenario exactness for tree-aligned hypotheticals.

use cobra::core::{CobraSession, GroupAnalysis};
use cobra::datagen::tpch::{
    geography_tree, time_tree, InstrumentedTpch, TpchConfig, TpchDatabase, TPCH_QUERIES,
};
use cobra::provenance::Valuation;
use cobra::util::Rat;

fn instrumented() -> InstrumentedTpch {
    InstrumentedTpch::new(TpchDatabase::generate(TpchConfig {
        scale_factor: 0.003,
        seed: 1234,
    }))
}

#[test]
fn q1_full_pipeline_with_geography_tree() {
    let t = instrumented();
    let polys = t.run(&TPCH_QUERIES[0]).unwrap();
    let full = polys.total_monomials() as u64;
    assert!(full > 100, "Q1 provenance is non-trivial: {full}");

    let mut session = CobraSession::new(t.reg.clone(), polys);
    let geo = geography_tree(session.registry_mut());
    session.add_tree(geo);
    session.set_bound(full / 2);
    let report = session.compress().unwrap();
    assert!(report.compressed_size <= full / 2);
    assert!(report.compressed_vars < report.original_vars);

    // region-aligned scenario: all ASIA nations +5% — exact after
    // compression whenever the cut does not split ASIA
    let mut scenario = Valuation::with_default(Rat::ONE);
    for name in ["india", "indonesia", "japan", "china", "vietnam"] {
        scenario.set(session.registry_mut().var(name), Rat::parse("1.05").unwrap());
    }
    let cmp = session.assign(&scenario).unwrap();
    let asia_is_grouped = session
        .abstraction()
        .unwrap()
        .meta_vars
        .iter()
        .any(|m| m.name == "ASIA");
    if asia_is_grouped {
        assert!(cmp.is_exact(), "ASIA grouped ⇒ ASIA-wide scenario exact");
    }
    assert!(cmp.max_rel_error() < 0.05, "errors stay small either way");
}

#[test]
fn q5_respects_region_filter_and_compresses_to_quarters() {
    let t = instrumented();
    let polys = t.run(&TPCH_QUERIES[2]).unwrap();
    // Q5 groups by ASIA nations only
    assert!(polys.len() <= 5);
    let mut reg = t.reg.clone();
    let time = time_tree(&mut reg);
    let analysis = GroupAnalysis::analyze(&polys, &time).unwrap();
    let full = analysis.total_monomials();
    // collapsing months to quarters divides the month dimension by ~3
    let root = analysis.compressed_size(&[time.root()]);
    assert!(root < full);
    let quarters: Vec<_> = (1..=4)
        .map(|q| time.node_by_name(&format!("sq{q}")).unwrap())
        .collect();
    let quarter_size = analysis.compressed_size(&quarters);
    assert!(root <= quarter_size && quarter_size <= full);
}

#[test]
fn q6_single_polynomial_compression() {
    let t = instrumented();
    let polys = t.run(&TPCH_QUERIES[3]).unwrap();
    assert_eq!(polys.len(), 1);
    let mut session = CobraSession::new(t.reg.clone(), polys);
    let geo = geography_tree(session.registry_mut());
    session.add_tree(geo);
    session.set_bound(12); // at most one monomial per month
    let report = session.compress().unwrap();
    assert!(report.compressed_size <= 12);
}

#[test]
fn q3_and_q10_produce_per_group_polynomials() {
    let t = instrumented();
    for name in ["Q3", "Q10"] {
        let q = TPCH_QUERIES.iter().find(|q| q.name == name).unwrap();
        let polys = t.run(q).unwrap();
        assert!(!polys.is_empty(), "{}", q.name);
        // every polynomial uses only registered vars and has positive size
        for (label, poly) in polys.iter() {
            assert!(poly.num_terms() > 0, "{}: {label}", q.name);
        }
    }
}

#[test]
fn q11_partsupp_compression_pipeline() {
    let t = instrumented();
    let q11 = TPCH_QUERIES.iter().find(|q| q.name == "Q11").unwrap();
    let polys = t.run(q11).unwrap();
    assert!(!polys.is_empty());
    let full = polys.total_monomials() as u64;
    let mut session = CobraSession::new(t.reg.clone(), polys);
    let geo = geography_tree(session.registry_mut());
    session.add_tree(geo);
    // EUROPE has 5 nations; grouping them bounds each part's polynomial
    // by one monomial
    session.set_bound(full); // any bound; check the frontier edge instead
    session.compress().unwrap();
    let analysis = GroupAnalysis::analyze(session.polynomials(), &session.trees()[0]).unwrap();
    let root = analysis.compressed_size(&[session.trees()[0].root()]);
    assert!(root <= full);
    assert_eq!(
        root,
        session.polynomials().len() as u64,
        "root cut leaves exactly one monomial per part (no month dimension)"
    );
}

#[test]
fn brand_dimension_full_pipeline() {
    use cobra::datagen::tpch::{part_tree, PriceDimension};
    let t = cobra::datagen::tpch::InstrumentedTpch::with_dimension(
        TpchDatabase::generate(TpchConfig {
            scale_factor: 0.003,
            seed: 1234,
        }),
        PriceDimension::PartBrand,
    );
    let polys = t.run(&TPCH_QUERIES[0]).unwrap();
    let full = polys.total_monomials() as u64;
    let mut session = CobraSession::new(t.reg.clone(), polys);
    let parts = part_tree(session.registry_mut());
    session.add_tree(parts);
    session.set_bound(full / 2);
    let report = session.compress().unwrap();
    assert!(report.compressed_size <= full / 2);
    // a brand-aligned scenario stays exact when its manufacturer group
    // is not split below the brand level
    let mut scenario = cobra::provenance::Valuation::with_default(Rat::ONE);
    for n in 1..=5 {
        scenario.set(
            session.registry_mut().var(&format!("brand_1{n}")),
            Rat::parse("1.02").unwrap(),
        );
    }
    let cmp = session.assign(&scenario).unwrap();
    assert!(cmp.max_rel_error() < 0.02);
}

#[test]
fn multi_tree_session_on_q1() {
    let t = instrumented();
    let polys = t.run(&TPCH_QUERIES[0]).unwrap();
    let full = polys.total_monomials() as u64;
    let mut session = CobraSession::new(t.reg.clone(), polys);
    let geo = geography_tree(session.registry_mut());
    session.add_tree(geo);
    let time = time_tree(session.registry_mut());
    session.add_tree(time);
    session.set_bound(full / 4);
    let report = session.compress().unwrap();
    assert!(report.compressed_size <= full / 4);
    assert_eq!(report.cuts.len(), 2);
}
