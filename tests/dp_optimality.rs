//! Property test: the DP optimizer is exactly optimal.
//!
//! Random abstraction trees and polynomial sets; the DP's answer must
//! match the brute-force enumeration (maximal cut cardinality under the
//! bound, minimal size among those) for every feasible bound, and the
//! claimed size must match a real application of the cut.

use cobra::core::{apply_cut, enumerate_cuts, optimize, CoreError, GroupAnalysis};
use cobra::core::{AbstractionTree, TreeSpec};
use cobra::provenance::{Monomial, PolySet, Polynomial, VarRegistry};
use cobra::util::Rat;
use proptest::prelude::*;

/// Random tree spec (depth ≤ 3, arity ≤ 3) with globally unique names.
fn tree_strategy() -> impl Strategy<Value = TreeSpec> {
    tree_spec_inner(3)
        .prop_map(|spec| {
            let mut inner = 0usize;
            let mut leaves = 0usize;
            relabel(&spec, &mut inner, &mut leaves)
        })
        .prop_filter("at least 2 leaves", |s| count_leaves(s) >= 2)
}

fn tree_spec_inner(depth: usize) -> BoxedStrategy<TreeSpec> {
    if depth == 0 {
        Just(TreeSpec::leaf("x")).boxed()
    } else {
        prop_oneof![
            2 => Just(TreeSpec::leaf("x")),
            3 => proptest::collection::vec(tree_spec_inner(depth - 1), 2..4)
                .prop_map(|children| TreeSpec::node("n", children)),
        ]
        .boxed()
    }
}

fn relabel(spec: &TreeSpec, inner: &mut usize, leaves: &mut usize) -> TreeSpec {
    match spec {
        TreeSpec::Leaf(_) => {
            let s = TreeSpec::leaf(format!("x{leaves}"));
            *leaves += 1;
            s
        }
        TreeSpec::Node(_, children) => {
            let name = format!("n{inner}");
            *inner += 1;
            TreeSpec::node(
                name,
                children.iter().map(|c| relabel(c, inner, leaves)).collect(),
            )
        }
    }
}

fn count_leaves(spec: &TreeSpec) -> usize {
    match spec {
        TreeSpec::Leaf(_) => 1,
        TreeSpec::Node(_, children) => children.iter().map(count_leaves).sum(),
    }
}

/// Random polynomial set over the tree's leaves plus two context vars.
fn polyset_for(
    tree: &AbstractionTree,
    reg: &mut VarRegistry,
    picks: &[(usize, usize, usize, i64)],
) -> PolySet<Rat> {
    let contexts = [reg.var("ctx0"), reg.var("ctx1")];
    let leaves = tree.leaves().to_vec();
    let mut polys = vec![Polynomial::zero(); 2];
    for &(poly, ctx, leaf, coeff) in picks {
        let leaf = leaves[leaf % leaves.len()];
        let m = Monomial::from_pairs([(contexts[ctx % 2], 1), (leaf, 1)]);
        polys[poly % 2].add_term(m, Rat::int(coeff.max(1)));
    }
    PolySet::from_entries(
        polys
            .into_iter()
            .enumerate()
            .map(|(i, p)| (format!("P{i}"), p)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dp_matches_brute_force(
        spec in tree_strategy(),
        picks in proptest::collection::vec(
            (0usize..2, 0usize..2, 0usize..16, 1i64..100),
            1..24
        ),
    ) {
        let mut reg = VarRegistry::new();
        let tree = AbstractionTree::build(&spec, &mut reg).expect("unique names");
        let set = polyset_for(&tree, &mut reg, &picks);
        let analysis = GroupAnalysis::analyze(&set, &tree).expect("one leaf per monomial");
        let cuts = enumerate_cuts(&tree, 50_000).expect("small tree");
        let full = analysis.total_monomials();

        for bound in 0..=full + 1 {
            let dp = optimize(&tree, &analysis, bound);
            // oracle: evaluate every cut by real application
            let mut best: Option<(usize, u64)> = None;
            for cut in &cuts {
                let mut reg2 = reg.clone();
                let applied = apply_cut(&set, &tree, cut, &mut reg2);
                let size = applied.compressed_size as u64;
                if size <= bound {
                    let cand = (cut.len(), size);
                    let better = match best {
                        None => true,
                        Some((bk, bs)) => cand.0 > bk || (cand.0 == bk && cand.1 < bs),
                    };
                    if better {
                        best = Some(cand);
                    }
                }
            }
            match (dp, best) {
                (Ok(sol), Some((k, size))) => {
                    prop_assert_eq!(sol.variables, k, "bound {}", bound);
                    prop_assert_eq!(sol.size, size, "bound {}", bound);
                    // the DP's cut really has that size
                    let mut reg3 = reg.clone();
                    let applied = apply_cut(&set, &tree, &sol.cut, &mut reg3);
                    prop_assert_eq!(applied.compressed_size as u64, sol.size);
                }
                (Err(CoreError::InfeasibleBound { min_achievable }), None) => {
                    prop_assert!(min_achievable > bound);
                }
                (dp, best) => {
                    return Err(TestCaseError::fail(format!(
                        "bound {bound}: dp {dp:?} vs oracle {best:?}"
                    )));
                }
            }
        }
    }
}
