//! Engine integration tests: SQL end to end over multi-table databases,
//! checked against hand-computed results, plus K-relation provenance
//! through the same schemas.

use cobra::engine::krelation::KRelation;
use cobra::engine::{Database, EngineError, Relation, Schema, Value};
use cobra::provenance::semiring::Why;
use cobra::provenance::Var;
use cobra::util::Rat;

fn rat(s: &str) -> Rat {
    Rat::parse(s).unwrap()
}

fn shop_db() -> Database {
    let mut db = Database::new();
    db.insert(
        "items",
        Relation::from_rows(
            ["item", "category", "price"],
            vec![
                vec![Value::str("apple"), Value::str("fruit"), Value::Num(rat("1.2"))],
                vec![Value::str("pear"), Value::str("fruit"), Value::Num(rat("2.5"))],
                vec![Value::str("soap"), Value::str("home"), Value::Num(rat("3.0"))],
                vec![Value::str("mop"), Value::str("home"), Value::Num(rat("9.9"))],
            ],
        )
        .unwrap(),
    );
    db.insert(
        "sales",
        Relation::from_rows(
            ["sitem", "qty", "day"],
            vec![
                vec![Value::str("apple"), Value::Int(3), Value::Int(1)],
                vec![Value::str("apple"), Value::Int(2), Value::Int(2)],
                vec![Value::str("pear"), Value::Int(1), Value::Int(1)],
                vec![Value::str("mop"), Value::Int(5), Value::Int(2)],
            ],
        )
        .unwrap(),
    );
    db
}

#[test]
fn join_aggregate_arithmetic() {
    let db = shop_db();
    let out = db
        .sql(
            "SELECT category, SUM(qty * price) AS revenue, COUNT(*) AS n \
             FROM items, sales WHERE item = sitem GROUP BY category",
        )
        .unwrap()
        .sorted_for_display();
    assert_eq!(out.len(), 2);
    // fruit: 3·1.2 + 2·1.2 + 1·2.5 = 8.5 over 3 sale rows
    assert_eq!(out.rows()[0][0], Value::str("fruit"));
    assert_eq!(out.rows()[0][1], Value::Num(rat("8.5")));
    assert_eq!(out.rows()[0][2], Value::Int(3));
    // home: 5·9.9 = 49.5
    assert_eq!(out.rows()[1][1], Value::Num(rat("49.5")));
}

#[test]
fn filters_and_expressions() {
    let db = shop_db();
    let out = db
        .sql("SELECT item, price * 2 AS dbl FROM items WHERE price >= 2.5 AND category <> 'home'")
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0][0], Value::str("pear"));
    assert_eq!(out.rows()[0][1], Value::Num(rat("5")));
}

#[test]
fn min_max_avg_and_aliased_tables() {
    let db = shop_db();
    let out = db
        .sql(
            "SELECT MIN(i.price) AS lo, MAX(i.price) AS hi, AVG(i.price) AS mean \
             FROM items i",
        )
        .unwrap();
    assert_eq!(out.rows()[0][0], Value::Num(rat("1.2")));
    assert_eq!(out.rows()[0][1], Value::Num(rat("9.9")));
    assert_eq!(out.rows()[0][2], Value::Num(rat("4.15")));
}

#[test]
fn three_way_join_chain() {
    let mut db = shop_db();
    db.insert(
        "days",
        Relation::from_rows(
            ["d", "weekday"],
            vec![
                vec![Value::Int(1), Value::str("mon")],
                vec![Value::Int(2), Value::str("tue")],
            ],
        )
        .unwrap(),
    );
    let out = db
        .sql(
            "SELECT weekday, SUM(qty * price) AS revenue \
             FROM items, sales, days \
             WHERE item = sitem AND day = d \
             GROUP BY weekday",
        )
        .unwrap()
        .sorted_for_display();
    assert_eq!(out.len(), 2);
    // mon: 3·1.2 + 1·2.5 = 6.1; tue: 2·1.2 + 5·9.9 = 51.9
    assert_eq!(out.rows()[0][0], Value::str("mon"));
    assert_eq!(out.rows()[0][1], Value::Num(rat("6.1")));
    assert_eq!(out.rows()[1][1], Value::Num(rat("51.9")));
}

#[test]
fn empty_results_and_unmatched_joins() {
    let db = shop_db();
    let none = db
        .sql("SELECT item FROM items WHERE price > 100")
        .unwrap();
    assert!(none.is_empty());
    let mut db2 = shop_db();
    db2.insert("empty", Relation::empty(Schema::new(["eitem"])));
    let joined = db2
        .sql("SELECT item FROM items, empty WHERE item = eitem")
        .unwrap();
    assert!(joined.is_empty());
}

#[test]
fn duplicate_rows_are_bag_semantics() {
    let mut db = Database::new();
    db.insert(
        "t",
        Relation::from_rows(
            ["x"],
            vec![vec![Value::Int(1)], vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap(),
    );
    let out = db.sql("SELECT COUNT(*) AS n, SUM(x) AS s FROM t").unwrap();
    assert_eq!(out.rows()[0][0], Value::Int(3));
    assert_eq!(out.rows()[0][1], Value::Int(4));
}

#[test]
fn error_paths_are_typed() {
    let db = shop_db();
    assert!(matches!(
        db.sql("SELECT nope FROM items"),
        Err(EngineError::UnknownColumn(_))
    ));
    assert!(matches!(
        db.sql("SELECT item FROM missing"),
        Err(EngineError::UnknownTable(_))
    ));
    assert!(matches!(
        db.sql("SELECT item FROM"),
        Err(EngineError::Sql { .. })
    ));
    assert!(matches!(
        db.sql("SELECT price + item FROM items"),
        Err(EngineError::TypeError(_))
    ));
}

#[test]
fn order_by_and_limit() {
    let db = shop_db();
    let out = db
        .sql("SELECT item, price FROM items ORDER BY price DESC LIMIT 2")
        .unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out.rows()[0][0], Value::str("mop"));
    assert_eq!(out.rows()[1][0], Value::str("soap"));
    // multi-key with mixed directions over an aggregate
    let agg = db
        .sql(
            "SELECT category, SUM(qty) AS total \
             FROM items, sales WHERE item = sitem \
             GROUP BY category ORDER BY total DESC, category ASC",
        )
        .unwrap();
    assert_eq!(agg.rows()[0][0], Value::str("fruit")); // total 6 > 5
    assert_eq!(agg.rows()[1][0], Value::str("home"));
    // LIMIT without ORDER BY keeps first rows
    let limited = db.sql("SELECT item FROM items LIMIT 1").unwrap();
    assert_eq!(limited.len(), 1);
    // LIMIT larger than result is a no-op
    assert_eq!(db.sql("SELECT item FROM items LIMIT 99").unwrap().len(), 4);
}

#[test]
fn having_filters_groups() {
    let db = shop_db();
    let out = db
        .sql(
            "SELECT category, SUM(qty) AS total \
             FROM items, sales WHERE item = sitem \
             GROUP BY category HAVING SUM(qty) > 5 ORDER BY category",
        )
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0][0], Value::str("fruit")); // total 6 > 5; home has 5
    // HAVING may also reference output aliases and mix conditions
    let out = db
        .sql(
            "SELECT category, SUM(qty) AS total, COUNT(*) AS n \
             FROM items, sales WHERE item = sitem \
             GROUP BY category HAVING total >= 5 AND COUNT(*) < 2",
        )
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows()[0][0], Value::str("home")); // 1 sale row
    // aggregates in HAVING must appear in SELECT
    assert!(matches!(
        db.sql(
            "SELECT category, SUM(qty) AS total FROM items, sales \
             WHERE item = sitem GROUP BY category HAVING MIN(qty) > 1"
        ),
        Err(EngineError::Plan(_))
    ));
    // HAVING without aggregation is rejected
    assert!(matches!(
        db.sql("SELECT item FROM items HAVING item = 'x'"),
        Err(EngineError::Plan(_))
    ));
}

#[test]
fn select_distinct() {
    let db = shop_db();
    let out = db
        .sql("SELECT DISTINCT category FROM items ORDER BY category")
        .unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out.rows()[0][0], Value::str("fruit"));
    assert_eq!(out.rows()[1][0], Value::str("home"));
    // distinct over multiple columns keeps genuine combinations
    let out = db
        .sql("SELECT DISTINCT sitem, day FROM sales")
        .unwrap();
    assert_eq!(out.len(), 4); // all (item, day) pairs are unique here
}

#[test]
fn order_by_rejects_symbolic_keys() {
    use cobra::engine::parameterize;
    use cobra::provenance::{Monomial, VarRegistry};
    let mut reg = VarRegistry::new();
    let x = reg.var("x");
    let mut db = shop_db();
    parameterize(db.table_mut("items").unwrap(), "price", |_| {
        Some(Monomial::var(x))
    })
    .unwrap();
    assert!(matches!(
        db.sql("SELECT item, price FROM items ORDER BY price"),
        Err(EngineError::SymbolicValue(_))
    ));
    // ORDER BY references the output columns; sorting by an unselected
    // column is rejected rather than silently reordered
    assert!(matches!(
        db.sql("SELECT item FROM items ORDER BY price"),
        Err(EngineError::UnknownColumn(_))
    ));
}

/// Why-provenance through a join-project pipeline over the same shop
/// data: witnesses name exactly the contributing base tuples.
#[test]
fn why_provenance_pipeline() {
    let items_schema = Schema::new(["item", "category"]);
    let sales_schema = Schema::new(["sitem", "qty"]);
    let mut items: KRelation<Why> = KRelation::new(items_schema);
    items
        .insert(vec![Value::str("apple"), Value::str("fruit")], Why::tuple(Var(1)))
        .unwrap();
    items
        .insert(vec![Value::str("mop"), Value::str("home")], Why::tuple(Var(2)))
        .unwrap();
    let mut sales: KRelation<Why> = KRelation::new(sales_schema);
    sales
        .insert(vec![Value::str("apple"), Value::Int(3)], Why::tuple(Var(10)))
        .unwrap();
    sales
        .insert(vec![Value::str("apple"), Value::Int(2)], Why::tuple(Var(11)))
        .unwrap();

    let joined = items.join(&sales, &[("item", "sitem")]).unwrap();
    let cats = joined.project(&["category"]).unwrap();
    let fruit = cats
        .annotation(&vec![Value::str("fruit")])
        .unwrap();
    // two witnesses: {item1, sale10} and {item1, sale11}
    assert_eq!(fruit.0.len(), 2);
    for witness in &fruit.0 {
        assert!(witness.contains(&Var(1)));
        assert_eq!(witness.len(), 2);
    }
    // home category never sold → zero annotation
    let home = cats.annotation(&vec![Value::str("home")]).unwrap();
    assert!(home.0.is_empty());
}
