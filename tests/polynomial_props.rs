//! Property tests on the provenance-polynomial substrate: ring laws,
//! canonical-form invariants, parser round-trips, and the interplay of
//! renaming (abstraction) with evaluation.

use cobra::provenance::{parse_poly, Monomial, Polynomial, Valuation, Var, VarRegistry};
use cobra::util::Rat;
use proptest::prelude::*;

const NUM_VARS: u32 = 5;

fn rat_strategy() -> impl Strategy<Value = Rat> {
    (-50i128..50, 1i128..8).prop_map(|(n, d)| Rat::new(n, d))
}

fn monomial_strategy() -> impl Strategy<Value = Monomial> {
    proptest::collection::vec((0u32..NUM_VARS, 1u32..3), 0..4)
        .prop_map(|pairs| Monomial::from_pairs(pairs.into_iter().map(|(v, e)| (Var(v), e))))
}

fn poly_strategy() -> impl Strategy<Value = Polynomial<Rat>> {
    proptest::collection::vec((monomial_strategy(), rat_strategy()), 0..6)
        .prop_map(Polynomial::from_terms)
}

fn valuation_strategy() -> impl Strategy<Value = Valuation<Rat>> {
    proptest::collection::vec(rat_strategy(), NUM_VARS as usize).prop_map(|vals| {
        let mut v = Valuation::with_default(Rat::ONE);
        for (i, value) in vals.into_iter().enumerate() {
            v.set(Var(i as u32), value);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ring_laws(p in poly_strategy(), q in poly_strategy(), r in poly_strategy()) {
        // commutativity
        prop_assert_eq!(p.add(&q), q.add(&p));
        prop_assert_eq!(p.mul(&q), q.mul(&p));
        // associativity
        prop_assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
        prop_assert_eq!(p.mul(&q).mul(&r), p.mul(&q.mul(&r)));
        // distributivity
        prop_assert_eq!(p.mul(&q.add(&r)), p.mul(&q).add(&p.mul(&r)));
        // identities & inverses
        prop_assert_eq!(p.add(&Polynomial::zero()), p.clone());
        prop_assert_eq!(p.mul(&Polynomial::constant(Rat::ONE)), p.clone());
        prop_assert!(p.sub(&p).is_zero());
    }

    #[test]
    fn canonical_form_invariants(p in poly_strategy(), q in poly_strategy()) {
        for poly in [&p, &q, &p.add(&q), &p.mul(&q)] {
            // strictly increasing monomials, no zero coefficients
            let terms: Vec<_> = poly.iter().collect();
            for w in terms.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            prop_assert!(terms.iter().all(|(_, c)| !c.is_zero()));
        }
    }

    #[test]
    fn evaluation_is_a_ring_homomorphism(
        p in poly_strategy(),
        q in poly_strategy(),
        val in valuation_strategy(),
    ) {
        let ev = |poly: &Polynomial<Rat>| poly.eval(&val).unwrap();
        prop_assert_eq!(ev(&p.add(&q)), ev(&p) + ev(&q));
        prop_assert_eq!(ev(&p.mul(&q)), ev(&p) * ev(&q));
        prop_assert_eq!(ev(&p.neg()), -ev(&p));
    }

    /// rename-then-evaluate == evaluate-with-pulled-back-valuation: the
    /// algebraic heart of the compression correctness argument.
    #[test]
    fn rename_commutes_with_eval(
        p in poly_strategy(),
        val in valuation_strategy(),
        target in 0u32..NUM_VARS,
    ) {
        // merge all variables into `target`
        let renamed = p.rename_vars(|_| Var(target));
        let direct = renamed.eval(&val).unwrap();
        // pull back: every variable takes target's value
        let target_value = val.get(Var(target)).unwrap();
        let pulled = Valuation::with_default(target_value);
        prop_assert_eq!(p.eval(&pulled).unwrap(), direct);
    }

    #[test]
    fn rename_preserves_eval_under_matching_valuation(
        p in poly_strategy(),
        val in valuation_strategy(),
    ) {
        // identity rename is a no-op
        prop_assert_eq!(p.rename_vars(|v| v), p.clone());
        // renaming can only reduce (or keep) the term count
        let merged = p.rename_vars(|v| Var(v.0 / 2));
        prop_assert!(merged.num_terms() <= p.num_terms());
        let _ = val;
    }

    #[test]
    fn partial_eval_then_total_matches_direct(
        p in poly_strategy(),
        val in valuation_strategy(),
    ) {
        // bind only even vars first, then the rest
        let mut first = Valuation::new();
        let mut second = Valuation::with_default(Rat::ONE);
        for i in 0..NUM_VARS {
            let value = val.get(Var(i)).unwrap();
            if i % 2 == 0 {
                first.set(Var(i), value);
            } else {
                second.set(Var(i), value);
            }
        }
        let staged = p.partial_eval(&first).eval(&second).unwrap();
        prop_assert_eq!(staged, p.eval(&val).unwrap());
    }

    #[test]
    fn display_parse_round_trip(p in poly_strategy()) {
        let mut reg = VarRegistry::new();
        for i in 0..NUM_VARS {
            reg.var(&format!("v{i}"));
        }
        let printed = p.display(&reg).to_string();
        let reparsed = parse_poly(&printed, &mut reg).unwrap();
        prop_assert_eq!(reparsed, p);
    }

    #[test]
    fn dense_and_sparse_eval_agree(p in poly_strategy(), val in valuation_strategy()) {
        let dense = cobra::provenance::DenseValuation::from_valuation(
            &val, NUM_VARS as usize, Rat::ONE,
        );
        prop_assert_eq!(p.eval(&val).unwrap(), p.eval_dense(&dense));
    }
}
