//! The ISSUE 2 acceptance bar: a 10⁵+-scenario grid sweeps through
//! `CobraSession::sweep` without materializing per-scenario `Valuation`s.
//!
//! A counting global allocator measures every byte allocated during the
//! sweep. The budget is the sweep's own output (two flat `Rat` matrices,
//! `scenarios × polys` each) plus a small constant for the streamed block
//! buffers — O(axes + lane block). Materializing 10⁵ valuations (hash
//! maps) or per-scenario row vectors costs tens of megabytes and blows
//! the budget, so any regression to a materializing path fails here.
//!
//! This file contains exactly one test so no concurrently running test
//! pollutes the allocation counter.

use cobra::core::scenario_set::Axis;
use cobra::core::{CobraSession, ScenarioSet};
use cobra::util::Rat;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const PAPER_POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";

const FIG2_TREE: &str =
    "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))";

#[test]
fn hundred_thousand_scenario_grid_sweeps_within_output_budget() {
    let rat = |s: &str| Rat::parse(s).unwrap();
    let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
    s.add_tree_text(FIG2_TREE).unwrap();
    s.set_bound(6);
    s.compress().unwrap();

    // 47³ = 103 823 scenarios over three disjoint factor groups, held in
    // three axes — O(axes) description.
    let steps = 47usize;
    let m3 = s.registry_mut().var("m3");
    let b_vars = ["b1", "b2", "e"].map(|n| s.registry_mut().var(n));
    let p_vars = ["p1", "p2"].map(|n| s.registry_mut().var(n));
    let grid = ScenarioSet::grid()
        .push(Axis::linspace([m3], rat("0.8"), rat("1.2"), steps))
        .push(Axis::linspace(b_vars, rat("0.9"), rat("1.1"), steps))
        .push(Axis::linspace(p_vars, rat("0.9"), rat("1.1"), steps))
        .build()
        .unwrap();
    let n = grid.len();
    assert!(n >= 100_000, "acceptance requires a 10^5+ grid, got {n}");

    // Warm-up run: initializes the session's lazy engines and faults in
    // allocator metadata, so the measured run sees steady state.
    let warm = s.sweep(&grid).unwrap();
    assert_eq!(warm.len(), n);
    drop(warm);

    let before = ALLOCATED.load(Ordering::SeqCst);
    let sweep = s.sweep(&grid).unwrap();
    let allocated = ALLOCATED.load(Ordering::SeqCst) - before;

    // Budget: the sweep's own flat output (full + compressed value
    // matrices) plus 2 MiB for block buffers, labels and slack. A path
    // that materializes per-scenario valuations (≥ ~200 B each) or row
    // vectors (≥ ~400 B each) costs 20–60 MB and fails.
    let np = sweep.num_polys();
    let output_bytes = 2 * n * np * std::mem::size_of::<Rat>();
    let budget = output_bytes + 2 * 1024 * 1024;
    assert!(
        allocated <= budget,
        "grid sweep allocated {allocated} bytes, budget {budget} \
         (output {output_bytes}); a per-scenario materialization snuck in"
    );

    // And the results are bit-identical to the materialized-vector path,
    // spot-checked across the grid (the full cross-check lives in
    // tests/scenario_grid.rs at smaller cardinality).
    let base = s.base_valuation().clone();
    for i in [0usize, 1, 46, 47, 2_208, 51_911, n - 2, n - 1] {
        let single = s.assign(grid.scenario_valuation(i, &base)).unwrap();
        assert_eq!(sweep.comparison(i).rows, single.rows, "scenario {i}");
    }
    // the business axis stays uniform over its group → those moves are
    // exact; the grid must contain both exact and lossy points overall
    assert!(sweep.scenario_max_rel_error(0) == 0.0);
}
