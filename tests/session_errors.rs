//! Failure-path coverage for the session pipeline: every misuse and
//! infeasibility mode surfaces as a typed, actionable error (the demo UI
//! relies on these to guide the analyst's bound choice).

use cobra::core::{CobraSession, CoreError, ScenarioSet, SweepBudget};
use cobra::provenance::Valuation;
use cobra::util::faults::{with_faults, FaultPlan, INJECTED_PANIC};
use cobra::util::{par, CancelToken, Rat};
use std::time::Duration;

const POLYS: &str = "P1 = 2*a*x + 3*b*x\nP2 = 5*a*y";

#[test]
fn missing_inputs_in_order() {
    let mut s = CobraSession::from_text(POLYS).unwrap();
    // no bound
    assert!(matches!(s.compress(), Err(CoreError::Session(_))));
    s.set_bound(10);
    // no tree
    assert!(matches!(s.compress(), Err(CoreError::Session(_))));
    // results before compression
    assert!(matches!(s.meta_summary(), Err(CoreError::Session(_))));
    assert!(matches!(
        s.assign(Valuation::with_default(Rat::ONE)),
        Err(CoreError::Session(_))
    ));
    assert!(matches!(
        s.measure_speedup(&Valuation::with_default(Rat::ONE), 0, 1),
        Err(CoreError::Session(_))
    ));
}

#[test]
fn infeasible_bound_reports_minimum_achievable() {
    let mut s = CobraSession::from_text(POLYS).unwrap();
    s.add_tree_text("T(a,b)").unwrap();
    // coarsest abstraction: P1 → {T·x}, P2 → {T·y} ⇒ minimum size 2
    s.set_bound(1);
    match s.compress() {
        Err(CoreError::InfeasibleBound { min_achievable }) => {
            assert_eq!(min_achievable, 2)
        }
        other => panic!("{other:?}"),
    }
    // raising the bound to the reported minimum succeeds
    s.set_bound(2);
    let report = s.compress().unwrap();
    assert_eq!(report.compressed_size, 2);
}

#[test]
fn malformed_inputs_are_parse_errors() {
    assert!(matches!(
        CobraSession::from_text("not a polynomial line"),
        Err(CoreError::Session(_))
    ));
    let mut s = CobraSession::from_text(POLYS).unwrap();
    assert!(matches!(
        s.add_tree_text("T(a,"),
        Err(CoreError::TreeParse { .. })
    ));
    assert!(matches!(
        s.add_tree_text("T(a, a)"),
        Err(CoreError::DuplicateNodeName(_))
    ));
}

#[test]
fn spanning_monomial_is_rejected_with_context() {
    // a·b in one monomial while a and b are leaves of the same tree
    let mut s = CobraSession::from_text("P = 2*a*b").unwrap();
    s.add_tree_text("T(a,b)").unwrap();
    s.set_bound(1);
    match s.compress() {
        Err(CoreError::MonomialSpansTree { poly, .. }) => assert_eq!(poly, "P"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn recompression_invalidates_stale_state() {
    let mut s = CobraSession::from_text(POLYS).unwrap();
    s.add_tree_text("T(a,b)").unwrap();
    s.set_bound(10);
    s.compress().unwrap();
    assert!(s.meta_summary().is_ok());
    // changing the bound invalidates compressed state until recompression
    s.set_bound(2);
    assert!(matches!(s.meta_summary(), Err(CoreError::Session(_))));
    s.compress().unwrap();
    assert!(s.meta_summary().is_ok());
    // adding a tree also invalidates
    s.add_tree_text("U(x,y)").unwrap();
    assert!(matches!(s.meta_summary(), Err(CoreError::Session(_))));
}

#[test]
fn error_messages_are_actionable() {
    let err = CoreError::InfeasibleBound { min_achievable: 42 };
    assert!(err.to_string().contains("42"));
    let err = CoreError::UnknownNode("Bizness".into());
    assert!(err.to_string().contains("Bizness"));
    let err = CoreError::TooManyCuts { limit: 7 };
    assert!(err.to_string().contains('7'));
    // the budget/robustness variants guide the caller too
    assert!(CoreError::Cancelled.to_string().contains("Partial"));
    assert!(CoreError::DeadlineExceeded.to_string().contains("deadline"));
    let err = CoreError::WorkerPanicked("boom".into());
    assert!(err.to_string().contains("boom"));
    assert!(err.to_string().contains("session remains usable"));
    let err = CoreError::InfeasibleBudget("cap is 0".into());
    assert!(err.to_string().contains("cap is 0"));
}

/// A compressed session with a 20-scenario grid over a grouped variable.
fn sweep_fixture() -> (CobraSession, ScenarioSet) {
    let mut s = CobraSession::from_text(POLYS).unwrap();
    s.add_tree_text("T(a,b)").unwrap();
    s.set_bound(2);
    s.compress().unwrap();
    let x = s.registry_mut().var("x");
    let grid = ScenarioSet::grid()
        .axis([x], (1..=20).map(Rat::int).collect::<Vec<_>>())
        .build()
        .unwrap();
    (s, grid)
}

#[test]
fn zero_scenario_cap_is_infeasible_budget() {
    let (s, grid) = sweep_fixture();
    let budget = SweepBudget::unlimited().with_scenario_cap(0);
    assert!(matches!(
        s.sweep_fold_budgeted(&grid, budget.clone(), 0usize, |n, _| n + 1),
        Err(CoreError::InfeasibleBudget(_))
    ));
    assert!(matches!(
        s.sweep_fold_f64_par_budgeted(&grid, budget, cobra::core::folds::MaxAbsError::new()),
        Err(CoreError::InfeasibleBudget(_))
    ));
}

#[test]
fn demanding_completeness_maps_partials_to_typed_errors() {
    // `with_faults(default)` injects nothing; its scope lock serializes
    // this sweep against the fault-injecting test below.
    with_faults(FaultPlan::default(), || {
        let (s, grid) = sweep_fixture();
        // an expired deadline → Partial → DeadlineExceeded on into_complete
        let expired = SweepBudget::unlimited().with_deadline(Duration::ZERO);
        let outcome = s
            .sweep_fold_budgeted(&grid, expired, 0usize, |n, _| n + 1)
            .unwrap();
        assert!(matches!(
            outcome.into_complete(),
            Err(CoreError::DeadlineExceeded)
        ));
        // a pre-tripped token → Partial → Cancelled
        let token = CancelToken::new();
        token.cancel();
        let cancelled = SweepBudget::unlimited().with_cancel_token(token);
        let outcome = s
            .sweep_fold_budgeted(&grid, cancelled, 0usize, |n, _| n + 1)
            .unwrap();
        assert!(matches!(outcome.into_complete(), Err(CoreError::Cancelled)));
        // exhausting a budget poisons nothing: the *next* call is complete
        // and correct
        let count = s.sweep_fold(&grid, 0usize, |n, _| n + 1).unwrap();
        assert_eq!(count, grid.len());
    });
}

#[test]
fn worker_panic_is_a_typed_error_and_session_survives() {
    let (s, grid) = sweep_fixture();
    let result = with_faults(FaultPlan::panic_on_span(0), || {
        par::with_threads(4, || {
            s.sweep_fold_par(&grid, cobra::core::folds::MaxAbsError::new())
        })
    });
    match result {
        Err(CoreError::WorkerPanicked(msg)) => assert!(msg.contains(INJECTED_PANIC)),
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // the process did not abort and the session still answers correctly
    with_faults(FaultPlan::default(), || {
        let count = s.sweep_fold(&grid, 0usize, |n, _| n + 1).unwrap();
        assert_eq!(count, grid.len());
    });
}
