//! Failure-path coverage for the session pipeline: every misuse and
//! infeasibility mode surfaces as a typed, actionable error (the demo UI
//! relies on these to guide the analyst's bound choice).

use cobra::core::{CobraSession, CoreError};
use cobra::provenance::Valuation;
use cobra::util::Rat;

const POLYS: &str = "P1 = 2*a*x + 3*b*x\nP2 = 5*a*y";

#[test]
fn missing_inputs_in_order() {
    let mut s = CobraSession::from_text(POLYS).unwrap();
    // no bound
    assert!(matches!(s.compress(), Err(CoreError::Session(_))));
    s.set_bound(10);
    // no tree
    assert!(matches!(s.compress(), Err(CoreError::Session(_))));
    // results before compression
    assert!(matches!(s.meta_summary(), Err(CoreError::Session(_))));
    assert!(matches!(
        s.assign(Valuation::with_default(Rat::ONE)),
        Err(CoreError::Session(_))
    ));
    assert!(matches!(
        s.measure_speedup(&Valuation::with_default(Rat::ONE), 0, 1),
        Err(CoreError::Session(_))
    ));
}

#[test]
fn infeasible_bound_reports_minimum_achievable() {
    let mut s = CobraSession::from_text(POLYS).unwrap();
    s.add_tree_text("T(a,b)").unwrap();
    // coarsest abstraction: P1 → {T·x}, P2 → {T·y} ⇒ minimum size 2
    s.set_bound(1);
    match s.compress() {
        Err(CoreError::InfeasibleBound { min_achievable }) => {
            assert_eq!(min_achievable, 2)
        }
        other => panic!("{other:?}"),
    }
    // raising the bound to the reported minimum succeeds
    s.set_bound(2);
    let report = s.compress().unwrap();
    assert_eq!(report.compressed_size, 2);
}

#[test]
fn malformed_inputs_are_parse_errors() {
    assert!(matches!(
        CobraSession::from_text("not a polynomial line"),
        Err(CoreError::Session(_))
    ));
    let mut s = CobraSession::from_text(POLYS).unwrap();
    assert!(matches!(
        s.add_tree_text("T(a,"),
        Err(CoreError::TreeParse { .. })
    ));
    assert!(matches!(
        s.add_tree_text("T(a, a)"),
        Err(CoreError::DuplicateNodeName(_))
    ));
}

#[test]
fn spanning_monomial_is_rejected_with_context() {
    // a·b in one monomial while a and b are leaves of the same tree
    let mut s = CobraSession::from_text("P = 2*a*b").unwrap();
    s.add_tree_text("T(a,b)").unwrap();
    s.set_bound(1);
    match s.compress() {
        Err(CoreError::MonomialSpansTree { poly, .. }) => assert_eq!(poly, "P"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn recompression_invalidates_stale_state() {
    let mut s = CobraSession::from_text(POLYS).unwrap();
    s.add_tree_text("T(a,b)").unwrap();
    s.set_bound(10);
    s.compress().unwrap();
    assert!(s.meta_summary().is_ok());
    // changing the bound invalidates compressed state until recompression
    s.set_bound(2);
    assert!(matches!(s.meta_summary(), Err(CoreError::Session(_))));
    s.compress().unwrap();
    assert!(s.meta_summary().is_ok());
    // adding a tree also invalidates
    s.add_tree_text("U(x,y)").unwrap();
    assert!(matches!(s.meta_summary(), Err(CoreError::Session(_))));
}

#[test]
fn error_messages_are_actionable() {
    let err = CoreError::InfeasibleBound { min_achievable: 42 };
    assert!(err.to_string().contains("42"));
    let err = CoreError::UnknownNode("Bizness".into());
    assert!(err.to_string().contains("Bizness"));
    let err = CoreError::TooManyCuts { limit: 7 };
    assert!(err.to_string().contains('7'));
}
