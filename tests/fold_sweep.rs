//! Integration coverage for the streaming fold-sweep surface (ISSUE 3):
//! property tests pinning `sweep_fold` with an appending fold bit-identical
//! to the materializing `ScenarioSweep` path on random grids, the `f64`
//! fast path within rounding of the exact one (divergence probes
//! included), and the built-in folds wired through a real session.

use cobra::core::folds::{self, ArgmaxImpact, Histogram, MaxAbsError, SweepFold, TopK};
use cobra::core::{forest_sweep, forest_sweep_fold, CobraSession, ScenarioSet};
use cobra::util::Rat;
use proptest::prelude::*;

const PAPER_POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";

const FIG2_TREE: &str =
    "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))";

fn rat(s: &str) -> Rat {
    Rat::parse(s).unwrap()
}

fn compressed_session(bound: u64) -> CobraSession {
    let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
    s.add_tree_text(FIG2_TREE).unwrap();
    s.set_bound(bound);
    s.compress().unwrap();
    s
}

/// Random levels for one axis: 0..=3 levels drawn from a small exact set.
fn levels_strategy() -> impl Strategy<Value = Vec<Rat>> {
    proptest::collection::vec((-20i128..40, 1i128..5), 0..4)
        .prop_map(|pairs| pairs.into_iter().map(|(n, d)| Rat::new(n, d)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `sweep_fold` with an appending fold reproduces `ScenarioSweep`
    /// bit-identically on random grids — the fold engine IS the sweep
    /// engine, across level sets, ops and axis groups (aligned group,
    /// partial group, tree-external variable).
    #[test]
    fn append_fold_reproduces_scenario_sweep(
        m3_levels in levels_strategy(),
        business_levels in levels_strategy(),
        y1_levels in levels_strategy(),
        scale_y1 in 0u8..2,
    ) {
        let scale_y1 = scale_y1 == 1;
        let mut s = compressed_session(6);
        let m3 = s.registry_mut().var("m3");
        let b_vars = ["b1", "b2", "e"].map(|n| s.registry_mut().var(n));
        let y1 = s.registry_mut().var("y1");
        let mut builder = ScenarioSet::grid()
            .axis([m3], m3_levels)
            .axis(b_vars, business_levels);
        builder = if scale_y1 {
            builder.scale_axis([y1], y1_levels)
        } else {
            builder.axis([y1], y1_levels)
        };
        let grid = builder.build().unwrap();
        let sweep = s.sweep(&grid).unwrap();
        let np = sweep.num_polys();
        let (order, full, comp) = s
            .sweep_fold(
                &grid,
                (Vec::new(), Vec::new(), Vec::new()),
                |(mut order, mut full, mut comp): (Vec<usize>, Vec<Rat>, Vec<Rat>), item| {
                    order.push(item.scenario);
                    full.extend_from_slice(item.full);
                    comp.extend_from_slice(item.compressed);
                    (order, full, comp)
                },
            )
            .unwrap();
        prop_assert_eq!(order, (0..grid.len()).collect::<Vec<_>>());
        for i in 0..grid.len() {
            prop_assert_eq!(&full[i * np..(i + 1) * np], sweep.full_row(i), "scenario {}", i);
            prop_assert_eq!(
                &comp[i * np..(i + 1) * np],
                sweep.compressed_row(i),
                "scenario {}",
                i
            );
        }
    }

    /// The `f64` fast path tracks the exact path to floating-point
    /// rounding on random grids, and the divergence probe observes it.
    #[test]
    fn f64_sweep_tracks_exact_within_rounding(
        m3_levels in levels_strategy(),
        business_levels in levels_strategy(),
    ) {
        let mut s = compressed_session(6);
        let m3 = s.registry_mut().var("m3");
        let b_vars = ["b1", "b2", "e"].map(|n| s.registry_mut().var(n));
        let grid = ScenarioSet::grid()
            .axis([m3], m3_levels)
            .scale_axis(b_vars, business_levels)
            .build()
            .unwrap();
        let exact = s.sweep(&grid).unwrap();
        let approx = s.sweep_f64(&grid).unwrap();
        prop_assert_eq!(approx.len(), exact.len());
        for i in 0..exact.len() {
            for (e, a) in exact.full_row(i).iter().zip(approx.full_row(i)) {
                let e = e.to_f64();
                prop_assert!((e - a).abs() <= 1e-9 * e.abs().max(1.0));
            }
            for (e, a) in exact.compressed_row(i).iter().zip(approx.compressed_row(i)) {
                let e = e.to_f64();
                prop_assert!((e - a).abs() <= 1e-9 * e.abs().max(1.0));
            }
        }
        let div = approx.divergence();
        prop_assert_eq!(div.probed, grid.len().min(16));
        prop_assert!(div.max_rel_divergence < 1e-12);
    }
}

#[test]
fn built_in_folds_agree_with_materialized_statistics() {
    let mut s = compressed_session(6);
    let m3 = s.registry_mut().var("m3");
    let b_vars = ["b1", "b2", "e"].map(|n| s.registry_mut().var(n));
    let y1 = s.registry_mut().var("y1");
    let grid = ScenarioSet::grid()
        .axis([m3], [rat("0.8"), rat("0.9"), rat("1"), rat("1.1")])
        .axis(b_vars, [rat("0.9"), rat("1"), rat("1.1")])
        .scale_axis([y1], [rat("1"), rat("1.05")]) // lossy partial touch
        .build()
        .unwrap();
    let sweep = s.sweep(&grid).unwrap();

    // MaxAbsError ≈ the matrix statistic (fold aggregates in f64)
    let worst = s.sweep_fold(&grid, MaxAbsError::new(), folds::step).unwrap();
    assert!((worst.max_rel_error - sweep.max_rel_error()).abs() < 1e-12);
    let argmax = worst.argmax_rel.unwrap();
    assert!(sweep.scenario_max_rel_error(argmax) > 0.0);

    // ArgmaxImpact matches a brute-force scan of the materialized sweep
    let base = s.baseline_results().unwrap();
    let best = s
        .sweep_fold(&grid, ArgmaxImpact::against(base.clone()), folds::step)
        .unwrap()
        .best()
        .unwrap();
    let brute: (usize, f64) = (0..sweep.len())
        .map(|i| {
            let impact: f64 = sweep
                .full_row(i)
                .iter()
                .zip(&base)
                .map(|(f, b)| (f.to_f64() - b).abs())
                .sum();
            (i, impact)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert_eq!(best.0, brute.0);
    assert!((best.1 - brute.1).abs() < 1e-9);

    // Histogram covers every scenario exactly once
    let hist = s
        .sweep_fold(&grid, Histogram::new(0, 700.0, 1100.0, 16), folds::step)
        .unwrap();
    assert_eq!(hist.total(), grid.len() as u64);

    // TopK returns the k largest P1 values, best first, matching a sort
    let top = s.sweep_fold(&grid, TopK::new(0, 5), folds::step).unwrap().finish();
    let mut all: Vec<(usize, f64)> = (0..sweep.len())
        .map(|i| (i, sweep.full_row(i)[0].to_f64()))
        .collect();
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    assert_eq!(top, all[..5].to_vec());

    // …and the same folds run unchanged on the approximate stream
    let (worst64, div) = s
        .sweep_fold_f64(&grid, MaxAbsError::new(), folds::step)
        .unwrap();
    assert!((worst64.max_rel_error - worst.max_rel_error).abs() < 1e-9);
    assert!(div.max_rel_divergence < 1e-12);
}

#[test]
fn forest_sweep_fold_matches_forest_sweep() {
    let mut reg = cobra::provenance::VarRegistry::new();
    let set = cobra::provenance::parse_polyset(PAPER_POLYS, &mut reg).unwrap();
    let plans = cobra::core::AbstractionTree::parse(FIG2_TREE, &mut reg).unwrap();
    let months = cobra::core::AbstractionTree::parse("Months(m1,m3)", &mut reg).unwrap();
    let sol = cobra::core::optimize_forest_descent(&set, &[&plans, &months], 4, &mut reg, 16)
        .unwrap();
    let pairs: Vec<_> = [&plans, &months].into_iter().zip(sol.cuts.iter()).collect();
    let applied = cobra::core::apply_cuts(&set, &pairs, &mut reg);
    let base = cobra::provenance::Valuation::with_default(Rat::ONE);
    let m3 = reg.var("m3");
    let b1 = reg.var("b1");
    let grid = ScenarioSet::grid()
        .axis([m3], [rat("0.8"), rat("1"), rat("1.2")])
        .scale_axis([b1], [rat("1"), rat("1.1")])
        .build()
        .unwrap();
    let sweep = forest_sweep(&set, &applied, &base, &grid);
    let rows = forest_sweep_fold(
        &set,
        &applied,
        &base,
        &grid,
        Vec::new(),
        |mut acc: Vec<(Vec<Rat>, Vec<Rat>)>, item| {
            acc.push((item.full.to_vec(), item.compressed.to_vec()));
            acc
        },
    );
    assert_eq!(rows.len(), sweep.len());
    for (i, (full, comp)) in rows.iter().enumerate() {
        assert_eq!(full.as_slice(), sweep.full_row(i));
        assert_eq!(comp.as_slice(), sweep.compressed_row(i));
    }
}
