//! Robustness pins for the budgeted, cancellable, fault-isolated sweep
//! engine: interrupted parallel folds must return `SweepOutcome::Partial`
//! **bit-identical** to a sequential fold over the same scenario prefix
//! at any thread count, injected worker panics must surface as
//! `CoreError::WorkerPanicked` with the process and session still live,
//! and the Higham running-error bound must dominate the measured error.
//!
//! Every test that runs a sweep wraps it in `faults::with_faults` — even
//! the ones that inject nothing (`FaultPlan::default()`): the fault
//! scope arms a process-global plan, so the scope lock doubles as the
//! serialization point keeping concurrent tests in this binary from
//! observing each other's injected faults.

use std::time::Duration;

use cobra::core::folds::{MergeFold, SweepFold};
use cobra::core::{
    CobraSession, CoreError, FoldItem, ScenarioSet, StopReason, SweepBudget, SweepOutcome,
};
use cobra::provenance::Coeff;
use cobra::util::faults::{self, with_faults, FaultPlan, INJECTED_PANIC};
use cobra::util::{par, CancelToken, Rat};

/// An order-sensitive fold: records every item verbatim (scenario index
/// plus both result rows via `Debug`, which round-trips `f64` exactly),
/// so two folds compare equal iff they saw the **same scenarios with the
/// same bits in the same order** — the sharpest possible witness for the
/// partial-prefix bit-identity contract.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Trace(Vec<(usize, String, String)>);

impl SweepFold for Trace {
    type Output = Self;
    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        self.0.push((
            item.scenario,
            format!("{:?}", item.full),
            format!("{:?}", item.compressed),
        ));
    }
    fn finish(self) -> Self {
        self
    }
}

impl MergeFold for Trace {
    fn init(&self) -> Self {
        Trace::default()
    }
    fn merge(&mut self, later: Self) {
        self.0.extend(later.0);
    }
}

/// The paper's P1 with the Fig. 2 tree, compressed at bound 2 — the same
/// fixture the sweep doctests use.
fn session() -> CobraSession {
    let mut s =
        CobraSession::from_text("P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3").unwrap();
    s.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    s.set_bound(2);
    s.compress().unwrap();
    s
}

/// An `n_m3 × n_p1` integer grid over two variables (one inside the
/// abstraction group, one outside), so full and compressed sides differ.
fn grid(s: &mut CobraSession, n_m3: i64, n_p1: i64) -> ScenarioSet {
    let m3 = s.registry_mut().var("m3");
    let p1 = s.registry_mut().var("p1");
    ScenarioSet::grid()
        .axis([m3], (1..=n_m3).map(Rat::int).collect::<Vec<_>>())
        .axis([p1], (1..=n_p1).map(Rat::int).collect::<Vec<_>>())
        .build()
        .unwrap()
}

/// A capped parallel fold is bit-identical to the sequential budgeted
/// fold over the same prefix, at every thread count and for caps on,
/// inside, and past block boundaries (blocks are 1024 scenarios here).
#[test]
fn capped_partial_is_exact_prefix_at_any_thread_count() {
    with_faults(FaultPlan::default(), || {
        let mut s = session();
        let set = grid(&mut s, 60, 50); // 3000 scenarios ⇒ several blocks
        let n = set.len();
        for cap in [1usize, 7, 1024, 1500, 2048, 2999, n, n + 512] {
            let budget = SweepBudget::unlimited().with_scenario_cap(cap);
            let seq = s
                .sweep_fold_budgeted(&set, budget.clone(), Trace::default(), |mut t, item| {
                    t.accept(item);
                    t
                })
                .unwrap();
            if cap < n {
                assert_eq!(seq.scenarios_done(), Some(cap));
                assert_eq!(seq.stop_reason(), Some(StopReason::ScenarioCap));
                assert_eq!(seq.fold().0.len(), cap);
            } else {
                assert!(seq.is_complete());
                assert_eq!(seq.fold().0.len(), n);
            }
            for threads in [1, 2, 4] {
                let par_outcome = par::with_threads(threads, || {
                    s.sweep_fold_par_budgeted(&set, budget.clone(), Trace::default())
                        .unwrap()
                });
                assert_eq!(par_outcome, seq, "cap {cap} × {threads} threads");
            }
        }
    });
}

/// Same contract on the `f64` fast path, divergence probes included: the
/// probes of a capped run are exactly those of a sequential capped run.
#[test]
fn capped_f64_partial_matches_sequential_including_divergence() {
    with_faults(FaultPlan::default(), || {
        let mut s = session();
        let set = grid(&mut s, 60, 40); // 2400 scenarios
        for cap in [5usize, 1024, 2000, 2400] {
            let budget = SweepBudget::unlimited().with_scenario_cap(cap);
            let (seq, seq_div) = s
                .sweep_fold_f64_budgeted(&set, budget.clone(), Trace::default(), |mut t, item| {
                    t.accept(item);
                    t
                })
                .unwrap();
            for threads in [1, 2, 4] {
                let (par_outcome, par_div) = par::with_threads(threads, || {
                    s.sweep_fold_f64_par_budgeted(&set, budget.clone(), Trace::default())
                        .unwrap()
                });
                assert_eq!(par_outcome, seq, "cap {cap} × {threads} threads");
                assert_eq!(par_div.probed, seq_div.probed);
                assert_eq!(
                    par_div.max_rel_divergence.to_bits(),
                    seq_div.max_rel_divergence.to_bits()
                );
            }
        }
    });
}

/// A token tripped before the sweep starts yields an empty exact partial
/// (zero scenarios, the fold's identity) — and the session answers the
/// next, unbudgeted call correctly.
#[test]
fn pre_tripped_token_and_expired_deadline_stop_before_work() {
    with_faults(FaultPlan::default(), || {
        let mut s = session();
        let set = grid(&mut s, 20, 10);
        let token = CancelToken::new();
        token.cancel();
        let budget = SweepBudget::unlimited().with_cancel_token(token);
        for threads in [1, 4] {
            let outcome = par::with_threads(threads, || {
                s.sweep_fold_par_budgeted(&set, budget.clone(), Trace::default())
                    .unwrap()
            });
            assert_eq!(
                outcome,
                SweepOutcome::Partial {
                    fold: Trace::default(),
                    scenarios_done: 0,
                    reason: StopReason::Cancelled,
                }
            );
        }
        // an already-expired deadline behaves the same, with its own reason
        let expired = SweepBudget::unlimited().with_deadline(Duration::ZERO);
        let outcome = s
            .sweep_fold_budgeted(&set, expired, Trace::default(), |mut t, item| {
                t.accept(item);
                t
            })
            .unwrap();
        assert_eq!(outcome.stop_reason(), Some(StopReason::Deadline));
        assert_eq!(outcome.scenarios_done(), Some(0));
        // the exhausted budget poisons nothing: the next call is complete
        let count = s.sweep_fold(&set, 0usize, |n, _| n + 1).unwrap();
        assert_eq!(count, set.len());
    });
}

/// A token tripped *mid-flight* (from another thread, with injected block
/// delays stretching the sweep) stops at a block boundary; whatever
/// prefix completed, re-running with that exact scenario cap must
/// reproduce the partial fold bit for bit.
#[test]
fn mid_flight_cancel_partial_equals_capped_rerun() {
    let plan = FaultPlan {
        block_delay: Some(Duration::from_millis(2)),
        ..FaultPlan::default()
    };
    with_faults(plan, || {
        let mut s = session();
        let set = grid(&mut s, 60, 50); // 3000 scenarios ⇒ ~3 delayed blocks/span
        let token = CancelToken::new();
        let budget = SweepBudget::unlimited().with_cancel_token(token.clone());
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(3));
            token.cancel();
        });
        let outcome = par::with_threads(4, || {
            s.sweep_fold_par_budgeted(&set, budget, Trace::default())
                .unwrap()
        });
        canceller.join().unwrap();
        match outcome {
            SweepOutcome::Partial {
                ref fold,
                scenarios_done,
                reason,
            } => {
                assert_eq!(reason, StopReason::Cancelled);
                assert_eq!(fold.0.len(), scenarios_done);
                if scenarios_done == 0 {
                    return; // nothing completed before the trip — fine
                }
                let rerun = s
                    .sweep_fold_budgeted(
                        &set,
                        SweepBudget::unlimited().with_scenario_cap(scenarios_done),
                        Trace::default(),
                        |mut t, item| {
                            t.accept(item);
                            t
                        },
                    )
                    .unwrap();
                assert_eq!(fold, rerun.fold());
            }
            // the cancel landed after the last block: completeness is the
            // contract then, so check against the plain sequential run
            SweepOutcome::Complete(ref fold) => {
                let seq = s
                    .sweep_fold(&set, Trace::default(), |mut t, item| {
                        t.accept(item);
                        t
                    })
                    .unwrap();
                assert_eq!(*fold, seq);
            }
        }
    });
}

/// An injected worker panic is caught at the span boundary, cancels the
/// sibling workers, and surfaces as `CoreError::WorkerPanicked` carrying
/// the panic message — with the process and the session both still live.
#[test]
fn injected_span_panic_surfaces_as_worker_panicked() {
    let mut s = session();
    let set = grid(&mut s, 20, 10);
    let result = with_faults(FaultPlan::panic_on_span(1), || {
        par::with_threads(4, || s.sweep_fold_par(&set, Trace::default()))
    });
    match result {
        Err(CoreError::WorkerPanicked(msg)) => {
            assert!(msg.contains(INJECTED_PANIC), "unexpected payload: {msg}")
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // the session answers the next call correctly, on both engines
    with_faults(FaultPlan::default(), || {
        let seq = s
            .sweep_fold(&set, Trace::default(), |mut t, item| {
                t.accept(item);
                t
            })
            .unwrap();
        let par_fold = par::with_threads(4, || s.sweep_fold_par(&set, Trace::default()).unwrap());
        assert_eq!(par_fold, seq);
        assert_eq!(seq.0.len(), set.len());
    });
}

/// The same isolation on the `f64` fast path, with the panic injected at
/// a *block* boundary inside a worker's stream loop.
#[test]
fn injected_block_panic_is_isolated_on_f64_path() {
    let mut s = session();
    let set = grid(&mut s, 60, 40);
    let result = with_faults(FaultPlan::panic_on_block(2), || {
        par::with_threads(4, || s.sweep_fold_f64_par(&set, Trace::default()))
    });
    match result {
        Err(CoreError::WorkerPanicked(msg)) => {
            assert!(msg.contains(INJECTED_PANIC), "unexpected payload: {msg}")
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    with_faults(FaultPlan::default(), || {
        let (fold, div) =
            par::with_threads(4, || s.sweep_fold_f64_par(&set, Trace::default()).unwrap());
        assert_eq!(fold.0.len(), set.len());
        assert!(div.max_rel_divergence < 1e-9);
    });
}

/// Injected *delays* (no panics) skew worker interleavings without
/// changing a single bit of any result.
#[test]
fn injected_delays_never_change_results() {
    let mut s = session();
    let set = grid(&mut s, 30, 20);
    let reference = with_faults(FaultPlan::default(), || {
        s.sweep_fold(&set, Trace::default(), |mut t, item| {
            t.accept(item);
            t
        })
        .unwrap()
    });
    let plan = FaultPlan {
        span_delay: Some(Duration::from_micros(200)),
        block_delay: Some(Duration::from_micros(50)),
        ..FaultPlan::default()
    };
    let delayed = with_faults(plan, || {
        assert!(faults::armed());
        par::with_threads(4, || s.sweep_fold_par(&set, Trace::default()).unwrap())
    });
    assert_eq!(delayed, reference);
}

/// The Higham running-error certificate is *sound*: on a dyadic grid
/// (rows bind to `f64` exactly, so the exact rational sweep is the true
/// value of what the kernel computed) the measured error of every
/// scenario is dominated by the reported bound — and the bound itself is
/// bit-identical between the sequential and parallel bounded engines.
#[test]
fn higham_bound_dominates_measured_error_and_is_deterministic() {
    with_faults(FaultPlan::default(), || {
        let mut s = session();
        let m3 = s.registry_mut().var("m3");
        let p1 = s.registry_mut().var("p1");
        let quarter = |i: i64| Rat::int(i) / Rat::int(4); // dyadic values
        let set = ScenarioSet::grid()
            .axis([m3], (1..=40).map(quarter).collect::<Vec<_>>())
            .axis([p1], (1..=16).map(quarter).collect::<Vec<_>>())
            .build()
            .unwrap();
        let (outcome, bound) = s
            .sweep_fold_f64_bounded(
                &set,
                SweepBudget::unlimited(),
                Vec::new(),
                |mut rows, item| {
                    rows.push((item.full.to_vec(), item.compressed.to_vec()));
                    rows
                },
            )
            .unwrap();
        let rows = outcome.into_fold();
        assert_eq!(bound.scenarios, set.len());
        assert!(bound.max_rel_bound.is_finite() && bound.max_rel_bound < 1e-12);
        assert!(bound.argmax_rel.is_some());

        // soundness: |computed − exact| ≤ max_abs_bound for every value
        // (plus half an ulp for rounding the exact rational to f64)
        let exact = s.sweep(&set).unwrap();
        for (i, (full, compressed)) in rows.iter().enumerate() {
            for (side, approx) in [(exact.full_row(i), full), (exact.compressed_row(i), compressed)]
            {
                for (e, a) in side.iter().zip(approx) {
                    let e = e.to_f64();
                    let slack = f64::EPSILON * e.abs();
                    assert!(
                        (e - a).abs() <= bound.max_abs_bound + slack,
                        "scenario {i}: |{e} − {a}| exceeds bound {}",
                        bound.max_abs_bound
                    );
                }
            }
        }

        // determinism: the parallel bounded engine reproduces the exact
        // same certificate at any thread count
        for threads in [1, 2, 4] {
            let (par_outcome, par_bound) = par::with_threads(threads, || {
                s.sweep_fold_f64_bounded_par(&set, SweepBudget::unlimited(), Trace::default())
                    .unwrap()
            });
            assert!(par_outcome.is_complete());
            assert_eq!(par_bound.scenarios, bound.scenarios);
            assert_eq!(par_bound.max_abs_bound.to_bits(), bound.max_abs_bound.to_bits());
            assert_eq!(par_bound.max_rel_bound.to_bits(), bound.max_rel_bound.to_bits());
            assert_eq!(par_bound.argmax_rel, bound.argmax_rel);
        }
    });
}

/// Deadline budgets on the multi-tree forest surface degrade exactly the
/// same way: partial prefix, then full answers on the next call.
#[test]
fn forest_sweep_honours_budgets_too() {
    with_faults(FaultPlan::default(), || {
        use cobra::core::{apply_cuts, forest_sweep_fold_budgeted, optimize_forest_descent};
        use cobra::provenance::{parse_polyset, Valuation, VarRegistry};

        let mut reg = VarRegistry::new();
        let set = parse_polyset("P1 = 2*a*x + 3*b*x + 5*c*y + 7*d*y", &mut reg).unwrap();
        let t1 = cobra::core::AbstractionTree::parse("T(a,b)", &mut reg).unwrap();
        let t2 = cobra::core::AbstractionTree::parse("U(c,d)", &mut reg).unwrap();
        let solution = optimize_forest_descent(&set, &[&t1, &t2], 2, &mut reg, 16).unwrap();
        let pairs: Vec<_> = [&t1, &t2].into_iter().zip(solution.cuts.iter()).collect();
        let applied = apply_cuts(&set, &pairs, &mut reg);
        let x = reg.var("x");
        let scenarios = ScenarioSet::grid()
            .axis([x], (1..=50).map(Rat::int).collect::<Vec<_>>())
            .build()
            .unwrap();
        let budget = SweepBudget::unlimited().with_scenario_cap(13);
        let outcome = forest_sweep_fold_budgeted(
            &set,
            &applied,
            &Valuation::with_default(Rat::ONE),
            &scenarios,
            &budget,
            0usize,
            |n, _| n + 1,
        )
        .unwrap();
        assert_eq!(outcome.scenarios_done(), Some(13));
        assert_eq!(*outcome.fold(), 13);
    });
}
