//! Cross-kernel differential suite (ISSUE 8): the explicit batch kernels
//! — portable scalar, AVX2, AVX2+FMA and the scaled-`i128` fixed-point
//! exact kernel — are pinned against each other and against the generic
//! term-walk reference on random programs × random scenario grids.
//!
//! The contracts under test:
//!
//! * `scalar` ≡ `avx2` ≡ `auto` **bit-identical** for every `f64` batch
//!   surface, at 1 and 4 worker threads (`par::with_threads` ×
//!   `kernel::with_target`, both scoped to this test's thread so
//!   concurrently running tests cannot race on the env variables);
//! * `avx2fma` (fused accumulate, different rounding) stays within the
//!   Higham-style error budget of the scalar kernel;
//! * the scaled-`i128` exact kernel is **representation-identical** to
//!   the plain `Rat` walk wherever it completes, and its per-scenario
//!   overflow fallback is unobservable through the public batch API —
//!   including at magnitudes straddling the `i128` overflow boundary.

use cobra::core::folds::{self, MergeFold, SweepFold};
use cobra::core::scenario::FoldItem;
use cobra::core::{CobraSession, ScenarioSet, SweepBudget};
use cobra::provenance::{
    compile_f64, parse_polyset, BatchEvaluator, Coeff, FixedScratch, VarRegistry,
};
use cobra::util::kernel::{self, KernelTarget};
use cobra::util::par::with_threads;
use cobra::util::Rat;
use proptest::prelude::*;

/// Worker-thread counts the kernel equivalences are pinned under: the
/// serial path and a genuine multi-worker fan-out.
const THREAD_MATRIX: [usize; 2] = [1, 4];

/// Every dispatch target that must stay bit-identical on the `f64` path
/// (FMA is excluded by design: fusing changes rounding).
const IDENTICAL_TARGETS: [KernelTarget; 3] =
    [KernelTarget::Auto, KernelTarget::Scalar, KernelTarget::Avx2];

const PAPER_POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";

const FIG2_TREE: &str =
    "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))";

fn rat(s: &str) -> Rat {
    Rat::parse(s).unwrap()
}

fn compressed_session(bound: u64) -> CobraSession {
    let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
    s.add_tree_text(FIG2_TREE).unwrap();
    s.set_bound(bound);
    s.compress().unwrap();
    s
}

/// The differential collector from `tests/engine_diff.rs`: records every
/// scenario's index and both result rows in the fold's native coefficient
/// type, so exact streams compare as `Rat` and `f64` streams bit for bit.
#[derive(Clone, Debug, PartialEq)]
struct Collect<C> {
    rows: Vec<(usize, Vec<C>, Vec<C>)>,
}

impl<C> Collect<C> {
    fn new() -> Collect<C> {
        Collect { rows: Vec::new() }
    }
}

impl<K: Coeff> SweepFold for Collect<K> {
    type Output = Vec<(usize, Vec<K>, Vec<K>)>;

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        let cast = |xs: &[C]| -> Vec<K> {
            xs.iter()
                .map(|x| {
                    (x as &dyn std::any::Any)
                        .downcast_ref::<K>()
                        .expect("collector used on a stream of its own coefficient type")
                        .clone()
                })
                .collect()
        };
        self.rows
            .push((item.scenario, cast(item.full), cast(item.compressed)));
    }

    fn finish(self) -> Self::Output {
        self.rows
    }
}

impl<K: Coeff> MergeFold for Collect<K> {
    fn init(&self) -> Collect<K> {
        Collect::new()
    }

    fn merge(&mut self, later: Collect<K>) {
        self.rows.extend(later.rows);
    }
}

// ---------------------------------------------------------------------
// Random programs and grids
// ---------------------------------------------------------------------

const VAR_POOL: [&str; 5] = ["a", "b", "c", "d", "w"];

/// One random term: numerator, denominator, and factors as
/// `(variable index, exponent)` pairs. Exponents up to 3 exercise the
/// square-and-multiply `pow` chains, not just plain multiplies.
type TermSpec = (i128, i128, Vec<(u8, u8)>);

fn term_strategy() -> impl Strategy<Value = TermSpec> {
    (
        -500i128..500,
        1i128..40,
        proptest::collection::vec((0u8..5, 1u8..4), 0..4),
    )
}

/// Renders a random term list as the text interchange format, so the
/// suite drives the same parse → compile pipeline as every engine.
fn render_polyset(polys: &[Vec<TermSpec>]) -> String {
    let mut out = String::new();
    for (i, terms) in polys.iter().enumerate() {
        out.push_str(&format!("P{i} = 0"));
        for (num, den, factors) in terms {
            out.push_str(if *num < 0 { " - " } else { " + " });
            out.push_str(&format!("{}/{}", num.abs(), den));
            for (v, e) in factors {
                out.push_str(&format!("*{}^{}", VAR_POOL[*v as usize], e));
            }
        }
        out.push('\n');
    }
    out
}

fn polyset_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::collection::vec(term_strategy(), 1..7), 1..4)
        .prop_map(|polys| render_polyset(&polys))
}

/// A pool of exact scenario values; rows index into it round-robin so
/// one strategy covers any program width.
fn rat_pool_strategy() -> impl Strategy<Value = Vec<Rat>> {
    proptest::collection::vec((-60i128..60, 1i128..8), 8..20)
        .prop_map(|pairs| pairs.into_iter().map(|(n, d)| Rat::new(n, d)).collect())
}

fn rat_rows(pool: &[Rat], n: usize, width: usize) -> Vec<Vec<Rat>> {
    (0..n)
        .map(|k| (0..width).map(|v| pool[(k * width + v) % pool.len()]).collect())
        .collect()
}

fn levels_strategy() -> impl Strategy<Value = Vec<Rat>> {
    proptest::collection::vec((-20i128..40, 1i128..5), 1..4)
        .prop_map(|pairs| pairs.into_iter().map(|(n, d)| Rat::new(n, d)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every dispatch target on the `f64` batch surface produces bits
    /// identical to the generic term-walk reference, per thread count —
    /// and the FMA kernel stays within a Higham-style budget of it.
    #[test]
    fn f64_kernels_match_reference_on_random_programs(
        src in polyset_strategy(),
        pool in rat_pool_strategy(),
        n in 1usize..80,
    ) {
        let mut reg = VarRegistry::new();
        let set = parse_polyset(&src, &mut reg).unwrap();
        let ev = compile_f64(&set);
        let prog = ev.program();
        let (np, width) = (prog.num_polys(), prog.num_locals());
        let rows: Vec<Vec<f64>> = rat_rows(&pool, n, width)
            .into_iter()
            .map(|row| row.into_iter().map(|x| x.to_f64()).collect())
            .collect();

        // Reference: the generic per-scenario walk, no batch kernel.
        let mut reference = vec![0.0f64; n * np];
        for (k, row) in rows.iter().enumerate() {
            prog.eval_scenario_into(row, &mut reference[k * np..(k + 1) * np]);
        }

        let run = |t: KernelTarget, threads: usize| -> Vec<f64> {
            let mut out = vec![0.0f64; n * np];
            with_threads(threads, || {
                kernel::with_target(t, || ev.eval_batch_fast_into(&rows, &mut out))
            });
            out
        };

        for threads in THREAD_MATRIX {
            for t in IDENTICAL_TARGETS {
                let out = run(t, threads);
                for (slot, (&got, &want)) in out.iter().zip(&reference).enumerate() {
                    prop_assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "target {} threads {} slot {} ({} vs {})",
                        t, threads, slot, got, want
                    );
                }
            }
        }

        // FMA reassociates the last multiply into the accumulate, so it
        // may differ — but only within the a-priori rounding budget of
        // the term-magnitude shadow (Σ|c|Π|x|^e), by a wide margin.
        let abs_prog = prog.to_abs_program();
        let mut shadow = vec![0.0f64; n * np];
        let abs_rows: Vec<Vec<f64>> = rows
            .iter()
            .map(|row| row.iter().map(|x| x.abs()).collect())
            .collect();
        for (k, row) in abs_rows.iter().enumerate() {
            abs_prog.eval_scenario_into(row, &mut shadow[k * np..(k + 1) * np]);
        }
        for threads in THREAD_MATRIX {
            let fused = run(KernelTarget::Avx2Fma, threads);
            for (slot, (&got, &want)) in fused.iter().zip(&reference).enumerate() {
                let budget = 1e-12 * shadow[slot].max(1.0);
                prop_assert!(
                    (got - want).abs() <= budget,
                    "fma threads {} slot {}: {} vs {} (budget {})",
                    threads, slot, got, want, budget
                );
            }
        }
    }

    /// The exact batch surface is representation-identical to the plain
    /// `Rat` walk under every target and thread count — with the
    /// fixed-point kernel on (`Auto`) and off (`Scalar`) — and the raw
    /// fixed kernel agrees bit for bit wherever it completes.
    #[test]
    fn exact_fixed_kernel_matches_rat_on_random_programs(
        src in polyset_strategy(),
        pool in rat_pool_strategy(),
        n in 1usize..40,
    ) {
        let mut reg = VarRegistry::new();
        let set = parse_polyset(&src, &mut reg).unwrap();
        let ev: BatchEvaluator<Rat> = BatchEvaluator::compile(&set);
        let prog = ev.program();
        let (np, width) = (prog.num_polys(), prog.num_locals());
        let rows = rat_rows(&pool, n, width);

        let mut reference = vec![Rat::ZERO; n * np];
        for (k, row) in rows.iter().enumerate() {
            prog.eval_scenario_into(row, &mut reference[k * np..(k + 1) * np]);
        }

        for threads in THREAD_MATRIX {
            for t in [KernelTarget::Auto, KernelTarget::Scalar] {
                let mut out = vec![Rat::ZERO; n * np];
                with_threads(threads, || {
                    kernel::with_target(t, || ev.eval_batch_exact_into(&rows, &mut out))
                });
                for (slot, (got, want)) in out.iter().zip(&reference).enumerate() {
                    prop_assert_eq!(
                        (got.numer(), got.denom()),
                        (want.numer(), want.denom()),
                        "target {} threads {} slot {}",
                        t, threads, slot
                    );
                }
            }
        }

        // The raw kernel, wherever it completes, is bit-identical too.
        if let Some(fp) = prog.fixed_program() {
            let mut scratch = FixedScratch::new();
            let mut out = vec![Rat::ZERO; np];
            for (k, row) in rows.iter().enumerate() {
                if fp.eval_scenario_into(prog, row, &mut out, &mut scratch) {
                    for (p, got) in out.iter().enumerate() {
                        let want = &reference[k * np + p];
                        prop_assert_eq!(
                            (got.numer(), got.denom()),
                            (want.numer(), want.denom()),
                            "scenario {} poly {}",
                            k, p
                        );
                    }
                }
            }
        }
    }

    /// Overflow-boundary property: at magnitudes where the fixed
    /// kernel's scaled intermediates (`coeff·S · (value·D)^e · D^pad`)
    /// straddle the `i128` limit, its per-scenario fallback to the `Rat`
    /// walk is silent — the public batch results never change, whether a
    /// scenario overflowed or not.
    #[test]
    fn fixed_kernel_overflow_fallback_is_silent(
        coeff_mag in 0u32..30,
        value_mags in proptest::collection::vec((0u32..9, 1i128..5, 0u8..2), 4..12),
        degree in 1u8..5,
    ) {
        // Cap the coefficient so the plain-Rat reference (which panics
        // on genuine i128 overflow of *canonical* values) stays in
        // range: coeff · value^degree ≲ 10³⁰. The fixed kernel's
        // headroom is far smaller — its intermediates carry the common
        // denominator scale D at full degree — so the sampled band still
        // produces both completing and overflowing scenarios.
        let max_mag = value_mags.iter().map(|&(m, _, _)| m).max().unwrap_or(0);
        let coeff_mag = coeff_mag.min(34u32.saturating_sub(max_mag * degree as u32 + 4));
        let src = format!(
            "P0 = {}*a^{} + 1/3*b\nP1 = 1/7*a*b",
            10i128.pow(coeff_mag),
            degree
        );
        let mut reg = VarRegistry::new();
        let set = parse_polyset(&src, &mut reg).unwrap();
        let ev: BatchEvaluator<Rat> = BatchEvaluator::compile(&set);
        let prog = ev.program();
        let (np, width) = (prog.num_polys(), prog.num_locals());

        let pool: Vec<Rat> = value_mags
            .into_iter()
            .map(|(mag, den, neg)| {
                let num = 10i128.pow(mag) * if neg == 1 { -1 } else { 1 };
                Rat::new(num, den)
            })
            .collect();
        let n = pool.len();
        let rows = rat_rows(&pool, n, width);

        let mut reference = vec![Rat::ZERO; n * np];
        for (k, row) in rows.iter().enumerate() {
            prog.eval_scenario_into(row, &mut reference[k * np..(k + 1) * np]);
        }

        // Raw kernel: any verdict is fine (overflow depends on the
        // sampled magnitudes) but completions must be bit-identical.
        let fp = prog.fixed_program();
        if let Some(fp) = fp {
            let mut scratch = FixedScratch::new();
            let mut out = vec![Rat::ZERO; np];
            for (k, row) in rows.iter().enumerate() {
                if fp.eval_scenario_into(prog, row, &mut out, &mut scratch) {
                    for (p, got) in out.iter().enumerate() {
                        let want = &reference[k * np + p];
                        prop_assert_eq!(
                            (got.numer(), got.denom()),
                            (want.numer(), want.denom()),
                            "scenario {} poly {}",
                            k, p
                        );
                    }
                }
            }
        }

        // Public path: mixed overflow/fallback batches still equal the
        // pure-Rat run bit for bit, at both thread counts.
        for threads in THREAD_MATRIX {
            let mut fixed_out = vec![Rat::ZERO; n * np];
            let mut rat_out = vec![Rat::ZERO; n * np];
            with_threads(threads, || {
                kernel::with_target(KernelTarget::Auto, || {
                    ev.eval_batch_exact_into(&rows, &mut fixed_out)
                });
                kernel::with_target(KernelTarget::Scalar, || {
                    ev.eval_batch_exact_into(&rows, &mut rat_out)
                });
            });
            prop_assert_eq!(&fixed_out, &rat_out, "threads {}", threads);
            prop_assert_eq!(&fixed_out, &reference, "threads {}", threads);
        }
    }

    /// The real sweep engines, end to end: exact folds are bit-identical
    /// with the fixed kernel on and off; `f64` folds are bit-identical
    /// across scalar/AVX2/auto; the FMA run stays within the *sound*
    /// Higham certificate of `sweep_fold_f64_bounded`.
    #[test]
    fn session_sweeps_agree_across_kernel_targets(
        m3_levels in levels_strategy(),
        y1_levels in levels_strategy(),
    ) {
        let mut s = compressed_session(6);
        let m3 = s.registry_mut().var("m3");
        let y1 = s.registry_mut().var("y1");
        let grid = ScenarioSet::grid()
            .axis([m3], m3_levels)
            .axis([y1], y1_levels)
            .build()
            .unwrap();

        // Exact engines: plain-Rat reference vs fixed-kernel runs.
        let exact_ref = kernel::with_target(KernelTarget::Scalar, || {
            s.sweep_fold(&grid, Collect::<Rat>::new(), folds::step).unwrap()
        })
        .finish();
        for threads in THREAD_MATRIX {
            for t in [KernelTarget::Auto, KernelTarget::Scalar] {
                let seq = kernel::with_target(t, || {
                    s.sweep_fold(&grid, Collect::<Rat>::new(), folds::step).unwrap()
                })
                .finish();
                prop_assert_eq!(&seq, &exact_ref, "seq target {}", t);
                let par = with_threads(threads, || {
                    kernel::with_target(t, || {
                        s.sweep_fold_par(&grid, Collect::<Rat>::new()).unwrap()
                    })
                })
                .finish();
                prop_assert_eq!(&par, &exact_ref, "par target {} threads {}", t, threads);
            }
        }

        // f64 engines: bit-identical across the non-FMA targets.
        let f64_ref = kernel::with_target(KernelTarget::Scalar, || {
            s.sweep_fold_f64(&grid, Collect::<f64>::new(), folds::step).unwrap()
        })
        .0
        .finish();
        for threads in THREAD_MATRIX {
            for t in IDENTICAL_TARGETS {
                let (seq, _) = kernel::with_target(t, || {
                    s.sweep_fold_f64(&grid, Collect::<f64>::new(), folds::step).unwrap()
                });
                prop_assert_eq!(&seq.finish(), &f64_ref, "seq target {}", t);
                let (par, _) = with_threads(threads, || {
                    kernel::with_target(t, || {
                        s.sweep_fold_f64_par(&grid, Collect::<f64>::new()).unwrap()
                    })
                });
                prop_assert_eq!(&par.finish(), &f64_ref, "par target {} threads {}", t, threads);
            }
        }

        // FMA through the bounded engine: each side of the comparison is
        // within its own sound rounding certificate of the true value at
        // the bound rows, so the two runs differ by at most the sum of
        // the two certificates.
        let (fma_out, fma_bound) = kernel::with_target(KernelTarget::Avx2Fma, || {
            s.sweep_fold_f64_bounded(
                &grid,
                SweepBudget::unlimited(),
                Collect::<f64>::new(),
                folds::step,
            )
            .unwrap()
        });
        let (ref_out, ref_bound) = kernel::with_target(KernelTarget::Scalar, || {
            s.sweep_fold_f64_bounded(
                &grid,
                SweepBudget::unlimited(),
                Collect::<f64>::new(),
                folds::step,
            )
            .unwrap()
        });
        let budget = fma_bound.max_abs_bound + ref_bound.max_abs_bound;
        let fma_rows = fma_out.into_fold().finish();
        let ref_rows = ref_out.into_fold().finish();
        prop_assert_eq!(fma_rows.len(), ref_rows.len());
        for ((i, f_full, f_comp), (j, r_full, r_comp)) in fma_rows.iter().zip(&ref_rows) {
            prop_assert_eq!(i, j);
            for (a, b) in f_full.iter().zip(r_full).chain(f_comp.iter().zip(r_comp)) {
                prop_assert!(
                    (a - b).abs() <= budget,
                    "scenario {}: fma {} vs scalar {} exceeds certificate {}",
                    i, a, b, budget
                );
            }
        }
    }
}

/// A crafted boundary: in `P0 = a⁴ + b` the fixed kernel evaluates `a`
/// at the row's common denominator scale `D`, so a huge denominator on
/// *b* pushes `(a·D)⁴` past `i128` even though the true value is tame
/// and plain `Rat` arithmetic never sees the blow-up. The kernel must
/// refuse that row, complete the benign one, and the public surface
/// must never show the difference.
#[test]
fn fixed_kernel_boundary_is_exact() {
    let mut reg = VarRegistry::new();
    let set = parse_polyset("P0 = 1*a^4 + 1*b", &mut reg).unwrap();
    let ev: BatchEvaluator<Rat> = BatchEvaluator::compile(&set);
    let prog = ev.program();
    let fp = prog.fixed_program().expect("tiny program must lower");
    let mut scratch = FixedScratch::new();
    let mut out = vec![Rat::ZERO; 1];

    // D = 7: (3·7)⁴ is tiny, the kernel completes.
    let small = vec![Rat::new(3, 1), Rat::new(1, 7)];
    assert!(
        fp.eval_scenario_into(prog, &small, &mut out, &mut scratch),
        "D = 7 stays comfortably inside i128"
    );
    assert_eq!(out[0], Rat::new(568, 7)); // 3⁴ + 1/7

    // D = 10⁹: (10³·10⁹)⁴ = 10⁴⁸ ≫ i128::MAX, though a⁴ + b itself is
    // a perfectly representable rational.
    let big = vec![Rat::new(1000, 1), Rat::new(1, 1_000_000_000)];
    assert!(
        !fp.eval_scenario_into(prog, &big, &mut out, &mut scratch),
        "the scaled intermediate must overflow and demand the Rat fallback"
    );

    // The public batch surface hides the fallback entirely.
    let rows = vec![small, big];
    let mut fixed_out = vec![Rat::ZERO; 2];
    let mut rat_out = vec![Rat::ZERO; 2];
    kernel::with_target(KernelTarget::Auto, || {
        ev.eval_batch_exact_into(&rows, &mut fixed_out)
    });
    kernel::with_target(KernelTarget::Scalar, || {
        ev.eval_batch_exact_into(&rows, &mut rat_out)
    });
    assert_eq!(fixed_out, rat_out);
    assert_eq!(fixed_out[0], Rat::new(568, 7));
    assert_eq!(
        fixed_out[1],
        Rat::new(10i128.pow(21) + 1, 10i128.pow(9)) // 10¹² + 10⁻⁹
    );
}

/// `SessionInfo` reports the kernel the calling thread resolves —
/// the hook the server's `stats` reply rides.
#[test]
fn session_info_reports_resolved_kernel() {
    let s = compressed_session(6);
    let scalar = kernel::with_target(KernelTarget::Scalar, || s.info());
    assert_eq!(scalar.kernel, "scalar");
    let auto = kernel::with_target(KernelTarget::Auto, || s.info());
    if kernel::avx2_available() {
        assert_eq!(auto.kernel, "avx2");
    } else {
        assert_eq!(auto.kernel, "scalar");
    }
    // The container this suite gates in CI must actually exercise AVX2
    // somewhere; record the capability so a silent downgrade of the CI
    // runner fleet shows up as a test-log change, not silence.
    println!(
        "kernel capability: avx2={} fma={}",
        kernel::avx2_available(),
        kernel::fma_available()
    );
}

/// Under an explicit AVX2 target the whole suite above ran fused and
/// unfused variants; this pins the plumbing end to end on the `sweep`
/// convenience surface too (`rat` keeps the grid exactly representable).
#[test]
fn sweep_f64_matches_across_targets_end_to_end() {
    let mut s = compressed_session(6);
    let m3 = s.registry_mut().var("m3");
    let grid = ScenarioSet::grid()
        .axis([m3], [rat("0.5"), rat("0.75"), rat("1"), rat("1.25")])
        .build()
        .unwrap();
    let reference = kernel::with_target(KernelTarget::Scalar, || s.sweep_f64(&grid).unwrap());
    for t in IDENTICAL_TARGETS {
        let swept = kernel::with_target(t, || s.sweep_f64(&grid).unwrap());
        for i in 0..grid.len() {
            for (a, b) in swept.full_row(i).iter().zip(reference.full_row(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "target {t} scenario {i}");
            }
            for (a, b) in swept
                .compressed_row(i)
                .iter()
                .zip(reference.compressed_row(i))
            {
                assert_eq!(a.to_bits(), b.to_bits(), "target {t} scenario {i}");
            }
        }
    }
}
