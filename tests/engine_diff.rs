//! Cross-engine differential suite (ISSUE 4): the zoo of sweep engines —
//! materialized exact (`sweep`), streamed exact (`sweep_fold`), parallel
//! exact (`sweep_fold_par`), per-scenario (`assign`), and the `f64`
//! variants — must agree on random `ScenarioSet`s. Exact engines are
//! pinned **bit-identical** to each other at 1, 2 and 8 worker threads
//! (via `par::with_threads`, which scopes the override to this test's
//! thread so concurrently running tests cannot race on `COBRA_THREADS`);
//! `f64` engines are pinned bit-identical across thread counts and within
//! divergence bounds of the exact ones.

use cobra::core::folds::{self, ArgmaxImpact, Histogram, MaxAbsError, MergeFold, SweepFold, TopK};
use cobra::core::scenario::FoldItem;
use cobra::core::{
    fold_program_sweep, fold_program_sweep_par, forest_sweep, forest_sweep_fold_par,
    CobraSession, ScenarioSet,
};
use cobra::provenance::{BatchEvaluator, Coeff, Valuation};
use cobra::util::par::with_threads;
use cobra::util::Rat;
use proptest::prelude::*;

const PAPER_POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";

const FIG2_TREE: &str =
    "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))";

/// The worker-thread counts every equivalence below is pinned under:
/// the serial path, the smallest genuine split, and an oversubscribed
/// fan-out (more workers than this container has cores).
const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

fn rat(s: &str) -> Rat {
    Rat::parse(s).unwrap()
}

fn compressed_session(bound: u64) -> CobraSession {
    let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
    s.add_tree_text(FIG2_TREE).unwrap();
    s.set_bound(bound);
    s.compress().unwrap();
    s
}

/// A differential collector: records every scenario's index and both
/// result rows in the fold's native coefficient type `C`, so exact
/// streams compare as `Rat` (bit-identical, not "close") and `f64`
/// streams as `f64`. Merge appends — lawful because the engines merge
/// partials in ascending span order.
#[derive(Clone, Debug, PartialEq)]
struct Collect<C> {
    rows: Vec<(usize, Vec<C>, Vec<C>)>,
}

impl<C> Collect<C> {
    fn new() -> Collect<C> {
        Collect { rows: Vec::new() }
    }
}

impl<K: Coeff> SweepFold for Collect<K> {
    type Output = Vec<(usize, Vec<K>, Vec<K>)>;

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        let cast = |xs: &[C]| -> Vec<K> {
            xs.iter()
                .map(|x| {
                    (x as &dyn std::any::Any)
                        .downcast_ref::<K>()
                        .expect("collector used on a stream of its own coefficient type")
                        .clone()
                })
                .collect()
        };
        self.rows
            .push((item.scenario, cast(item.full), cast(item.compressed)));
    }

    fn finish(self) -> Self::Output {
        self.rows
    }
}

impl<K: Coeff> MergeFold for Collect<K> {
    fn init(&self) -> Collect<K> {
        Collect::new()
    }

    fn merge(&mut self, later: Collect<K>) {
        self.rows.extend(later.rows);
    }
}

/// Random levels for one axis: 0..=3 exact rational levels.
fn levels_strategy() -> impl Strategy<Value = Vec<Rat>> {
    proptest::collection::vec((-20i128..40, 1i128..5), 0..4)
        .prop_map(|pairs| pairs.into_iter().map(|(n, d)| Rat::new(n, d)).collect())
}

/// A random family over the paper variables: a grid (with a lossy
/// partial-group axis), a perturbation family, or an explicit list —
/// all three binder code paths.
fn family_strategy() -> impl Strategy<Value = u8> {
    0u8..3
}

fn build_family(
    s: &mut CobraSession,
    shape: u8,
    m3_levels: Vec<Rat>,
    business_levels: Vec<Rat>,
    y1_levels: Vec<Rat>,
) -> ScenarioSet {
    let m3 = s.registry_mut().var("m3");
    let b_vars = ["b1", "b2", "e"].map(|n| s.registry_mut().var(n));
    let y1 = s.registry_mut().var("y1");
    match shape {
        0 => ScenarioSet::grid()
            .axis([m3], m3_levels)
            .scale_axis(b_vars, business_levels)
            // y1 alone inside the Special group: lossy partial touch
            .axis([y1], y1_levels)
            .build()
            .unwrap(),
        1 => ScenarioSet::perturb_each(
            [m3, b_vars[0], y1],
            m3_levels.first().copied().unwrap_or(Rat::new(1, 8)),
        ),
        _ => {
            let scenarios: Vec<Valuation<Rat>> = m3_levels
                .iter()
                .zip(y1_levels.iter().chain(std::iter::repeat(&Rat::ONE)))
                .map(|(&m, &y)| {
                    Valuation::with_default(Rat::ONE).bind(m3, m).bind(y1, y)
                })
                .collect();
            ScenarioSet::from_valuations(scenarios)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// sweep ≡ sweep_fold ≡ sweep_fold_par ≡ per-scenario assign, bit for
    /// bit, on random families for 1/2/8 worker threads.
    #[test]
    fn exact_engines_agree_at_all_thread_counts(
        shape in family_strategy(),
        m3_levels in levels_strategy(),
        business_levels in levels_strategy(),
        y1_levels in levels_strategy(),
    ) {
        let mut s = compressed_session(6);
        let family = build_family(&mut s, shape, m3_levels, business_levels, y1_levels);
        let n = family.len();

        // Engine 1: the materialized sweep.
        let sweep = s.sweep(&family).unwrap();
        prop_assert_eq!(sweep.len(), n);

        // Engine 2: the sequential fold engine with an appending closure.
        let folded = s
            .sweep_fold(&family, Vec::new(), |mut acc: Vec<(usize, Vec<Rat>, Vec<Rat>)>, item| {
                acc.push((item.scenario, item.full.to_vec(), item.compressed.to_vec()));
                acc
            })
            .unwrap();
        prop_assert_eq!(folded.len(), n);
        for (i, full, comp) in &folded {
            prop_assert_eq!(full.as_slice(), sweep.full_row(*i), "fold scenario {}", i);
            prop_assert_eq!(comp.as_slice(), sweep.compressed_row(*i), "fold scenario {}", i);
        }

        // Engine 3: the parallel fold engine at every thread count.
        for threads in THREAD_MATRIX {
            let par = with_threads(threads, || {
                s.sweep_fold_par(&family, Collect::<Rat>::new()).unwrap()
            })
            .finish();
            prop_assert_eq!(&par, &folded, "threads {}", threads);
        }

        // Engine 4: the per-scenario assignment screen.
        let base = s.base_valuation().clone();
        for i in 0..n {
            let cmp = s.assign(family.scenario_valuation(i, &base)).unwrap();
            prop_assert_eq!(cmp.rows.len(), sweep.num_polys());
            for (p, row) in cmp.rows.iter().enumerate() {
                prop_assert_eq!(row.full, sweep.full_row(i)[p], "assign scenario {}", i);
                prop_assert_eq!(
                    row.compressed,
                    sweep.compressed_row(i)[p],
                    "assign scenario {}",
                    i
                );
            }
        }
    }

    /// Every built-in fold (and their tuple composition) produces the
    /// same aggregate — including argmax/top-k indices — sequentially and
    /// in parallel at 1/2/8 threads, on both the exact and f64 streams.
    #[test]
    fn built_in_folds_agree_at_all_thread_counts(
        m3_levels in levels_strategy(),
        business_levels in levels_strategy(),
        y1_levels in levels_strategy(),
    ) {
        let mut s = compressed_session(6);
        let family = build_family(&mut s, 0, m3_levels, business_levels, y1_levels);
        let base = s.baseline_results().unwrap();
        let proto = (
            MaxAbsError::new(),
            ArgmaxImpact::against(base),
            TopK::new(0, 3),
        );
        let hist_proto = Histogram::new(1, 0.0, 1000.0, 8);

        let (seq_w, seq_a, seq_t) = s
            .sweep_fold(&family, proto.init(), folds::step)
            .unwrap()
            .finish();
        let seq_h = s.sweep_fold(&family, hist_proto.init(), folds::step).unwrap();
        let ((seq64_w, seq64_a, seq64_t), seq64_div) = {
            let (fold, div) = s
                .sweep_fold_f64(&family, proto.init(), folds::step)
                .unwrap();
            (fold.finish(), div)
        };

        for threads in THREAD_MATRIX {
            let (w, a, t) = with_threads(threads, || {
                s.sweep_fold_par(&family, proto.init()).unwrap()
            })
            .finish();
            prop_assert_eq!(w.max_abs_error, seq_w.max_abs_error, "threads {}", threads);
            prop_assert_eq!(w.argmax_abs, seq_w.argmax_abs, "threads {}", threads);
            prop_assert_eq!(w.max_rel_error, seq_w.max_rel_error, "threads {}", threads);
            prop_assert_eq!(w.argmax_rel, seq_w.argmax_rel, "threads {}", threads);
            prop_assert_eq!(a, seq_a, "threads {}", threads);
            prop_assert_eq!(&t, &seq_t, "threads {}", threads);

            let h = with_threads(threads, || {
                s.sweep_fold_par(&family, hist_proto.init()).unwrap()
            });
            prop_assert_eq!(&h.counts, &seq_h.counts, "threads {}", threads);
            prop_assert_eq!(h.underflow, seq_h.underflow, "threads {}", threads);
            prop_assert_eq!(h.overflow, seq_h.overflow, "threads {}", threads);

            let (par64, div) = with_threads(threads, || {
                s.sweep_fold_f64_par(&family, proto.init()).unwrap()
            });
            let (w64, a64, t64) = par64.finish();
            prop_assert_eq!(w64.max_abs_error, seq64_w.max_abs_error, "threads {}", threads);
            prop_assert_eq!(w64.argmax_abs, seq64_w.argmax_abs, "threads {}", threads);
            prop_assert_eq!(a64, seq64_a, "threads {}", threads);
            prop_assert_eq!(&t64, &seq64_t, "threads {}", threads);
            prop_assert_eq!(div.probed, seq64_div.probed, "threads {}", threads);
            prop_assert_eq!(
                div.max_rel_divergence,
                seq64_div.max_rel_divergence,
                "threads {}",
                threads
            );
        }
    }

    /// The parallel f64 engine is bit-identical to the sequential f64
    /// engine at every thread count, and both stay within divergence
    /// bounds of the exact engines.
    #[test]
    fn f64_engines_agree_and_track_exact(
        shape in family_strategy(),
        m3_levels in levels_strategy(),
        business_levels in levels_strategy(),
        y1_levels in levels_strategy(),
    ) {
        let mut s = compressed_session(6);
        let family = build_family(&mut s, shape, m3_levels, business_levels, y1_levels);
        let n = family.len();
        let exact = s.sweep(&family).unwrap();

        let (seq, seq_div) = s
            .sweep_fold_f64(&family, Collect::<f64>::new(), folds::step)
            .unwrap();
        let seq = seq.finish();
        prop_assert_eq!(seq.len(), n);
        for threads in THREAD_MATRIX {
            let (par, div) = with_threads(threads, || {
                s.sweep_fold_f64_par(&family, Collect::<f64>::new()).unwrap()
            });
            prop_assert_eq!(&par.finish(), &seq, "threads {}", threads);
            prop_assert_eq!(div.probed, seq_div.probed, "threads {}", threads);
            prop_assert_eq!(
                div.max_rel_divergence,
                seq_div.max_rel_divergence,
                "threads {}",
                threads
            );
        }
        // f64 within divergence bounds of exact (both sides, every tuple)
        prop_assert!(seq_div.max_rel_divergence < 1e-12);
        for (i, full, comp) in &seq {
            for (e, a) in exact.full_row(*i).iter().zip(full) {
                let e = e.to_f64();
                prop_assert!((e - a).abs() <= 1e-9 * e.abs().max(1.0));
            }
            for (e, a) in exact.compressed_row(*i).iter().zip(comp) {
                let e = e.to_f64();
                prop_assert!((e - a).abs() <= 1e-9 * e.abs().max(1.0));
            }
        }
    }

    /// The single-engine fold pair: fold_program_sweep_par ≡
    /// fold_program_sweep at 1/2/8 threads, bit for bit (the parallel
    /// item's compressed side is empty by contract).
    #[test]
    fn single_engine_folds_agree_at_all_thread_counts(
        m3_levels in levels_strategy(),
        y1_levels in levels_strategy(),
    ) {
        let mut reg = cobra::provenance::VarRegistry::new();
        let set = cobra::provenance::parse_polyset(PAPER_POLYS, &mut reg).unwrap();
        let evaluator = BatchEvaluator::compile(&set);
        let base = Valuation::with_default(Rat::ONE);
        let grid = ScenarioSet::grid()
            .axis([reg.var("m3")], m3_levels)
            .scale_axis([reg.var("y1")], y1_levels)
            .build()
            .unwrap();
        let seq = fold_program_sweep(
            &evaluator,
            &base,
            &grid,
            Vec::new(),
            |mut acc: Vec<(usize, Vec<Rat>)>, i, results| {
                acc.push((i, results.to_vec()));
                acc
            },
        );
        for threads in THREAD_MATRIX {
            let par = with_threads(threads, || {
                fold_program_sweep_par(&evaluator, &base, &grid, Collect::<Rat>::new())
            })
            .finish();
            prop_assert_eq!(par.len(), seq.len(), "threads {}", threads);
            for ((pi, pfull, pcomp), (si, sfull)) in par.iter().zip(&seq) {
                prop_assert_eq!(pi, si, "threads {}", threads);
                prop_assert_eq!(pfull, sfull, "threads {}", threads);
                prop_assert!(pcomp.is_empty(), "single-engine compressed side is empty");
            }
        }
    }
}

#[test]
fn forest_parallel_fold_matches_forest_sweep() {
    let mut reg = cobra::provenance::VarRegistry::new();
    let set = cobra::provenance::parse_polyset(PAPER_POLYS, &mut reg).unwrap();
    let plans = cobra::core::AbstractionTree::parse(FIG2_TREE, &mut reg).unwrap();
    let months = cobra::core::AbstractionTree::parse("Months(m1,m3)", &mut reg).unwrap();
    let sol = cobra::core::optimize_forest_descent(&set, &[&plans, &months], 4, &mut reg, 16)
        .unwrap();
    let pairs: Vec<_> = [&plans, &months].into_iter().zip(sol.cuts.iter()).collect();
    let applied = cobra::core::apply_cuts(&set, &pairs, &mut reg);
    let base = Valuation::with_default(Rat::ONE);
    let m3 = reg.var("m3");
    let b1 = reg.var("b1");
    let grid = ScenarioSet::grid()
        .axis([m3], [rat("0.8"), rat("1"), rat("1.2")])
        .scale_axis([b1], [rat("1"), rat("1.1")])
        .build()
        .unwrap();
    let sweep = forest_sweep(&set, &applied, &base, &grid);
    for threads in THREAD_MATRIX {
        let rows = with_threads(threads, || {
            forest_sweep_fold_par(&set, &applied, &base, &grid, Collect::<Rat>::new())
        })
        .finish();
        assert_eq!(rows.len(), sweep.len());
        for (i, full, comp) in &rows {
            assert_eq!(full.as_slice(), sweep.full_row(*i), "threads {threads}");
            assert_eq!(comp.as_slice(), sweep.compressed_row(*i), "threads {threads}");
        }
    }
}

/// The crafted-ties regression of the ISSUE satellite, end to end: a grid
/// engineered so several scenarios attain the same extremum. Argmax and
/// top-k winners must be the lowest scenario indices at every thread
/// count — merge-order independence observed through the real engines.
#[test]
fn argmax_and_topk_ties_resolve_identically_in_parallel() {
    let mut s = compressed_session(6);
    let m3 = s.registry_mut().var("m3");
    let y1 = s.registry_mut().var("y1");
    // m3 revisits the same level: scenarios with bit-identical results at
    // different indices, spread across parallel span boundaries.
    let grid = ScenarioSet::grid()
        .axis([m3], [rat("1.2"), rat("1"), rat("1.2"), rat("1.2"), rat("0.9")])
        .axis([y1], [rat("1"), rat("1"), rat("1")]) // triples every tie
        .build()
        .unwrap();
    assert_eq!(grid.len(), 15);

    let base = s.baseline_results().unwrap();
    let seq = s
        .sweep_fold(
            &grid,
            (ArgmaxImpact::against(base.clone()), TopK::new(0, 4)),
            folds::step,
        )
        .unwrap();
    let (seq_best, seq_top) = (seq.0.best(), seq.1.clone().finish());
    // scenarios 0..3 (m3=1.2, y1=1) all tie for the biggest move; the
    // lowest index must win, and top-4 must keep indices in order
    assert_eq!(seq_best.map(|(i, _)| i), Some(0));
    assert_eq!(
        seq_top.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
        vec![0, 1, 2, 6]
    );
    for threads in THREAD_MATRIX {
        let (best, top) = with_threads(threads, || {
            s.sweep_fold_par(
                &grid,
                (ArgmaxImpact::against(base.clone()), TopK::new(0, 4)),
            )
            .unwrap()
        });
        assert_eq!(best.best(), seq_best, "threads {threads}");
        assert_eq!(top.finish(), seq_top, "threads {threads}");
    }
}
