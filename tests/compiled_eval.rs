//! Property tests for the compiled batch evaluation engine: on random
//! polynomial sets and scenarios, `EvalProgram`/`BatchEvaluator` must agree
//! exactly with the sparse reference path `Polynomial::eval` (exact `Rat`
//! arithmetic), including empty polynomials and default-valued valuations;
//! and the `f64` lane kernel must be bit-identical to its scalar
//! counterpart and to `eval_dense`.

use cobra::provenance::{
    BatchEvaluator, DenseValuation, EvalProgram, Monomial, PolySet, Polynomial, Valuation,
    Var,
};
use cobra::util::Rat;
use proptest::prelude::*;

const NUM_VARS: u32 = 6;

fn rat_strategy() -> impl Strategy<Value = Rat> {
    (-50i128..50, 1i128..8).prop_map(|(n, d)| Rat::new(n, d))
}

fn monomial_strategy() -> impl Strategy<Value = Monomial> {
    proptest::collection::vec((0u32..NUM_VARS, 1u32..4), 0..4)
        .prop_map(|pairs| Monomial::from_pairs(pairs.into_iter().map(|(v, e)| (Var(v), e))))
}

fn poly_strategy() -> impl Strategy<Value = Polynomial<Rat>> {
    proptest::collection::vec((monomial_strategy(), rat_strategy()), 0..6)
        .prop_map(Polynomial::from_terms)
}

/// Sets of 0..5 labelled polynomials; empty polynomials are common (the
/// term-count range starts at zero, and cancellation adds more).
fn polyset_strategy() -> impl Strategy<Value = PolySet<Rat>> {
    proptest::collection::vec(poly_strategy(), 0..5).prop_map(|polys| {
        PolySet::from_entries(
            polys
                .into_iter()
                .enumerate()
                .map(|(i, p)| (format!("P{i}"), p)),
        )
    })
}

/// Default-valued valuations binding only a random subset of variables:
/// exercises the `Valuation::get` fallback inside `EvalProgram::bind`.
fn valuation_strategy() -> impl Strategy<Value = Valuation<Rat>> {
    (
        rat_strategy(),
        proptest::collection::vec((0u32..NUM_VARS, rat_strategy()), 0..NUM_VARS as usize),
    )
        .prop_map(|(default, binds)| {
            let mut v = Valuation::with_default(default);
            for (var, value) in binds {
                v.set(Var(var), value);
            }
            v
        })
}

fn scenarios_strategy() -> impl Strategy<Value = Vec<Valuation<Rat>>> {
    proptest::collection::vec(valuation_strategy(), 0..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The compiled scalar path equals the sparse reference evaluator.
    #[test]
    fn program_matches_sparse_eval(set in polyset_strategy(), val in valuation_strategy()) {
        let prog = EvalProgram::compile(&set);
        prop_assert_eq!(prog.num_polys(), set.len());
        prop_assert_eq!(prog.num_terms(), set.total_monomials());
        let row = prog.bind(&val).expect("valuation has a default");
        let out = prog.eval_scenario(&row);
        for (p, (_, poly)) in set.iter().enumerate() {
            let expected = poly.eval(&val).expect("valuation has a default");
            prop_assert_eq!(&out[p], &expected, "poly {}", p);
        }
    }

    /// Batch evaluation equals per-scenario reference evaluation, for
    /// every scenario × polynomial cell.
    #[test]
    fn batch_matches_sparse_eval(
        set in polyset_strategy(),
        scenarios in scenarios_strategy(),
    ) {
        let evaluator = BatchEvaluator::compile(&set);
        let rows = evaluator.bind_all(&scenarios).expect("valuations have defaults");
        let batch = evaluator.eval_batch(&rows);
        prop_assert_eq!(batch.num_scenarios(), scenarios.len());
        for (s, val) in scenarios.iter().enumerate() {
            for (p, (_, poly)) in set.iter().enumerate() {
                let expected = poly.eval(val).expect("valuation has a default");
                prop_assert_eq!(batch.get(s, p), &expected, "scenario {} poly {}", s, p);
            }
        }
    }

    /// The f64 lane kernel is bit-identical to the scalar f64 kernel and
    /// to the eval_dense walk over the same scenario values.
    #[test]
    fn f64_lane_kernel_bit_identical(
        set in polyset_strategy(),
        scenarios in scenarios_strategy(),
    ) {
        let set64 = set.to_f64_set();
        let evaluator = BatchEvaluator::compile(&set64);
        let rows: Vec<Vec<f64>> = scenarios
            .iter()
            .map(|v| evaluator.program().bind(&v.map(|c| c.to_f64())).unwrap())
            .collect();
        let fast = evaluator.eval_batch_fast(&rows);
        let scalar = evaluator.eval_batch(&rows);
        prop_assert_eq!(&fast, &scalar);
        for (s, row) in rows.iter().enumerate() {
            let mut dense =
                DenseValuation::from_values(vec![1.0f64; NUM_VARS as usize]);
            for (local, &v) in evaluator.program().vars().iter().enumerate() {
                dense.set(v, row[local]);
            }
            for (p, (_, value)) in set64.eval_dense(&dense).iter().enumerate() {
                prop_assert_eq!(fast.get(s, p), value, "scenario {} poly {}", s, p);
            }
        }
    }

    /// Compression commutes with compiled evaluation: renaming variables
    /// and evaluating the compiled program equals evaluating the original
    /// under the pulled-back valuation (meta value shared by all leaves).
    #[test]
    fn compiled_eval_commutes_with_abstraction(
        set in polyset_strategy(),
        val in valuation_strategy(),
    ) {
        // Group the even-indexed variables into Var(0).
        let merged = set.rename_vars(|v| if v.0 % 2 == 0 { Var(0) } else { v });
        // Pull the valuation back: every even variable reads Var(0)'s value.
        let mut pulled = val.clone();
        for v in 1..NUM_VARS {
            if v % 2 == 0 {
                let shared = val.get(Var(0)).expect("default");
                pulled.set(Var(v), shared);
            }
        }
        let prog_merged = EvalProgram::compile(&merged);
        let prog_full = EvalProgram::compile(&set);
        let merged_row = prog_merged.bind(&val).expect("default");
        let full_row = prog_full.bind(&pulled).expect("default");
        let merged_out = prog_merged.eval_scenario(&merged_row);
        let full_out = prog_full.eval_scenario(&full_row);
        prop_assert_eq!(merged_out, full_out);
    }
}

#[test]
fn empty_set_and_empty_scenarios() {
    let set: PolySet<Rat> = PolySet::new();
    let evaluator = BatchEvaluator::compile(&set);
    assert_eq!(evaluator.program().num_polys(), 0);
    assert_eq!(evaluator.program().num_locals(), 0);
    let batch = evaluator.eval_batch(&[]);
    assert_eq!(batch.num_scenarios(), 0);
}

#[test]
fn missing_variable_is_reported_by_bind() {
    let mut setp = PolySet::new();
    setp.push(
        "P",
        Polynomial::<Rat>::from_terms([(
            Monomial::from_pairs([(Var(3), 1)]),
            Rat::ONE,
        )]),
    );
    let prog = EvalProgram::compile(&setp);
    // no default, nothing bound → Var(3) is missing
    assert_eq!(prog.bind(&Valuation::new()), Err(Var(3)));
}
