//! Delta differential suite (ISSUE 9): incremental provenance updates
//! through `CobraSession::apply_delta` are pinned **bit-identical** to a
//! fresh session rebuilt from the patched polynomials — on the Pareto
//! frontier curve, the exact (`Rat`) sweep rows, and the `f64` sweep
//! rows, across the kernel-target × worker-thread matrix
//! (`kernel::with_target` × `par::with_threads`, both scoped to this
//! test's thread).
//!
//! The edge cases the issue calls out are covered deterministically:
//!
//! * a long coeff-only churn stream that crosses the in-place CSR
//!   patching threshold and forces a compaction mid-stream;
//! * delete-then-reinsert of the same monomial, both inside a single
//!   delta (sequential semantics) and across two deltas (round-trip back
//!   to the baseline);
//! * deleting *every* term of a polynomial, leaving it zero.
//!
//! The companion overflow property pins the satellite-2 contract: `i128`
//! overflow in exact arithmetic is a typed `CoreError::ExactOverflow` —
//! raised exactly when the coefficient magnitudes predict it — and the
//! session stays live and answers afterwards.

use cobra::core::folds::{self, MergeFold, SweepFold};
use cobra::core::scenario::FoldItem;
use cobra::core::{CobraSession, CoreError, PolyDelta, ScenarioSet};
use cobra::provenance::{Coeff, Monomial, Valuation, VarRegistry};
use cobra::util::kernel::{self, KernelTarget};
use cobra::util::par::with_threads;
use cobra::util::Rat;
use proptest::prelude::*;

/// Worker-thread counts the equivalences are pinned under.
const THREAD_MATRIX: [usize; 2] = [1, 4];

/// Kernel targets the equivalences are pinned under (`Auto` resolves to
/// the widest available batch kernel; `Scalar` forces the portable one).
const KERNEL_MATRIX: [KernelTarget; 2] = [KernelTarget::Auto, KernelTarget::Scalar];

const PAPER_POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";

const FIG2_TREE: &str =
    "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))";

/// Tree leaves random deltas may touch: every monomial stays `leaf *
/// month`, so the stream never leaves the paper's single-tree setting.
const LEAVES: [&str; 11] = [
    "p1", "p2", "y1", "y2", "y3", "f1", "f2", "v", "b1", "b2", "e",
];
const MONTHS: [&str; 2] = ["m1", "m3"];

fn rat(s: &str) -> Rat {
    Rat::parse(s).unwrap()
}

/// A live session with a planned frontier and a selected bound — the
/// state `apply_delta` patches incrementally.
fn planned_session(bound: u64) -> CobraSession {
    let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
    s.add_tree_text(FIG2_TREE).unwrap();
    s.compress_frontier().unwrap();
    s.select_bound(bound).unwrap();
    s
}

/// The oracle: a brand-new session over the patched session's *current*
/// polynomials, taken through the full compress → plan → select
/// pipeline. Sharing the registry clone keeps `Var` ids aligned, so row
/// comparisons need no name translation.
fn fresh_rebuild(s: &CobraSession, bound: u64) -> CobraSession {
    let mut fresh = CobraSession::new(s.registry().clone(), s.polynomials().clone());
    fresh.add_tree_text(FIG2_TREE).unwrap();
    fresh.compress_frontier().unwrap();
    fresh.select_bound(bound).unwrap();
    fresh
}

/// The Pareto curve as `(variables, size)` pairs — the planner-level
/// surface the incremental replan must reproduce exactly.
fn curve(s: &CobraSession) -> Vec<(usize, u64)> {
    s.frontier()
        .unwrap()
        .points()
        .iter()
        .map(|p| (p.variables, p.size))
        .collect()
}

/// A small month × leaf scenario grid over variables that exist in the
/// shared registry regardless of what the delta stream did to the polys.
fn month_grid(reg: &VarRegistry) -> ScenarioSet {
    let m3 = reg.lookup("m3").unwrap();
    let y1 = reg.lookup("y1").unwrap();
    ScenarioSet::grid()
        .axis([m3], [rat("0.5"), rat("1"), rat("1.25")])
        .axis([y1], [rat("0.8"), rat("1.2")])
        .build()
        .unwrap()
}

/// The differential collector from `tests/kernel_diff.rs`: records every
/// scenario's index and both result rows in the fold's native
/// coefficient type.
#[derive(Clone, Debug, PartialEq)]
struct Collect<C> {
    rows: Vec<(usize, Vec<C>, Vec<C>)>,
}

impl<C> Collect<C> {
    fn new() -> Collect<C> {
        Collect { rows: Vec::new() }
    }
}

impl<K: Coeff> SweepFold for Collect<K> {
    type Output = Vec<(usize, Vec<K>, Vec<K>)>;

    fn accept<C: Coeff>(&mut self, item: FoldItem<'_, C>) {
        let cast = |xs: &[C]| -> Vec<K> {
            xs.iter()
                .map(|x| {
                    (x as &dyn std::any::Any)
                        .downcast_ref::<K>()
                        .expect("collector used on a stream of its own coefficient type")
                        .clone()
                })
                .collect()
        };
        self.rows
            .push((item.scenario, cast(item.full), cast(item.compressed)));
    }

    fn finish(self) -> Self::Output {
        self.rows
    }
}

impl<K: Coeff> MergeFold for Collect<K> {
    fn init(&self) -> Collect<K> {
        Collect::new()
    }

    fn merge(&mut self, later: Collect<K>) {
        self.rows.extend(later.rows);
    }
}

type Rows<C> = Vec<(usize, Vec<C>, Vec<C>)>;
type BitRows = Vec<(usize, Vec<u64>, Vec<u64>)>;

fn exact_rows_seq(s: &CobraSession, grid: &ScenarioSet, t: KernelTarget) -> Rows<Rat> {
    kernel::with_target(t, || {
        s.sweep_fold(grid, Collect::<Rat>::new(), folds::step).unwrap()
    })
    .finish()
}

fn exact_rows_par(s: &CobraSession, grid: &ScenarioSet, t: KernelTarget, threads: usize) -> Rows<Rat> {
    with_threads(threads, || {
        kernel::with_target(t, || s.sweep_fold_par(grid, Collect::<Rat>::new()).unwrap())
    })
    .finish()
}

fn bits(rows: Rows<f64>) -> BitRows {
    rows.into_iter()
        .map(|(i, full, compressed)| {
            (
                i,
                full.iter().map(|x| x.to_bits()).collect(),
                compressed.iter().map(|x| x.to_bits()).collect(),
            )
        })
        .collect()
}

fn f64_rows_seq(s: &CobraSession, grid: &ScenarioSet, t: KernelTarget) -> BitRows {
    let (fold, _) = kernel::with_target(t, || {
        s.sweep_fold_f64(grid, Collect::<f64>::new(), folds::step).unwrap()
    });
    bits(fold.finish())
}

fn f64_rows_par(s: &CobraSession, grid: &ScenarioSet, t: KernelTarget, threads: usize) -> BitRows {
    let (fold, _) = with_threads(threads, || {
        kernel::with_target(t, || s.sweep_fold_f64_par(grid, Collect::<f64>::new()).unwrap())
    });
    bits(fold.finish())
}

/// The core contract: the patched session and a fresh rebuild agree on
/// the frontier curve, the exact rows, and the `f64` rows (bit for bit),
/// under every kernel target × thread count in the matrix.
fn assert_matches_fresh(s: &CobraSession, bound: u64) {
    let fresh = fresh_rebuild(s, bound);
    assert_eq!(curve(s), curve(&fresh), "frontier curves diverge");

    let grid = month_grid(s.registry());
    let want_exact = exact_rows_seq(&fresh, &grid, KernelTarget::Scalar);
    let want_f64 = f64_rows_seq(&fresh, &grid, KernelTarget::Scalar);
    for t in KERNEL_MATRIX {
        assert_eq!(
            exact_rows_seq(s, &grid, t),
            want_exact,
            "exact rows diverge (seq, target {t})"
        );
        assert_eq!(
            f64_rows_seq(s, &grid, t),
            want_f64,
            "f64 rows diverge (seq, target {t})"
        );
        for threads in THREAD_MATRIX {
            assert_eq!(
                exact_rows_par(s, &grid, t, threads),
                want_exact,
                "exact rows diverge (par, target {t}, {threads} threads)"
            );
            assert_eq!(
                f64_rows_par(s, &grid, t, threads),
                want_f64,
                "f64 rows diverge (par, target {t}, {threads} threads)"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Random delta streams
// ---------------------------------------------------------------------

/// One random edit: `(poly, leaf, month, kind, numer, denom)`. Kinds 0–1
/// are `Set` (the workhorse), 2 is `Add`, 3 is `Remove`. Coefficients
/// stay positive so merged coefficients never cancel — the paper's
/// standing assumption.
type OpSpec = (usize, usize, usize, u8, i128, i128);

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    (0usize..2, 0usize..11, 0usize..2, 0u8..4, 1i128..400, 1i128..30)
}

fn apply_ops(s: &mut CobraSession, ops: &[OpSpec]) {
    let mut delta = PolyDelta::new();
    for &(poly, leaf, month, kind, num, den) in ops {
        let leaf = s.registry().lookup(LEAVES[leaf]).unwrap();
        let month = s.registry().lookup(MONTHS[month]).unwrap();
        let mono = Monomial::from_pairs([(leaf, 1), (month, 1)]);
        match kind {
            3 => delta.remove(poly, mono),
            2 => delta.add(poly, mono, Rat::new(num, den)),
            _ => delta.set(poly, mono, Rat::new(num, den)),
        }
    }
    s.apply_delta(&delta).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random delta streams, applied in chunks to a live planned
    /// session, keep it bit-identical to a fresh rebuild after *every*
    /// chunk — mixed structural and coeff-only edits, inserts into
    /// polynomials that never had the monomial, and deletes of original
    /// paper terms.
    #[test]
    fn random_delta_streams_match_fresh_rebuild(
        ops in proptest::collection::vec(op_strategy(), 1..28),
        chunk_size in 1usize..10,
    ) {
        let mut s = planned_session(6);
        for chunk in ops.chunks(chunk_size) {
            apply_ops(&mut s, chunk);
            assert_matches_fresh(&s, 6);
        }
    }

    /// Satellite 2: `i128` overflow in exact sweep arithmetic is a typed
    /// `CoreError::ExactOverflow` — raised exactly when the magnitudes
    /// predict it — and the session keeps answering afterwards.
    ///
    /// Construction (parameterizing the unit test in `session.rs`):
    /// `P = c·a0 + … + c·a(k−1)` with `c = 2^e`, tree `T(a0,…)`, bound
    /// `k` — the selected cut is the leaf cut, so nothing merges at
    /// compression time and the only overflow site is the sweep-time sum
    /// `k·c`, which exceeds `i128` iff `c.checked_mul(k)` says so.
    #[test]
    fn exact_overflow_is_typed_exactly_when_predicted(
        e in 100u32..127,
        k in 2usize..6,
    ) {
        let c = 1i128 << e;
        let names: Vec<String> = (0..k).map(|i| format!("a{i}")).collect();
        let terms: Vec<String> = names.iter().map(|n| format!("{c}*{n}")).collect();
        let src = format!("P = {}", terms.join(" + "));
        let mut s = CobraSession::from_text(&src).unwrap();
        s.add_tree_text(&format!("T({})", names.join(","))).unwrap();
        s.set_bound(k as u64);
        s.compress().unwrap();

        let a0 = s.registry().lookup("a0").unwrap();
        let grid = ScenarioSet::grid().axis([a0], [Rat::ONE]).build().unwrap();
        let overflows = c.checked_mul(k as i128).is_none();

        let swept = s.sweep(&grid);
        let folded = s.sweep_fold(&grid, Collect::<Rat>::new(), folds::step);
        let par = with_threads(2, || s.sweep_fold_par(&grid, Collect::<Rat>::new()));
        if overflows {
            prop_assert!(matches!(swept, Err(CoreError::ExactOverflow(_))));
            prop_assert!(matches!(folded, Err(CoreError::ExactOverflow(_))));
            prop_assert!(matches!(par, Err(CoreError::ExactOverflow(_))));
        } else {
            prop_assert!(swept.is_ok());
            let want = Rat::new(c.checked_mul(k as i128).unwrap(), 1);
            let rows = folded.unwrap().finish();
            prop_assert_eq!(&rows[0].1, &vec![want]);
            prop_assert_eq!(&rows[0].2, &vec![want]);
            prop_assert_eq!(&par.unwrap().finish(), &rows);
        }

        // Either way the session is live: zeroing all leaves but one
        // brings the sum back in range and the answer is exact.
        let mut val = Valuation::with_default(Rat::ONE);
        for name in &names[1..] {
            val.set(s.registry().lookup(name).unwrap(), Rat::ZERO);
        }
        let cmp = s.assign(&val).unwrap();
        prop_assert_eq!(cmp.rows[0].full, Rat::new(c, 1));
        prop_assert_eq!(cmp.rows[0].compressed, Rat::new(c, 1));
    }
}

// ---------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------

/// A long coeff-only churn stream crosses the in-place patch threshold
/// (`(num_terms / 4).max(64)` touched terms) and forces a mid-stream
/// compaction of the CSR program — the recompiled engines must still
/// match a fresh rebuild exactly.
#[test]
fn compaction_trigger_still_matches_fresh_rebuild() {
    let mut s = planned_session(6);
    let targets: Vec<(usize, Monomial)> = (0..2)
        .flat_map(|p| {
            s.polynomials()
                .poly(p).unwrap()
                .terms()
                .iter()
                .map(|(m, _)| (p, m.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(targets.len(), 14, "paper fixture has 14 terms");

    // 3 rounds × 30 coeff-only edits = 90 touched terms, comfortably
    // past the compaction threshold of 64.
    for round in 0..3i128 {
        let mut delta = PolyDelta::<Rat>::new();
        for i in 0..30i128 {
            let (poly, mono) = &targets[(i as usize) % targets.len()];
            delta.set(*poly, mono.clone(), Rat::new(7 * round + i + 1, 3));
        }
        let report = s.apply_delta(&delta).unwrap();
        assert!(
            !report.is_structural(),
            "pure coeff churn must stay on the in-place patch path"
        );
        assert_matches_fresh(&s, 6);
    }
}

/// Delete-then-reinsert of the same monomial inside a single delta:
/// the ops apply sequentially, so the net effect is a round trip back to
/// the baseline coefficients — and the session must agree with both the
/// untouched baseline and a fresh rebuild.
#[test]
fn delete_then_reinsert_within_one_delta_round_trips() {
    let mut s = planned_session(6);
    let grid = month_grid(s.registry());
    let baseline_curve = curve(&s);
    let baseline_rows = exact_rows_seq(&s, &grid, KernelTarget::Auto);

    let p1m1 = {
        let p1 = s.registry().lookup("p1").unwrap();
        let m1 = s.registry().lookup("m1").unwrap();
        Monomial::from_pairs([(p1, 1), (m1, 1)])
    };
    let mut delta = PolyDelta::new();
    delta.remove(0, p1m1.clone());
    delta.set(0, p1m1, rat("208.8"));
    s.apply_delta(&delta).unwrap();

    assert_eq!(curve(&s), baseline_curve);
    assert_eq!(exact_rows_seq(&s, &grid, KernelTarget::Auto), baseline_rows);
    assert_matches_fresh(&s, 6);
}

/// The same round trip split across two deltas: the intermediate state
/// (term genuinely gone, engines spliced, plan re-selected) must match a
/// fresh rebuild, and the reinsert must land back on the baseline.
#[test]
fn delete_then_reinsert_across_deltas_round_trips() {
    let mut s = planned_session(6);
    let grid = month_grid(s.registry());
    let baseline_rows = exact_rows_seq(&s, &grid, KernelTarget::Auto);

    let vm3 = {
        let v = s.registry().lookup("v").unwrap();
        let m3 = s.registry().lookup("m3").unwrap();
        Monomial::from_pairs([(v, 1), (m3, 1)])
    };

    let mut delete = PolyDelta::new();
    delete.remove(0, vm3.clone());
    let report = s.apply_delta(&delete).unwrap();
    assert!(report.is_structural(), "a genuine delete is structural");
    assert_matches_fresh(&s, 6);
    assert_ne!(
        exact_rows_seq(&s, &grid, KernelTarget::Auto),
        baseline_rows,
        "the delete must be observable"
    );

    let mut reinsert = PolyDelta::new();
    reinsert.set(0, vm3, rat("24.2"));
    s.apply_delta(&reinsert).unwrap();
    assert_eq!(exact_rows_seq(&s, &grid, KernelTarget::Auto), baseline_rows);
    assert_matches_fresh(&s, 6);
}

/// Deleting every term of a polynomial leaves it identically zero — the
/// patched engines and the incremental replan must handle the empty
/// polynomial exactly like a fresh rebuild does.
#[test]
fn deleting_every_term_of_a_poly_still_matches_fresh_rebuild() {
    let mut s = planned_session(6);
    let p2_terms: Vec<Monomial> = s
        .polynomials()
        .poly(1).unwrap()
        .terms()
        .iter()
        .map(|(m, _)| m.clone())
        .collect();
    assert_eq!(p2_terms.len(), 6);

    let mut delta = PolyDelta::new();
    for mono in p2_terms {
        delta.remove(1, mono);
    }
    s.apply_delta(&delta).unwrap();
    assert!(s.polynomials().poly(1).unwrap().is_zero());
    assert_matches_fresh(&s, 6);
}
