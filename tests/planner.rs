//! Property tests for the unified compression planner.
//!
//! Two contracts are pinned here:
//!
//! 1. **Frontier exactness** — every point of `ExactDp::plan_frontier` is
//!    exactly the optimum the application-measured brute-force oracle
//!    (`brute::optimize_single`) finds for the corresponding bounds, on
//!    small random trees and polynomial sets.
//! 2. **Re-selection identity** — `compress_frontier()` + `select_bound(b)`
//!    is bit-identical to a fresh `set_bound(b)` + `compress()`: same
//!    report, same cut, same exact sweep results, and (within one session)
//!    the same compressed polynomials and `f64` sweep bits.

use cobra::core::planner::{CutPlanner, ExactDp, PlanContext};
use cobra::core::{
    apply_cut, brute, CobraSession, CoreError, GroupAnalysis, ScenarioSet,
};
use cobra::core::{AbstractionTree, TreeSpec};
use cobra::provenance::{Monomial, PolySet, Polynomial, Valuation, VarRegistry};
use cobra::util::Rat;
use proptest::prelude::*;

/// Random tree spec (depth ≤ 3, arity ≤ 3) with globally unique names.
fn tree_strategy() -> impl Strategy<Value = TreeSpec> {
    tree_spec_inner(3)
        .prop_map(|spec| {
            let mut inner = 0usize;
            let mut leaves = 0usize;
            relabel(&spec, &mut inner, &mut leaves)
        })
        .prop_filter("at least 2 leaves", |s| count_leaves(s) >= 2)
}

fn tree_spec_inner(depth: usize) -> BoxedStrategy<TreeSpec> {
    if depth == 0 {
        Just(TreeSpec::leaf("x")).boxed()
    } else {
        prop_oneof![
            2 => Just(TreeSpec::leaf("x")),
            3 => proptest::collection::vec(tree_spec_inner(depth - 1), 2..4)
                .prop_map(|children| TreeSpec::node("n", children)),
        ]
        .boxed()
    }
}

fn relabel(spec: &TreeSpec, inner: &mut usize, leaves: &mut usize) -> TreeSpec {
    match spec {
        TreeSpec::Leaf(_) => {
            let s = TreeSpec::leaf(format!("x{leaves}"));
            *leaves += 1;
            s
        }
        TreeSpec::Node(_, children) => {
            let name = format!("n{inner}");
            *inner += 1;
            TreeSpec::node(
                name,
                children.iter().map(|c| relabel(c, inner, leaves)).collect(),
            )
        }
    }
}

fn count_leaves(spec: &TreeSpec) -> usize {
    match spec {
        TreeSpec::Leaf(_) => 1,
        TreeSpec::Node(_, children) => children.iter().map(count_leaves).sum(),
    }
}

/// Random polynomial set over the tree's leaves plus two context vars.
fn polyset_for(
    tree: &AbstractionTree,
    reg: &mut VarRegistry,
    picks: &[(usize, usize, usize, i64)],
) -> PolySet<Rat> {
    let contexts = [reg.var("ctx0"), reg.var("ctx1")];
    let leaves = tree.leaves().to_vec();
    let mut polys = vec![Polynomial::zero(); 2];
    for &(poly, ctx, leaf, coeff) in picks {
        let leaf = leaves[leaf % leaves.len()];
        let m = Monomial::from_pairs([(contexts[ctx % 2], 1), (leaf, 1)]);
        polys[poly % 2].add_term(m, Rat::int(coeff.max(1)));
    }
    PolySet::from_entries(
        polys
            .into_iter()
            .enumerate()
            .map(|(i, p)| (format!("P{i}"), p)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Frontier points are exactly the per-bound optima of the
    /// application-measured brute-force oracle.
    #[test]
    fn frontier_points_are_brute_force_optima(
        spec in tree_strategy(),
        picks in proptest::collection::vec(
            (0usize..2, 0usize..2, 0usize..16, 1i64..100),
            1..24
        ),
    ) {
        let mut reg = VarRegistry::new();
        let tree = AbstractionTree::build(&spec, &mut reg).expect("unique names");
        let set = polyset_for(&tree, &mut reg, &picks);
        let analysis = GroupAnalysis::analyze(&set, &tree).expect("one leaf per monomial");
        let ctx = PlanContext::new(&tree, &analysis);
        let frontier = ExactDp.plan_frontier(&ctx).expect("DP frontier");
        let full = analysis.total_monomials();

        // every frontier point's witness cut really measures its size
        for point in frontier.points() {
            let mut reg2 = reg.clone();
            let applied = apply_cut(&set, &tree, &point.cut, &mut reg2);
            prop_assert_eq!(applied.compressed_size as u64, point.size);
            prop_assert_eq!(point.cut.len(), point.variables);
        }

        for bound in 0..=full + 1 {
            let selected = frontier.select(bound);
            let oracle = brute::optimize_single(&set, &tree, bound, &mut reg.clone(), 50_000);
            match (selected, oracle) {
                (Some(point), Ok(best)) => {
                    prop_assert_eq!(point.variables, best.variables, "bound {}", bound);
                    prop_assert_eq!(point.size, best.size, "bound {}", bound);
                }
                (None, Err(CoreError::InfeasibleBound { min_achievable })) => {
                    prop_assert!(min_achievable > bound);
                    prop_assert_eq!(frontier.min_size(), min_achievable);
                }
                (selected, oracle) => {
                    return Err(TestCaseError::fail(format!(
                        "bound {bound}: frontier {selected:?} vs oracle {oracle:?}"
                    )));
                }
            }
        }
    }

    /// `compress_frontier` + `select_bound` ≡ a fresh `compress()` at the
    /// same bound — report, cut, and exact sweep results bit-identical.
    #[test]
    fn select_bound_is_bit_identical_to_fresh_compress(
        spec in tree_strategy(),
        picks in proptest::collection::vec(
            (0usize..2, 0usize..2, 0usize..16, 1i64..100),
            2..24
        ),
        divisors in proptest::collection::vec(1u64..8, 1..5),
    ) {
        let mut reg = VarRegistry::new();
        let tree = AbstractionTree::build(&spec, &mut reg).expect("unique names");
        let set = polyset_for(&tree, &mut reg, &picks);
        let full = set.total_monomials() as u64;

        // scenarios perturbing every tree leaf plus a context var
        let scenario_vars: Vec<_> = tree
            .leaves()
            .iter()
            .copied()
            .chain([reg.lookup("ctx0").expect("ctx0 exists")])
            .collect();
        let scenarios: Vec<Valuation<Rat>> = scenario_vars
            .iter()
            .map(|&v| Valuation::with_default(Rat::ONE).bind(v, Rat::new(11, 10)))
            .collect();

        let mut frontier_session = CobraSession::new(reg.clone(), set.clone());
        frontier_session.add_tree(
            AbstractionTree::build(&spec, &mut reg.clone()).expect("same spec"),
        );
        let min_size = match frontier_session.compress_frontier() {
            Ok(f) => f.min_size(),
            Err(e) => return Err(TestCaseError::fail(format!("frontier failed: {e}"))),
        };

        for divisor in divisors {
            let bound = (full / divisor).max(min_size);
            let selected = frontier_session.select_bound(bound).expect("feasible bound");

            let mut fresh = CobraSession::new(reg.clone(), set.clone());
            fresh.add_tree(AbstractionTree::build(&spec, &mut reg.clone()).expect("same spec"));
            fresh.set_bound(bound);
            let compressed = fresh.compress().expect("feasible bound");

            // report identity
            prop_assert_eq!(selected.bound, compressed.bound);
            prop_assert_eq!(selected.original_size, compressed.original_size);
            prop_assert_eq!(selected.compressed_size, compressed.compressed_size);
            prop_assert_eq!(selected.original_vars, compressed.original_vars);
            prop_assert_eq!(selected.compressed_vars, compressed.compressed_vars);
            prop_assert_eq!(&selected.cuts, &compressed.cuts, "cut display");

            // exact sweep results bit-identical (Rat values per scenario)
            let sweep_a = frontier_session
                .sweep(ScenarioSet::from(&scenarios[..]))
                .expect("selected");
            let sweep_b = fresh.sweep(ScenarioSet::from(&scenarios[..])).expect("compressed");
            prop_assert_eq!(sweep_a.len(), sweep_b.len());
            for i in 0..sweep_a.len() {
                prop_assert_eq!(
                    &sweep_a.comparison(i).rows,
                    &sweep_b.comparison(i).rows,
                    "scenario {} under bound {}",
                    i,
                    bound
                );
            }
        }
    }
}

/// Within one session (same registry), a `select_bound` after a plain
/// `compress()` at the same bound reproduces the compressed polynomials
/// and the `f64` sweep bits exactly.
#[test]
fn select_bound_matches_compress_within_one_session() {
    const POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
    const TREE: &str =
        "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))";

    let mut session = CobraSession::from_text(POLYS).unwrap();
    session.add_tree_text(TREE).unwrap();
    session.compress_frontier().unwrap();
    let m3 = session.registry_mut().var("m3");
    let b1 = session.registry_mut().var("b1");
    let grid = ScenarioSet::grid()
        .axis([m3], [Rat::new(8, 10), Rat::ONE, Rat::new(12, 10)])
        .axis([b1], [Rat::ONE, Rat::new(11, 10)])
        .build()
        .unwrap();

    for bound in [4u64, 6, 8, 10, 14] {
        session.set_bound(bound);
        let report_compress = session.compress().unwrap();
        let polys_compress = session.compressed_polynomials().unwrap().clone();
        let sweep_compress = session.sweep_f64(&grid).unwrap();

        let report_select = session.select_bound(bound).unwrap();
        let polys_select = session.compressed_polynomials().unwrap().clone();
        let sweep_select = session.sweep_f64(&grid).unwrap();

        assert_eq!(report_select.compressed_size, report_compress.compressed_size);
        assert_eq!(report_select.cuts, report_compress.cuts, "bound {bound}");
        assert_eq!(polys_select, polys_compress, "bound {bound}");
        for i in 0..grid.len() {
            assert_eq!(sweep_select.full_row(i), sweep_compress.full_row(i));
            assert_eq!(
                sweep_select.compressed_row(i),
                sweep_compress.compressed_row(i),
                "f64 bits must match at bound {bound}, scenario {i}"
            );
        }
    }
}
