//! Integration coverage for the `ScenarioSet` surface: grid cardinality
//! and enumeration order, edge cases (empty axes, single scenarios), and
//! a property test pinning grid-driven sweeps bit-identical to the
//! materialized-`Vec<Valuation>` path on random grids.

use cobra::core::scenario_set::Axis;
use cobra::core::{CobraSession, CoreError, ScenarioSet};
use cobra::util::Rat;
use proptest::prelude::*;

const PAPER_POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";

const FIG2_TREE: &str =
    "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))";

fn rat(s: &str) -> Rat {
    Rat::parse(s).unwrap()
}

fn compressed_session(bound: u64) -> CobraSession {
    let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
    s.add_tree_text(FIG2_TREE).unwrap();
    s.set_bound(bound);
    s.compress().unwrap();
    s
}

#[test]
fn grid_enumeration_is_row_major_with_last_axis_fastest() {
    let mut s = compressed_session(6);
    let m3 = s.registry_mut().var("m3");
    let p1 = s.registry_mut().var("p1");
    let grid = ScenarioSet::grid()
        .axis([m3], [rat("0.8"), rat("1.2")])
        .axis([p1], [rat("1"), rat("1.1"), rat("1.3")])
        .build()
        .unwrap();
    assert_eq!(grid.len(), 6);
    let base = s.base_valuation().clone();
    let expected = [
        ("0.8", "1"),
        ("0.8", "1.1"),
        ("0.8", "1.3"),
        ("1.2", "1"),
        ("1.2", "1.1"),
        ("1.2", "1.3"),
    ];
    for (i, (m3_level, p1_level)) in expected.iter().enumerate() {
        let val = grid.scenario_valuation(i, &base);
        assert_eq!(val.get(m3), Some(rat(m3_level)), "scenario {i}");
        assert_eq!(val.get(p1), Some(rat(p1_level)), "scenario {i}");
    }
    // the sweep enumerates the same order
    let sweep = s.sweep(&grid).unwrap();
    for (i, (m3_level, _)) in expected.iter().enumerate() {
        let single = s
            .assign(base.overridden_by(&grid.scenario_valuation(i, &base)))
            .unwrap();
        assert_eq!(sweep.comparison(i).rows, single.rows, "m3={m3_level}");
    }
}

#[test]
fn empty_axis_and_single_scenario_edges() {
    let mut s = compressed_session(6);
    let m3 = s.registry_mut().var("m3");

    // an axis with no levels annihilates the grid
    let empty = ScenarioSet::grid().axis([m3], []).build().unwrap();
    assert!(empty.is_empty());
    let sweep = s.sweep(&empty).unwrap();
    assert!(sweep.is_empty());
    assert!(sweep.is_exact());

    // a grid with no axes is the base scenario — and a valid `assign`
    let identity = ScenarioSet::grid().build().unwrap();
    assert_eq!(identity.len(), 1);
    let cmp = s.assign(&identity).unwrap();
    assert!(cmp.is_exact(), "base scenario projects losslessly");

    // a one-level one-axis grid equals the explicit single scenario
    let single = ScenarioSet::grid()
        .axis([m3], [rat("0.8")])
        .build()
        .unwrap();
    let explicit = s
        .assign(cobra::provenance::Valuation::with_default(Rat::ONE).bind(m3, rat("0.8")))
        .unwrap();
    assert_eq!(s.assign(&single).unwrap().rows, explicit.rows);
}

#[test]
fn overlapping_axes_error_is_surfaced() {
    let mut reg = cobra::provenance::VarRegistry::new();
    let x = reg.var("x");
    let err = ScenarioSet::grid()
        .axis([x], [Rat::ONE])
        .scale_axis([x], [Rat::ONE])
        .build()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidScenarioGrid(_)));
    assert!(err.to_string().contains("invalid scenario grid"));
}

/// Random levels for one axis: 0..=3 levels drawn from a small exact set.
fn levels_strategy() -> impl Strategy<Value = Vec<Rat>> {
    proptest::collection::vec((-20i128..40, 1i128..5), 0..4)
        .prop_map(|pairs| pairs.into_iter().map(|(n, d)| Rat::new(n, d)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Grid-driven sweeps are bit-identical to sweeping the materialized
    /// valuation vector, across random level sets, ops, and axis groups
    /// (aligned group, partial group, tree-external variable).
    #[test]
    fn grid_sweep_equals_materialized_sweep(
        m3_levels in levels_strategy(),
        business_levels in levels_strategy(),
        y1_levels in levels_strategy(),
        scale_y1 in 0u8..2,
    ) {
        let scale_y1 = scale_y1 == 1;
        let mut s = compressed_session(6);
        let m3 = s.registry_mut().var("m3");
        let b_vars = ["b1", "b2", "e"].map(|n| s.registry_mut().var(n));
        let y1 = s.registry_mut().var("y1");
        let mut builder = ScenarioSet::grid()
            .axis([m3], m3_levels)
            .axis(b_vars, business_levels);
        builder = if scale_y1 {
            builder.scale_axis([y1], y1_levels)
        } else {
            builder.axis([y1], y1_levels)
        };
        let grid = builder.build().unwrap();
        let base = s.base_valuation().clone();
        let flat = grid.materialize(&base);
        prop_assert_eq!(flat.len(), grid.len());
        let by_grid = s.sweep(&grid).unwrap();
        let by_vec = s.sweep(&flat[..]).unwrap();
        prop_assert_eq!(by_grid.len(), by_vec.len());
        for i in 0..by_grid.len() {
            prop_assert_eq!(by_grid.full_row(i), by_vec.full_row(i), "scenario {}", i);
            prop_assert_eq!(
                by_grid.compressed_row(i),
                by_vec.compressed_row(i),
                "scenario {}",
                i
            );
        }
    }

    /// Perturbation families equal their materialized counterparts, and
    /// `linspace` axes enumerate exact endpoints.
    #[test]
    fn perturbation_sweep_equals_materialized(delta_num in 1i128..16) {
        // 1..16 offset by −8, skipping zero: deltas in ±[1/4, 2]
        let delta = Rat::new(if delta_num >= 8 { delta_num - 7 } else { delta_num - 9 }, 4);
        let mut s = compressed_session(6);
        let vars: Vec<_> = ["b1", "m3", "p1", "y1", "v"]
            .iter()
            .map(|n| s.registry_mut().var(n))
            .collect();
        let family = ScenarioSet::perturb_each(vars, delta);
        let base = s.base_valuation().clone();
        let flat = family.materialize(&base);
        let by_set = s.sweep(&family).unwrap();
        let by_vec = s.sweep(&flat[..]).unwrap();
        for i in 0..by_set.len() {
            prop_assert_eq!(by_set.full_row(i), by_vec.full_row(i));
            prop_assert_eq!(by_set.compressed_row(i), by_vec.compressed_row(i));
        }
    }
}

#[test]
fn linspace_axis_through_full_pipeline() {
    let mut s = compressed_session(6);
    let m3 = s.registry_mut().var("m3");
    let axis = Axis::linspace([m3], rat("0.8"), rat("1.2"), 9);
    let grid = ScenarioSet::grid().push(axis).build().unwrap();
    let sweep = s.sweep(&grid).unwrap();
    assert_eq!(sweep.len(), 9);
    // month variables sit outside the tree: every point is exact
    assert!(sweep.is_exact());
    // endpoints are exact rationals, not float approximations
    let base = s.base_valuation().clone();
    assert_eq!(grid.scenario_valuation(0, &base).get(m3), Some(rat("0.8")));
    assert_eq!(grid.scenario_valuation(8, &base).get(m3), Some(rat("1.2")));
}
