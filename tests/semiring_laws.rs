//! Property tests for the semiring provenance substrate (Green et al.):
//! commutative-semiring laws for every instance, and homomorphism
//! commutation through K-relation queries with random data.

use cobra::engine::krelation::KRelation;
use cobra::engine::{Schema, Value};
use cobra::provenance::semiring::{eval_hom, Access, Tropical, Why};
use cobra::provenance::{Monomial, Polynomial, Semiring, Valuation, Var};
use cobra::util::Rat;
use proptest::prelude::*;

fn check_laws<K: Semiring>(a: &K, b: &K, c: &K) -> Result<(), TestCaseError> {
    let zero = K::zero();
    let one = K::one();
    prop_assert_eq!(a.plus(&zero), a.clone());
    prop_assert_eq!(a.times(&one), a.clone());
    prop_assert_eq!(a.plus(b), b.plus(a));
    prop_assert_eq!(a.times(b), b.times(a));
    prop_assert_eq!(a.plus(b).plus(c), a.plus(&b.plus(c)));
    prop_assert_eq!(a.times(b).times(c), a.times(&b.times(c)));
    prop_assert_eq!(a.times(&b.plus(c)), a.times(b).plus(&a.times(c)));
    prop_assert!(a.times(&zero).is_zero());
    Ok(())
}

fn access_strategy() -> impl Strategy<Value = Access> {
    prop_oneof![
        Just(Access::Public),
        Just(Access::Confidential),
        Just(Access::Secret),
        Just(Access::TopSecret),
        Just(Access::Never),
    ]
}

fn why_strategy() -> impl Strategy<Value = Why> {
    proptest::collection::vec(proptest::collection::vec(0u32..5, 0..3), 0..3).prop_map(
        |witnesses| {
            Why(witnesses
                .into_iter()
                .map(|w| w.into_iter().map(Var).collect())
                .collect())
        },
    )
}

fn poly_strategy() -> impl Strategy<Value = Polynomial<Rat>> {
    proptest::collection::vec(
        (proptest::collection::vec((0u32..4, 1u32..3), 0..3), -9i64..9),
        0..4,
    )
    .prop_map(|terms| {
        Polynomial::from_terms(terms.into_iter().map(|(pairs, c)| {
            (
                Monomial::from_pairs(pairs.into_iter().map(|(v, e)| (Var(v), e))),
                Rat::int(c),
            )
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn counting_laws(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
        check_laws(&a, &b, &c)?;
    }

    #[test]
    fn boolean_laws(a: bool, b: bool, c: bool) {
        check_laws(&a, &b, &c)?;
    }

    #[test]
    fn tropical_laws(a in 0u64..100, b in 0u64..100, c in 0u64..100) {
        check_laws(&Tropical(a), &Tropical(b), &Tropical::INFINITY)?;
        check_laws(&Tropical(a), &Tropical(b), &Tropical(c))?;
    }

    #[test]
    fn access_laws(a in access_strategy(), b in access_strategy(), c in access_strategy()) {
        check_laws(&a, &b, &c)?;
    }

    #[test]
    fn why_laws(a in why_strategy(), b in why_strategy(), c in why_strategy()) {
        check_laws(&a, &b, &c)?;
    }

    #[test]
    fn polynomial_laws(a in poly_strategy(), b in poly_strategy(), c in poly_strategy()) {
        check_laws(&a, &b, &c)?;
    }

    /// The fundamental commutation theorem over random K-relations: for a
    /// join-project query, evaluating symbolically (ℚ[X]) and then
    /// applying the valuation homomorphism equals evaluating over ℚ
    /// directly.
    #[test]
    fn hom_commutes_over_random_krelations(
        r_rows in proptest::collection::vec((0i64..4, 0i64..4, 0u32..6), 1..8),
        s_rows in proptest::collection::vec((0i64..4, 0i64..4, 0u32..6), 1..8),
        values in proptest::collection::vec(-3i64..4, 6),
    ) {
        let val = {
            let mut v = Valuation::with_default(Rat::ONE);
            for (i, &x) in values.iter().enumerate() {
                v.set(Var(i as u32), Rat::int(x));
            }
            v
        };
        let poly = |x: u32| Polynomial::<Rat>::term(Monomial::var(Var(x)), Rat::ONE);

        let mut r_sym: KRelation<Polynomial<Rat>> = KRelation::new(Schema::new(["a", "b"]));
        let mut r_num: KRelation<Rat> = KRelation::new(Schema::new(["a", "b"]));
        for &(a, b, x) in &r_rows {
            let row = vec![Value::Int(a), Value::Int(b)];
            r_sym.insert(row.clone(), poly(x)).unwrap();
            r_num.insert(row, eval_hom(&poly(x), &val)).unwrap();
        }
        let mut s_sym: KRelation<Polynomial<Rat>> = KRelation::new(Schema::new(["b2", "c"]));
        let mut s_num: KRelation<Rat> = KRelation::new(Schema::new(["b2", "c"]));
        for &(b, c, x) in &s_rows {
            let row = vec![Value::Int(b), Value::Int(c)];
            s_sym.insert(row.clone(), poly(x)).unwrap();
            s_num.insert(row, eval_hom(&poly(x), &val)).unwrap();
        }

        let sym = r_sym
            .join(&s_sym, &[("b", "b2")]).unwrap()
            .project(&["c"]).unwrap()
            .map_annotations(|p| eval_hom(p, &val));
        let num = r_num
            .join(&s_num, &[("b", "b2")]).unwrap()
            .project(&["c"]).unwrap();

        for c in 0i64..4 {
            let row = vec![Value::Int(c)];
            prop_assert_eq!(
                sym.annotation(&row).unwrap(),
                num.annotation(&row).unwrap(),
                "tuple c={}", c
            );
        }
    }
}
