//! The ISSUE 3 acceptance bar: a 10⁶-scenario grid **aggregates** through
//! `CobraSession::sweep_fold` in O(1) output memory.
//!
//! Where `tests/grid_alloc.rs` bounds the materializing sweep by its own
//! output matrix, the fold path has no output matrix at all: the entire
//! allocation budget for streaming 1,048,576 scenarios through both
//! compiled engines is a small constant (block row/result buffers plus
//! binder plans) — 2 MiB covers it with room to spare, while any
//! regression that materializes per-scenario valuations, rows, or results
//! costs hundreds of megabytes and fails immediately.
//!
//! The same test then re-runs the grid through the **parallel** fold
//! engine (`sweep_fold_par`, ISSUE 4) at 4 workers and proves its budget
//! is O(workers): each worker owns one set of bind/result block buffers
//! plus a fold replica, so the parallel pass costs a few worker-sized
//! constants — not O(scenarios), and not O(blocks) either (per-worker
//! scratch is reused across all of a worker's blocks).
//!
//! This file contains exactly one test so no concurrently running test
//! pollutes the allocation counter, and pins `COBRA_THREADS=1` for the
//! sequential phase (the parallel phase pins its worker count with the
//! race-free `par::with_threads` scope instead).

use cobra::core::folds::{self, MaxAbsError};
use cobra::core::scenario_set::Axis;
use cobra::core::{CobraSession, ScenarioSet};
use cobra::util::Rat;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A compact provenance whose exact sweep stays fast in debug builds:
/// grouping `a, b` into `AB` merges P1's two monomials, so the compressed
/// side both shrinks and exercises the meta-group projection.
const POLYS: &str = "P1 = 2*a*m + 3*b*m\nP2 = 5*c*m";
const TREE: &str = "T(AB(a,b), c)";

#[test]
fn million_scenario_grid_folds_within_constant_budget() {
    std::env::set_var("COBRA_THREADS", "1");
    let rat = |s: &str| Rat::parse(s).unwrap();
    let mut s = CobraSession::from_text(POLYS).unwrap();
    s.add_tree_text(TREE).unwrap();
    s.set_bound(2);
    s.compress().unwrap();

    // 32⁴ = 1,048,576 scenarios over four disjoint axes — an O(axes)
    // description of a grid whose materialized form would be gigabytes.
    let steps = 32usize;
    let vars = ["a", "b", "c", "m"].map(|n| s.registry_mut().var(n));
    let grid = ScenarioSet::grid()
        .push(Axis::linspace([vars[0]], rat("0.8"), rat("1.2"), steps))
        .push(Axis::linspace([vars[1]], rat("0.9"), rat("1.1"), steps))
        .push(Axis::linspace([vars[2]], rat("0.5"), rat("1.5"), steps))
        .push(Axis::linspace([vars[3]], rat("0.8"), rat("1.2"), steps))
        .build()
        .unwrap();
    let n = grid.len();
    assert!(n >= 1_000_000, "acceptance requires a 10^6+ grid, got {n}");

    // Warm-up at small scale: initializes the session's lazy engines and
    // faults in allocator metadata, so the measured run sees steady state.
    let small = ScenarioSet::grid()
        .push(Axis::linspace([vars[3]], rat("0.8"), rat("1.2"), 64 * 17))
        .build()
        .unwrap();
    let warm = s
        .sweep_fold(&small, MaxAbsError::new(), folds::step)
        .unwrap();
    assert_eq!(warm.max_rel_error, 0.0); // m is outside the tree

    let before = ALLOCATED.load(Ordering::SeqCst);
    let (count, worst) = s
        .sweep_fold(&grid, (0usize, MaxAbsError::new()), |(count, worst), item| {
            (count + 1, folds::step(worst, item))
        })
        .unwrap();
    let allocated = ALLOCATED.load(Ordering::SeqCst) - before;

    // Budget: 2 MiB TOTAL — there is no output matrix. The streamed
    // engine allocates block row/result buffers and binder plans once per
    // sweep (O(block × row), independent of n); materializing 10⁶
    // valuations, rows, or result pairs costs 100s of MB and fails here.
    let budget = 2 * 1024 * 1024;
    assert!(
        allocated <= budget,
        "fold sweep allocated {allocated} bytes over a {n}-scenario grid, \
         budget {budget}; a per-scenario materialization snuck in"
    );

    assert_eq!(count, n);
    // axis `a` moves alone inside the AB group → the grid contains lossy
    // points, and the fold saw them
    assert!(worst.max_rel_error > 0.0);
    assert!(worst.argmax_rel.is_some());

    // Spot-check the fold against the single-assignment path: the
    // worst-offender scenario really is lossy under assign too.
    let base = s.base_valuation().clone();
    let cmp = s
        .assign(grid.scenario_valuation(worst.argmax_rel.unwrap(), &base))
        .unwrap();
    assert!(cmp.max_rel_error() > 0.0);

    // ── Parallel phase: the same 10⁶-scenario grid through the
    // fold-combine engine at 4 workers. Budget: O(workers) — every worker
    // allocates its binder plans, block row/result buffers and one fold
    // replica exactly once, so 4 workers fit in 4 MiB with headroom while
    // any per-scenario (or per-block) allocation regression costs orders
    // of magnitude more and fails immediately.
    let workers = 4usize;
    let before = ALLOCATED.load(Ordering::SeqCst);
    let par_worst = cobra::util::par::with_threads(workers, || {
        s.sweep_fold_par(&grid, MaxAbsError::new()).unwrap()
    });
    let allocated = ALLOCATED.load(Ordering::SeqCst) - before;
    let budget = workers * 1024 * 1024;
    assert!(
        allocated <= budget,
        "parallel fold allocated {allocated} bytes over a {n}-scenario grid \
         at {workers} workers, budget {budget}; worker state is no longer \
         O(workers)"
    );

    // …and the parallel aggregate is bit-identical to the sequential one.
    assert_eq!(par_worst.max_abs_error, worst.max_abs_error);
    assert_eq!(par_worst.argmax_abs, worst.argmax_abs);
    assert_eq!(par_worst.max_rel_error, worst.max_rel_error);
    assert_eq!(par_worst.argmax_rel, worst.argmax_rel);
}
