//! Test-runner plumbing: configuration, deterministic RNG, case errors.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (the only knob this shim supports).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (assertion failure, not a panic).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(message: impl fmt::Display) -> TestCaseError {
        TestCaseError {
            message: message.to_string(),
        }
    }

    /// Alias kept for API compatibility with real proptest's `Fail` variant
    /// constructor usage.
    pub fn reject(message: impl fmt::Display) -> TestCaseError {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// SplitMix64: tiny, deterministic, and plenty for test-input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Current internal state — reported on failure so a case can be
    /// reproduced by seeding a fresh rng with it.
    pub fn peek_state(&self) -> u64 {
        self.state
    }
}

/// Deterministic RNG for a named test (FNV-1a over the name).
pub fn rng_for(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}
