//! `Arbitrary`: default generation for typed `proptest!` parameters
//! (`fn f(a: bool)`).

use crate::test_runner::TestRng;

/// Types with a canonical whole-domain generator.
pub trait Arbitrary {
    /// Draws one value covering the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
