//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specification for [`vec()`]: an exact length or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
