//! Value-generation strategies: the generation half of proptest's
//! `Strategy` abstraction (shrinking is intentionally omitted).

use crate::test_runner::TestRng;
use std::ops::Range;

/// How many consecutive `prop_filter` rejections abort a test case.
const MAX_FILTER_REJECTS: usize = 10_000;

/// A recipe for generating values of one type.
///
/// Generic combinators are `Sized`-gated so `dyn Strategy<Value = T>` stays
/// object-safe for [`BoxedStrategy`].
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred` (resampling).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Generates an intermediate value, then a final value from the
    /// strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_REJECTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected {MAX_FILTER_REJECTS} candidates: {}", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % self.total as u64) as u32;
        for (w, strat) in &self.arms {
            if pick < *w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width) as i128;
                ((self.start as i128) + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let width = self.end.wrapping_sub(self.start) as u128;
        let offset = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width) as i128;
        self.start.wrapping_add(offset)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
