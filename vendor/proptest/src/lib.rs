//! Minimal, offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this shim provides exactly the surface the test-suite uses:
//! deterministic random *generation* (no shrinking), `Strategy` combinators
//! (`prop_map`, `prop_filter`, `prop_flat_map`, `boxed`), integer-range and
//! tuple strategies, `collection::vec`, `Just`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Failing cases are reported with their case index and seed; re-running is
//! deterministic (the seed derives from the test name), so a failure
//! reproduces without persisted regression files.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies. Supports the optional
/// `#![proptest_config(...)]` header used by this repository's tests.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let seed = rng.peek_state();
                let result: $crate::test_runner::TestCaseResult = (|| {
                    $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    let run = move || -> $crate::test_runner::TestCaseResult { $body Ok(()) };
                    run()
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1,
                        config.cases,
                        seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    // Typed parameters (`fn f(a: bool)`) draw from the type's `Arbitrary`.
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident : $ty:ty ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let seed = rng.peek_state();
                let result: $crate::test_runner::TestCaseResult = (|| {
                    $( let $arg = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut rng); )+
                    let run = move || -> $crate::test_runner::TestCaseResult { $body Ok(()) };
                    run()
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1,
                        config.cases,
                        seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts inside a proptest body, failing the case (not panicking) so the
/// runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type. All arms are boxed, matching real proptest's `TupleUnion`
/// semantics closely enough for generation.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}
