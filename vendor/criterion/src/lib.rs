//! Minimal, offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim supplies
//! the benchmarking surface used by `cobra-bench`: `Criterion`,
//! `BenchmarkGroup` (with `sample_size` / `warm_up_time` /
//! `measurement_time` / `bench_function` / `bench_with_input`),
//! `BenchmarkId`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, iterations are calibrated so one
//! sample lasts roughly `measurement_time / sample_size`, then
//! `sample_size` samples are timed and the **median** ns/iter is reported
//! (plus min and max) on stdout as
//! `bench: <group>/<id> ... median <t> (<iters/s>)`. Lines are stable and
//! greppable so experiment scripts can harvest them.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; a bare positional arg is a filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// A named benchmark id, optionally parameterized (`name/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("full", 139260)` renders as `full/139260`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// How `iter_batched` amortizes setup cost. The shim times setup+routine
/// together but subtracts a setup-only calibration, which is close enough
/// for the cheap setups used here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: batch many per sample.
    SmallInput,
    /// Large inputs: one per sample.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Filled by `iter*`: measured per-iteration durations, one per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, auto-calibrating iterations per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and calibration: run until warm_up_time elapses, counting.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((target_sample / per_iter).ceil() as u64).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded from
    /// the measurement by per-iteration timing).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut measured = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            measured += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = (measured.as_secs_f64() / warm_iters as f64).max(1e-9);
        let target_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((target_sample / per_iter).ceil() as u64).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut sample = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                sample += t.elapsed();
            }
            self.samples.push(sample.as_secs_f64() / iters as f64);
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up (and calibration) time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into_id());
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(&full_id, &mut bencher.samples);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(&mut self) {}
}

fn report(id: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("bench: {id:<48} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "bench: {id:<48} median {} (min {}, max {}, {:.1} iter/s)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        1.0 / median
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Defines a benchmark-group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
