//! Plain-text / markdown table rendering for experiment reports.
//!
//! The `experiments` binary prints the same rows the paper reports
//! (paper-value vs. measured-value); this module renders them with aligned
//! columns for terminals and in GitHub-flavoured markdown for
//! EXPERIMENTS.md.

use std::fmt;

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    Left,
    Right,
}

/// An in-memory table: a header row plus data rows of equal arity.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers (all left-aligned).
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `idx`.
    pub fn align(mut self, idx: usize, align: Align) -> Self {
        self.aligns[idx] = align;
        self
    }

    /// Right-aligns every column except the first (the usual shape for
    /// name + numbers tables).
    pub fn numeric(mut self) -> Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let fill = " ".repeat(width - len);
        match align {
            Align::Left => format!("{cell}{fill}"),
            Align::Right => format!("{fill}{cell}"),
        }
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let render_row = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| Self::pad(c, w[i], self.aligns[i]))
                .collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&render_row(&self.headers));
        let sep: Vec<String> = w
            .iter()
            .zip(&self.aligns)
            .map(|(&width, a)| match a {
                Align::Left => "-".repeat(width.max(3)),
                Align::Right => format!("{}:", "-".repeat(width.max(3) - 1)),
            })
            .collect();
        out.push_str(&format!("|{}|\n", sep.iter().map(|s| format!(" {s} ")).collect::<Vec<_>>().join("|")));
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        out
    }
}

impl fmt::Display for Table {
    /// Renders with aligned columns for terminal output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let render = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| Self::pad(c, w[i], self.aligns[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render(&self.headers))?;
        writeln!(
            f,
            "{}",
            w.iter()
                .map(|&n| "-".repeat(n))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", render(row).trim_end())?;
        }
        Ok(())
    }
}

/// Formats an integer with thousands separators (`139260` → `"139,260"`),
/// matching how the paper prints provenance sizes.
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new(["cut", "monomials", "variables"]).numeric();
        t.row(["S1", "4", "4"]);
        t.row(["S5", "2", "3"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("cut"));
        assert!(lines[2].contains("S1"));
        // numeric columns right-aligned under their headers
        assert!(lines[2].ends_with('4'));
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(["a", "b"]).numeric();
        t.row(["x", "1"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a"));
        assert!(md.lines().nth(1).unwrap().contains("---"));
        assert!(md.lines().nth(1).unwrap().contains(":"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(139260), "139,260");
        assert_eq!(thousands(1234567890), "1,234,567,890");
    }
}
