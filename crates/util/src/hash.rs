//! Fx-style fast hashing.
//!
//! The compression pipeline's hot loops are hash-map probes keyed by small
//! integers (variable symbols) and short integer sequences (monomials). The
//! standard library's SipHash is collision-hardened but slow for such keys;
//! following the Rust Performance Book's guidance we use the multiplicative
//! "Fx" scheme (as popularized by rustc) implemented locally to stay
//! dependency-free.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the fast [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with the fast [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher: `state = (state rol 5 ^ word) × SEED`.
///
/// Not HashDoS-resistant; used only on internal, non-adversarial keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_differently() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(k);
            assert!(seen.insert(h.finish()), "collision at {k}");
        }
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        m.insert(1, "c");
        assert_eq!(m.len(), 2);
        assert_eq!(m[&1], "c");
    }

    #[test]
    fn byte_stream_chunking_consistent() {
        // Hashing the same logical bytes in one call must equal the rolling
        // result regardless of how `write` splits words internally.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h1.finish(), h2.finish());
    }
}
