//! Shared, cheaply clonable slices over arbitrary backing storage.
//!
//! [`ArcSlice`] is the storage type behind the compiled evaluation engine's
//! CSR arrays: a `(pointer, length)` view plus an `Arc` keep-alive for
//! whatever owns the bytes — a `Vec` produced by the compiler, or a
//! memory-mapped persistence artifact ([`crate::mmap::MmapFile`]). Cloning
//! is a reference-count bump, and loading a persisted program can alias the
//! mapped file directly instead of re-allocating each array.

use std::any::Any;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::align_of;
use std::ops::Deref;
use std::ptr::NonNull;
use std::sync::Arc;

/// An immutable shared slice: a borrowed-looking `&[T]` view that owns a
/// reference to its backing allocation.
///
/// Constructed either from an owned `Vec<T>` (the common case) or — via the
/// `unsafe` [`ArcSlice::from_raw_parts`] — from a region inside some other
/// owner such as a memory-mapped file.
///
/// ```
/// use cobra_util::ArcSlice;
/// let s: ArcSlice<u32> = vec![1, 2, 3].into();
/// let t = s.clone(); // O(1): bumps the refcount, no copy
/// assert_eq!(&*s, &[1, 2, 3]);
/// assert_eq!(s.as_ptr(), t.as_ptr());
/// ```
pub struct ArcSlice<T> {
    ptr: NonNull<T>,
    len: usize,
    _owner: Arc<dyn Any + Send + Sync>,
}

// Safety: ArcSlice hands out only shared `&[T]` access, so it is Send/Sync
// exactly when `&[T]` is, i.e. when `T: Sync`; `T: Send` is required so the
// owning allocation (which may embed `T`s) can be dropped on another thread.
unsafe impl<T: Send + Sync> Send for ArcSlice<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSlice<T> {}

impl<T> ArcSlice<T> {
    /// An empty slice with a trivial owner.
    pub fn new() -> ArcSlice<T> {
        ArcSlice {
            ptr: NonNull::dangling(),
            len: 0,
            _owner: Arc::new(()),
        }
    }

    /// Wraps a raw region kept alive by `owner`.
    ///
    /// # Safety
    /// `ptr` must be aligned for `T` and point at `len` initialized,
    /// immutable `T`s that remain valid (and un-mutated) for as long as
    /// `owner` is alive.
    pub unsafe fn from_raw_parts(
        ptr: *const T,
        len: usize,
        owner: Arc<dyn Any + Send + Sync>,
    ) -> ArcSlice<T> {
        debug_assert_eq!(ptr.align_offset(align_of::<T>()), 0, "misaligned ArcSlice");
        ArcSlice {
            ptr: NonNull::new_unchecked(ptr as *mut T),
            len,
            _owner: owner,
        }
    }
}

impl<T: Send + Sync + 'static> From<Vec<T>> for ArcSlice<T> {
    fn from(v: Vec<T>) -> ArcSlice<T> {
        let owner = Arc::new(v);
        let ptr = owner.as_ptr();
        let len = owner.len();
        // Safety: the Arc'd Vec's heap buffer is stable and outlives the
        // owner handle stored inside the ArcSlice.
        unsafe { ArcSlice::from_raw_parts(ptr, len, owner) }
    }
}

impl<T> Default for ArcSlice<T> {
    fn default() -> Self {
        ArcSlice::new()
    }
}

impl<T> Deref for ArcSlice<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // Safety: construction invariants (valid, aligned, initialized,
        // kept alive by `_owner`).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> AsRef<[T]> for ArcSlice<T> {
    fn as_ref(&self) -> &[T] {
        self
    }
}

impl<T> Clone for ArcSlice<T> {
    fn clone(&self) -> Self {
        ArcSlice {
            ptr: self.ptr,
            len: self.len,
            _owner: Arc::clone(&self._owner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: PartialEq> PartialEq for ArcSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<T: Eq> Eq for ArcSlice<T> {}

impl<T: Hash> Hash for ArcSlice<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_clone_alias() {
        let s: ArcSlice<u32> = vec![1, 2, 3].into();
        let t = s.clone();
        assert_eq!(&*s, &[1, 2, 3]);
        assert_eq!(s.as_ptr(), t.as_ptr());
        drop(s);
        assert_eq!(&*t, &[1, 2, 3]);
    }

    #[test]
    fn empty_slices() {
        let e: ArcSlice<u64> = ArcSlice::new();
        assert!(e.is_empty());
        let v: ArcSlice<u64> = Vec::new().into();
        assert!(v.is_empty());
        assert_eq!(e, v);
    }

    #[test]
    fn raw_parts_keeps_owner_alive() {
        let owner: Arc<Vec<u8>> = Arc::new(vec![7u8; 32]);
        let ptr = owner.as_ptr();
        let s = unsafe { ArcSlice::from_raw_parts(ptr, 32, owner) };
        assert!(s.iter().all(|&b| b == 7));
        let t = s.clone();
        drop(s);
        assert!(t.iter().all(|&b| b == 7));
    }

    #[test]
    fn sub_region_of_owner() {
        let owner: Arc<Vec<u32>> = Arc::new((0..16).collect());
        let ptr = unsafe { owner.as_ptr().add(4) };
        let s = unsafe { ArcSlice::from_raw_parts(ptr, 8, owner) };
        assert_eq!(&*s, &[4, 5, 6, 7, 8, 9, 10, 11]);
    }
}
