//! # cobra-util
//!
//! Support substrate for the COBRA reproduction. Everything here is
//! deliberately dependency-free so that data generation and arithmetic are
//! bit-for-bit reproducible across toolchains:
//!
//! * [`rational`] — exact rational arithmetic ([`Rat`]) used for provenance
//!   coefficients, so the paper's numbers (e.g. `208.8 = 522 × 0.4`) are
//!   reproduced without floating-point drift.
//! * [`intern`] — string interning ([`Symbol`], [`Interner`]) backing
//!   provenance variable names.
//! * [`hash`] — an Fx-style fast hasher for hot hash maps keyed by small
//!   integers/monomials (see the Rust Performance Book's hashing chapter).
//! * [`par`] — structured data-parallel helpers (scoped threads) used by
//!   the compiled batch evaluation engine; the offline stand-in for rayon.
//!   Worker panics are caught at span boundaries
//!   ([`par::try_par_owned_spans`]) so a failing worker cancels its
//!   siblings instead of aborting the process.
//! * [`cancel`] — the cooperative [`CancelToken`] sweep budgets and the
//!   panic-isolation path share.
//! * [`faults`] — the fault-injection test hooks (`COBRA_FAULTS`,
//!   [`faults::with_faults`]) that keep the robustness promises exercised;
//!   compiled to near-no-ops when disarmed.
//! * [`kernel`] — batch-kernel dispatch: runtime AVX2/FMA feature
//!   detection, the `COBRA_KERNEL` override ([`kernel::with_target`]),
//!   and the shared [`kernel::pow_f64`] exponentiation chain that keeps
//!   every `f64` evaluation path bit-identical.
//! * [`remap`] — registry-scoped dense `global → local` id remapping
//!   ([`DenseRemap`]) backing allocation-free scenario binding in the
//!   compiled evaluation engine.
//! * [`rng`] — SplitMix64, a tiny deterministic RNG for workload generation.
//! * [`timing`] — wall-clock measurement helpers for the speedup experiments.
//! * [`table`] — plain-text/markdown table rendering for experiment reports.
//! * [`arcslice`] — shared slices ([`ArcSlice`]) over arbitrary owners,
//!   letting compiled programs alias memory-mapped persistence artifacts.
//! * [`mmap`] — dependency-free read-only memory mapping ([`MmapFile`])
//!   with an aligned-buffer fallback.
//! * [`framed`] — `u32`-length-prefixed frame I/O for the sweep server's
//!   wire protocol.

pub mod arcslice;
pub mod cancel;
pub mod faults;
pub mod framed;
pub mod hash;
pub mod intern;
pub mod kernel;
pub mod mmap;
pub mod par;
pub mod rational;
pub mod remap;
pub mod rng;
pub mod table;
pub mod timing;

pub use arcslice::ArcSlice;
pub use cancel::CancelToken;
pub use kernel::{F64Kernel, KernelTarget};
pub use mmap::{AlignedBytes, MmapFile};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use intern::{Interner, Symbol};
pub use rational::{ParseRatError, Rat};
pub use remap::DenseRemap;
pub use rng::SplitMix64;
pub use table::Table;
pub use timing::{time_best_of, time_once, Stopwatch};
