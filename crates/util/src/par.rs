//! Structured data-parallel helpers over `std::thread::scope`.
//!
//! The batched evaluation engine splits scenario sweeps across cores. The
//! usual crate for this is `rayon`, but the build environment has no
//! crates.io access, so these helpers provide the two shapes the engine
//! needs — indexed map and chunked in-place fill — on scoped threads.
//! They degrade to straight serial loops when `available_parallelism` is 1
//! (or the input is tiny), so single-core containers pay no thread cost.

use crate::cancel::CancelToken;
use crate::faults;
use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread;

thread_local! {
    /// Scoped thread-count override installed by [`with_threads`].
    static THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads to use. Resolution order: a [`with_threads`]
/// scope on the calling thread, then the `COBRA_THREADS` environment
/// variable (useful for benchmarking scaling curves and for exercising
/// both the single- and multi-worker code paths in CI), then the detected
/// hardware parallelism.
pub fn num_threads() -> usize {
    if let Some(n) = THREADS_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("COBRA_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` with [`num_threads`] pinned to `n` **on the calling thread**
/// (nested scopes restore the previous value on exit, including on
/// panic). Unlike setting `COBRA_THREADS`, this is race-free under
/// concurrent tests: only dispatch decisions made by the calling thread
/// observe the override, which is exactly where every `par` entry point
/// reads it.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREADS_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Maps `f` over `items` (with the item index), preserving order.
/// Parallelises across contiguous chunks when multiple cores are available.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = num_threads().min(items.len()).max(1);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let per = items.len().div_ceil(threads);
    let parts: Vec<Vec<U>> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(per)
            .enumerate()
            .map(|(ci, chunk)| {
                let f = &f;
                s.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(ci * per + i, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

/// Splits `data` into consecutive chunks of `chunk_len` (the final chunk
/// may be shorter) and calls `f(chunk_index, chunk)` for each, distributing
/// whole chunks across threads. Chunk indices are global and chunks are
/// disjoint, so `f` may fill its chunk without synchronisation.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = num_threads().min(n_chunks).max(1);
    if threads == 1 {
        for (i, c) in data.chunks_mut(chunk_len).enumerate() {
            f(i, c);
        }
        return;
    }
    let chunks_per_thread = n_chunks.div_ceil(threads);
    thread::scope(|s| {
        let mut rest = data;
        let mut chunk_base = 0usize;
        while !rest.is_empty() {
            let take = (chunks_per_thread * chunk_len).min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let base = chunk_base;
            chunk_base += chunks_per_thread;
            let f = &f;
            s.spawn(move || {
                for (i, c) in head.chunks_mut(chunk_len).enumerate() {
                    f(base + i, c);
                }
            });
        }
    });
}

/// Splits the index range `0..n` into at most [`num_threads`] contiguous
/// spans — each span a whole number of `align`-sized chunks (the final
/// span takes the remainder) — and hands every span to its own worker
/// together with **worker-owned mutable state** built by `init` on the
/// worker's thread. Returns the states in span order (ascending indices),
/// so order-sensitive reductions can combine them deterministically.
///
/// This is the scope plumbing the parallel fold engines ride: each worker
/// owns its scenario binder, batch buffers and fold replica (no sharing,
/// no synchronisation), and the caller merges the returned partial
/// accumulators in ascending span order — making results independent of
/// the thread count. Degrades to a single inline `init` + `work` call
/// when one thread suffices, so single-core machines pay no thread cost.
///
/// # Panics
/// Panics if `align == 0`, or if a worker panics (the worker's panic is
/// resumed on the calling thread; see [`try_par_owned_spans`] for the
/// panic-isolating variant the budgeted sweep engines use).
pub fn par_owned_spans<S, I, W>(n: usize, align: usize, init: I, work: W) -> Vec<S>
where
    S: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, Range<usize>) + Sync,
{
    let abort = CancelToken::new();
    match try_par_owned_spans(n, align, &abort, init, work) {
        Ok(states) => states,
        Err(payload) => resume_unwind(payload),
    }
}

/// The payload of a worker panic caught by [`try_par_owned_spans`] — what
/// `std::panic::catch_unwind` returns, re-raisable via
/// `std::panic::resume_unwind`.
pub type WorkerPanic = Box<dyn Any + Send + 'static>;

/// Best-effort human-readable message of a caught worker panic (`&str`
/// and `String` payloads, which cover `panic!`/`assert!`/`expect`).
pub fn panic_message(payload: &WorkerPanic) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// [`par_owned_spans`] with **worker panic isolation**: every worker runs
/// its span under `catch_unwind`, and a panicking worker — instead of
/// unwinding through `thread::scope` and aborting the whole call — trips
/// `abort` so cooperative siblings (sweep workers poll their budget at
/// block granularity) stop early, then surfaces as `Err` with the first
/// panic's payload (in ascending span order, so the error is
/// deterministic when several workers fail). All workers are joined
/// before returning either way; no thread outlives the call.
///
/// The fault-injection harness ([`crate::faults`]) hooks every span start,
/// which is how the panic-isolation path stays permanently exercised.
///
/// `abort` is also honored on entry: a pre-tripped token still runs
/// `init` (returning one empty-progress state per span) but skips `work`,
/// mirroring what cooperative workers do when they observe cancellation
/// at their first block boundary.
///
/// # Panics
/// Panics if `align == 0`.
pub fn try_par_owned_spans<S, I, W>(
    n: usize,
    align: usize,
    abort: &CancelToken,
    init: I,
    work: W,
) -> Result<Vec<S>, WorkerPanic>
where
    S: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, Range<usize>) + Sync,
{
    assert!(align > 0, "span alignment must be positive");
    let chunks = n.div_ceil(align);
    let threads = num_threads().min(chunks).max(1);
    let run_span = |state: &mut S, range: Range<usize>| -> Result<(), WorkerPanic> {
        let result = catch_unwind(AssertUnwindSafe(|| {
            faults::point(faults::Site::SpanStart);
            work(state, range);
        }));
        if let Err(payload) = result {
            abort.cancel();
            return Err(payload);
        }
        Ok(())
    };
    if threads == 1 {
        let mut state = init();
        if n > 0 && !abort.is_cancelled() {
            run_span(&mut state, 0..n)?;
        }
        return Ok(vec![state]);
    }
    let span = chunks.div_ceil(threads) * align;
    let results: Vec<Result<S, WorkerPanic>> = thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .step_by(span)
            .map(|start| {
                let end = (start + span).min(n);
                let (init, run_span) = (&init, &run_span);
                s.spawn(move || {
                    let mut state = init();
                    if abort.is_cancelled() {
                        return Ok(state);
                    }
                    run_span(&mut state, start..end)?;
                    Ok(state)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                // run_span catches panics from `work`; a join error can
                // only come from `init` panicking on the worker thread.
                Err(payload) => {
                    abort.cancel();
                    Err(payload)
                }
            })
            .collect()
    });
    let mut states = Vec::with_capacity(results.len());
    for result in results {
        states.push(result?);
    }
    Ok(states)
}

/// Maps contiguous index spans to partial results and reduces the
/// partials **in ascending span order** — the deterministic fan-out shape
/// candidate scoring rides (e.g. the planner's exhaustive cut scorer):
/// each worker scans its own span of `0..n` and produces one partial
/// (a running best, a per-key table, …), and `reduce` combines them left
/// to right, so the result is independent of the thread count whenever
/// `reduce` is associative. Returns `None` for `n == 0`.
///
/// Built on [`par_owned_spans`]; degrades to one inline `map(0..n)` call
/// on a single thread.
pub fn par_map_reduce<T, M, R>(n: usize, align: usize, map: M, reduce: R) -> Option<T>
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    R: Fn(T, T) -> T,
{
    if n == 0 {
        return None;
    }
    let partials = par_owned_spans(
        n,
        align,
        || None,
        |slot: &mut Option<T>, range| *slot = Some(map(range)),
    );
    partials
        .into_iter()
        .flatten()
        .reduce(reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        assert!(par_map::<usize, usize, _>(&[], |_, &x| x).is_empty());
    }

    #[test]
    fn par_chunks_fill_disjoint() {
        let mut data = vec![0usize; 103];
        par_chunks_mut(&mut data, 8, |ci, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = ci * 8 + j;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = num_threads();
        let inner = with_threads(3, || {
            // nested override wins, then restores to the enclosing one
            assert_eq!(with_threads(7, num_threads), 7);
            num_threads()
        });
        assert_eq!(inner, 3);
        assert_eq!(num_threads(), outer);
        assert_eq!(with_threads(0, num_threads), 1); // clamped
    }

    #[test]
    fn owned_spans_cover_all_indices_in_order() {
        for threads in [1usize, 2, 5] {
            for (n, align) in [(0usize, 4usize), (3, 4), (64, 4), (103, 8), (7, 100)] {
                let spans = with_threads(threads, || {
                    par_owned_spans(
                        n,
                        align,
                        Vec::new,
                        |seen: &mut Vec<usize>, range| seen.extend(range),
                    )
                });
                // alignment: every span but the last starts and ends on a
                // chunk boundary, and concatenation reproduces 0..n
                let flat: Vec<usize> = spans.iter().flatten().copied().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} t={threads}");
                for s in &spans[..spans.len().saturating_sub(1)] {
                    assert_eq!(s.len() % align, 0, "n={n} t={threads}");
                }
                assert!(spans.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn map_reduce_is_thread_count_independent() {
        // argmax with a left-biased tie-break: only deterministic if the
        // partials merge in ascending span order
        let score = |i: usize| (i * 7919) % 1000;
        let expected = (0..5000).map(|i| (score(i), std::cmp::Reverse(i))).max();
        for threads in [1usize, 2, 3, 8] {
            let got = with_threads(threads, || {
                par_map_reduce(
                    5000,
                    64,
                    |range| range.map(|i| (score(i), std::cmp::Reverse(i))).max().unwrap(),
                    std::cmp::max,
                )
            });
            assert_eq!(got, expected, "threads {threads}");
        }
        assert_eq!(
            par_map_reduce(0, 4, |_| 0u32, |a, b| a + b),
            None
        );
        // sums reduce associatively regardless of span boundaries
        let total = with_threads(4, || {
            par_map_reduce(103, 8, |r| r.sum::<usize>(), |a, b| a + b)
        });
        assert_eq!(total, Some((0..103).sum()));
    }

    #[test]
    fn try_spans_catch_worker_panics() {
        for threads in [1usize, 2, 4] {
            let abort = CancelToken::new();
            let result = with_threads(threads, || {
                try_par_owned_spans(
                    1000,
                    1,
                    &abort,
                    || 0usize,
                    |done, range| {
                        for i in range {
                            assert!(i != 170, "injected");
                            *done += 1;
                        }
                    },
                )
            });
            let payload = result.expect_err("worker panic must surface as Err");
            assert!(panic_message(&payload).contains("injected"), "t={threads}");
            assert!(abort.is_cancelled(), "panic must trip the abort token");
        }
    }

    #[test]
    fn try_spans_pretripped_token_skips_work() {
        let abort = CancelToken::new();
        abort.cancel();
        let spans = with_threads(3, || {
            try_par_owned_spans(
                300,
                1,
                &abort,
                || 0usize,
                |done, range| *done += range.len(),
            )
        })
        .expect("no panic");
        assert!(spans.iter().all(|&d| d == 0), "work must be skipped");
    }

    #[test]
    fn try_spans_match_plain_spans_when_nothing_fails() {
        for threads in [1usize, 2, 5] {
            let abort = CancelToken::new();
            let sums = with_threads(threads, || {
                try_par_owned_spans(
                    103,
                    8,
                    &abort,
                    || 0usize,
                    |sum, range| *sum += range.sum::<usize>(),
                )
            })
            .expect("no panic");
            assert_eq!(sums.iter().sum::<usize>(), (0..103).sum::<usize>());
            assert!(!abort.is_cancelled());
        }
    }

    #[test]
    fn plain_spans_resume_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            with_threads(2, || {
                par_owned_spans(
                    100,
                    1,
                    || (),
                    |(), range| {
                        if range.contains(&99) {
                            panic!("legacy path still panics");
                        }
                    },
                )
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn chunk_sizes_cover_tail() {
        let mut data = vec![0u8; 10];
        par_chunks_mut(&mut data, 4, |_, chunk| {
            assert!(chunk.len() == 4 || chunk.len() == 2);
            chunk.fill(1);
        });
        assert!(data.iter().all(|&b| b == 1));
    }
}
