//! Structured data-parallel helpers over `std::thread::scope`.
//!
//! The batched evaluation engine splits scenario sweeps across cores. The
//! usual crate for this is `rayon`, but the build environment has no
//! crates.io access, so these helpers provide the two shapes the engine
//! needs — indexed map and chunked in-place fill — on scoped threads.
//! They degrade to straight serial loops when `available_parallelism` is 1
//! (or the input is tiny), so single-core containers pay no thread cost.

use std::thread;

/// Number of worker threads to use (`COBRA_THREADS` overrides the
/// detected parallelism, useful for benchmarking scaling curves).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("COBRA_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` (with the item index), preserving order.
/// Parallelises across contiguous chunks when multiple cores are available.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = num_threads().min(items.len()).max(1);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let per = items.len().div_ceil(threads);
    let parts: Vec<Vec<U>> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(per)
            .enumerate()
            .map(|(ci, chunk)| {
                let f = &f;
                s.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(ci * per + i, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    parts.into_iter().flatten().collect()
}

/// Splits `data` into consecutive chunks of `chunk_len` (the final chunk
/// may be shorter) and calls `f(chunk_index, chunk)` for each, distributing
/// whole chunks across threads. Chunk indices are global and chunks are
/// disjoint, so `f` may fill its chunk without synchronisation.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = num_threads().min(n_chunks).max(1);
    if threads == 1 {
        for (i, c) in data.chunks_mut(chunk_len).enumerate() {
            f(i, c);
        }
        return;
    }
    let chunks_per_thread = n_chunks.div_ceil(threads);
    thread::scope(|s| {
        let mut rest = data;
        let mut chunk_base = 0usize;
        while !rest.is_empty() {
            let take = (chunks_per_thread * chunk_len).min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let base = chunk_base;
            chunk_base += chunks_per_thread;
            let f = &f;
            s.spawn(move || {
                for (i, c) in head.chunks_mut(chunk_len).enumerate() {
                    f(base + i, c);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        assert!(par_map::<usize, usize, _>(&[], |_, &x| x).is_empty());
    }

    #[test]
    fn par_chunks_fill_disjoint() {
        let mut data = vec![0usize; 103];
        par_chunks_mut(&mut data, 8, |ci, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = ci * 8 + j;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_sizes_cover_tail() {
        let mut data = vec![0u8; 10];
        par_chunks_mut(&mut data, 4, |_, chunk| {
            assert!(chunk.len() == 4 || chunk.len() == 2);
            chunk.fill(1);
        });
        assert!(data.iter().all(|&b| b == 1));
    }
}
