//! Cooperative cancellation for long-running sweeps.
//!
//! A [`CancelToken`] is a cloneable flag shared between the thread that
//! requests cancellation (a server timeout handler, a UI "stop" button, a
//! sibling worker that hit a panic) and the workers that poll it at their
//! block boundaries. Cancellation is *cooperative*: tripping the token
//! never interrupts a computation mid-block — workers observe it at the
//! next block-granular budget check and stop with their partial state
//! intact, which is what makes deadline/cancel partial results exact (see
//! `cobra_core::budget`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe cancellation flag.
///
/// All clones share one flag: tripping any clone trips them all. The
/// token only ever transitions unset → set; there is no reset (create a
/// fresh token per request instead, so a stale cancellation can never
/// leak into the next sweep).
///
/// ```
/// use cobra_util::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has called [`cancel`](Self::cancel). A relaxed
    /// poll — cheap enough for per-block checks in hot sweep loops.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        a.cancel();
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn observable_across_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("cancel thread");
        assert!(token.is_cancelled());
    }
}
