//! Batch-kernel dispatch: CPU-feature detection and the `COBRA_KERNEL`
//! override shared by every evaluation engine.
//!
//! The compiled `f64` batch kernel exists in three explicit flavours —
//! portable scalar (the auto-vectorized lane loops), AVX2, and AVX2+FMA —
//! and the exact path has a scaled-`i128` fixed-point twin. Which flavour
//! runs is decided **once per public entry point, on the calling thread**,
//! by [`current`]:
//!
//! 1. a [`with_target`] scope installed on the calling thread (race-free
//!    under concurrent tests, exactly like
//!    [`par::with_threads`](crate::par::with_threads)), then
//! 2. the `COBRA_KERNEL` environment variable
//!    (`auto` | `scalar` | `avx2` | `avx2fma`), then
//! 3. [`KernelTarget::Auto`].
//!
//! A requested target the CPU cannot run **silently falls back to
//! scalar**, so forcing `COBRA_KERNEL=avx2` in CI is safe on any runner;
//! tests that want to *assert* AVX2 ran guard on [`avx2_available`].
//!
//! `Auto` never resolves to [`F64Kernel::Avx2Fma`]: fusing the last
//! multiply into the accumulate changes rounding, so the FMA kernel is
//! opt-in only. The scalar and AVX2 kernels perform the identical
//! per-lane multiply/add sequence and are bit-identical by construction.
//!
//! ```
//! use cobra_util::kernel::{self, KernelTarget};
//!
//! // Scoped override: only dispatch decisions made by this thread see it.
//! let k = kernel::with_target(KernelTarget::Scalar, kernel::current);
//! assert_eq!(k, kernel::F64Kernel::Scalar);
//! ```

use std::cell::Cell;
use std::str::FromStr;

/// A *requested* dispatch target (what `COBRA_KERNEL` or a
/// [`with_target`] scope asks for). Resolution against the running CPU
/// happens in [`KernelTarget::resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KernelTarget {
    /// Pick the fastest *bit-identical* kernel the CPU supports (AVX2
    /// when available, else scalar). Never selects FMA.
    #[default]
    Auto,
    /// Force the portable scalar kernel and the plain `Rat` exact path
    /// (disables the scaled-`i128` fixed-point kernel too).
    Scalar,
    /// Force the AVX2 mul+add kernel (bit-identical to scalar); falls
    /// back to scalar if the CPU lacks AVX2.
    Avx2,
    /// Force the AVX2+FMA kernel (fused accumulate — *not* bit-identical
    /// to scalar, but within the Higham shadow bound); falls back to
    /// scalar if the CPU lacks AVX2 or FMA.
    Avx2Fma,
}

impl KernelTarget {
    /// The canonical spelling accepted by `COBRA_KERNEL` and
    /// `cobra serve --kernel`.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelTarget::Auto => "auto",
            KernelTarget::Scalar => "scalar",
            KernelTarget::Avx2 => "avx2",
            KernelTarget::Avx2Fma => "avx2fma",
        }
    }

    /// Resolves this request against the running CPU: unsupported
    /// targets silently degrade to [`F64Kernel::Scalar`].
    pub fn resolve(self) -> F64Kernel {
        match self {
            KernelTarget::Scalar => F64Kernel::Scalar,
            KernelTarget::Auto | KernelTarget::Avx2 => {
                if avx2_available() {
                    F64Kernel::Avx2
                } else {
                    F64Kernel::Scalar
                }
            }
            KernelTarget::Avx2Fma => {
                if avx2_available() && fma_available() {
                    F64Kernel::Avx2Fma
                } else {
                    F64Kernel::Scalar
                }
            }
        }
    }

    /// Whether the exact path may use the scaled-`i128` fixed-point
    /// kernel under this target. `Scalar` pins the exact path to plain
    /// `Rat` arithmetic, giving tests a way to force (and diff against)
    /// the reference implementation.
    pub fn exact_fixed(self) -> bool {
        !matches!(self, KernelTarget::Scalar)
    }
}

impl std::fmt::Display for KernelTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for KernelTarget {
    type Err = UnknownKernelTarget;

    fn from_str(s: &str) -> Result<KernelTarget, UnknownKernelTarget> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(KernelTarget::Auto),
            "scalar" => Ok(KernelTarget::Scalar),
            "avx2" => Ok(KernelTarget::Avx2),
            "avx2fma" | "avx2+fma" | "fma" => Ok(KernelTarget::Avx2Fma),
            _ => Err(UnknownKernelTarget(s.to_owned())),
        }
    }
}

/// Parse error for [`KernelTarget`]: the unrecognized input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownKernelTarget(pub String);

impl std::fmt::Display for UnknownKernelTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown kernel target {:?} (expected auto|scalar|avx2|avx2fma)",
            self.0
        )
    }
}

impl std::error::Error for UnknownKernelTarget {}

/// A *resolved* `f64` kernel — what actually runs after
/// [`KernelTarget::resolve`] checked the CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum F64Kernel {
    /// Portable lane loops (LLVM auto-vectorized).
    Scalar,
    /// Explicit AVX2 mul+add — bit-identical to `Scalar`.
    Avx2,
    /// Explicit AVX2 with the final multiply fused into the accumulate.
    Avx2Fma,
}

impl F64Kernel {
    /// Human-readable name (reported by session/server stats).
    pub fn as_str(self) -> &'static str {
        match self {
            F64Kernel::Scalar => "scalar",
            F64Kernel::Avx2 => "avx2",
            F64Kernel::Avx2Fma => "avx2fma",
        }
    }
}

impl std::fmt::Display for F64Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Does the running CPU support AVX2?
#[cfg(target_arch = "x86_64")]
pub fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Does the running CPU support AVX2? (Not an x86-64 build: no.)
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_available() -> bool {
    false
}

/// Does the running CPU support FMA?
#[cfg(target_arch = "x86_64")]
pub fn fma_available() -> bool {
    std::arch::is_x86_feature_detected!("fma")
}

/// Does the running CPU support FMA? (Not an x86-64 build: no.)
#[cfg(not(target_arch = "x86_64"))]
pub fn fma_available() -> bool {
    false
}

thread_local! {
    /// Scoped target override installed by [`with_target`].
    static TARGET_OVERRIDE: Cell<Option<KernelTarget>> = const { Cell::new(None) };
}

/// The requested dispatch target. Resolution order: a [`with_target`]
/// scope on the calling thread, then `COBRA_KERNEL` (unparseable values
/// are ignored), then [`KernelTarget::Auto`].
pub fn target() -> KernelTarget {
    if let Some(t) = TARGET_OVERRIDE.with(Cell::get) {
        return t;
    }
    if let Ok(v) = std::env::var("COBRA_KERNEL") {
        if let Ok(t) = v.parse() {
            return t;
        }
    }
    KernelTarget::Auto
}

/// Runs `f` with [`target`] pinned to `t` **on the calling thread**
/// (nested scopes restore the previous value on exit, including on
/// panic). Unlike setting `COBRA_KERNEL`, this is race-free under
/// concurrent tests: every engine resolves its kernel on the thread that
/// entered it, before fanning work out to workers.
pub fn with_target<R>(t: KernelTarget, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<KernelTarget>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TARGET_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(TARGET_OVERRIDE.with(|c| c.replace(Some(t))));
    f()
}

/// The resolved `f64` kernel for the calling thread:
/// [`target`]`().`[`resolve`](KernelTarget::resolve)`()`.
pub fn current() -> F64Kernel {
    target().resolve()
}

/// Whether the exact path may use the scaled-`i128` fixed-point kernel
/// on the calling thread: [`target`]`().`
/// [`exact_fixed`](KernelTarget::exact_fixed)`()`.
pub fn exact_fixed_enabled() -> bool {
    target().exact_fixed()
}

/// `x`ⁿ by least-significant-bit-first binary exponentiation — the **one**
/// integer-power routine every `f64` evaluation path shares (the generic
/// scalar walk, the lane kernels, and the AVX2 kernels apply the same
/// square-and-multiply chain per lane), which is what makes exponentiated
/// programs bit-identical across kernels by construction.
#[inline]
pub fn pow_f64(x: f64, e: u32) -> f64 {
    match e {
        0 => 1.0,
        1 => x,
        _ => {
            let mut base = x;
            let mut e = e;
            let mut acc = 1.0f64;
            loop {
                if e & 1 == 1 {
                    acc *= base;
                }
                e >>= 1;
                if e == 0 {
                    break;
                }
                base *= base;
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_rejects() {
        for t in [
            KernelTarget::Auto,
            KernelTarget::Scalar,
            KernelTarget::Avx2,
            KernelTarget::Avx2Fma,
        ] {
            assert_eq!(t.as_str().parse::<KernelTarget>().unwrap(), t);
        }
        assert_eq!("AVX2".parse::<KernelTarget>().unwrap(), KernelTarget::Avx2);
        assert!("neon".parse::<KernelTarget>().is_err());
    }

    #[test]
    fn with_target_scopes_and_restores() {
        let outer = target();
        let seen = with_target(KernelTarget::Scalar, || {
            assert_eq!(current(), F64Kernel::Scalar);
            assert!(!exact_fixed_enabled());
            with_target(KernelTarget::Auto, target)
        });
        assert_eq!(seen, KernelTarget::Auto);
        assert_eq!(target(), outer);
    }

    #[test]
    fn unsupported_targets_fall_back_to_scalar() {
        // Forcing AVX2 on a non-AVX2 machine must degrade silently.
        if !avx2_available() {
            assert_eq!(KernelTarget::Avx2.resolve(), F64Kernel::Scalar);
        }
        if !(avx2_available() && fma_available()) {
            assert_eq!(KernelTarget::Avx2Fma.resolve(), F64Kernel::Scalar);
        }
        // Auto never picks the rounding-changing FMA kernel.
        assert_ne!(KernelTarget::Auto.resolve(), F64Kernel::Avx2Fma);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for e in 0u32..12 {
            for x in [0.0, 1.0, -1.5, 0.37, 2.0, -3.25] {
                let mut expect = 1.0f64;
                // Same LSB-first chain as pow_f64, written longhand.
                let (mut b, mut k) = (x, e);
                while k > 0 {
                    if k & 1 == 1 {
                        expect *= b;
                    }
                    k >>= 1;
                    if k > 0 {
                        b *= b;
                    }
                }
                assert_eq!(pow_f64(x, e).to_bits(), expect.to_bits(), "x={x} e={e}");
            }
        }
    }
}
