//! Length-prefixed frame I/O for the sweep server's wire protocol.
//!
//! A frame is a little-endian `u32` payload length followed by exactly that
//! many payload bytes (JSON text, in the server's case). The helpers here
//! are transport-agnostic: anything `Read`/`Write` works, which keeps the
//! protocol testable against in-memory buffers.

use std::io::{self, Read, Write};

/// Default ceiling on accepted frame sizes (16 MiB): a defense against
/// corrupt or hostile length headers, not a protocol limit.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Writes one `u32`-length-prefixed frame and flushes the writer.
///
/// ```
/// let mut buf = Vec::new();
/// cobra_util::framed::write_frame(&mut buf, b"hello").unwrap();
/// assert_eq!(&buf[..4], &5u32.to_le_bytes());
/// assert_eq!(&buf[4..], b"hello");
/// ```
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, returning `Ok(None)` on a clean end-of-stream (EOF
/// before any header byte). EOF in the middle of a frame, or a header
/// larger than `max_len`, is an error.
///
/// ```
/// let mut buf = Vec::new();
/// cobra_util::framed::write_frame(&mut buf, b"abc").unwrap();
/// let mut cursor = &buf[..];
/// let frame = cobra_util::framed::read_frame(&mut cursor, 1 << 20).unwrap();
/// assert_eq!(frame.as_deref(), Some(&b"abc"[..]));
/// assert!(cobra_util::framed::read_frame(&mut cursor, 1 << 20).unwrap().is_none());
/// ```
pub fn read_frame<R: Read>(r: &mut R, max_len: usize) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap of {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 1000]).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"first"
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b""
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            vec![0xAB; 1000]
        );
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn truncated_header_and_payload_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // header cut short
        let mut cut = &buf[..2];
        assert_eq!(
            read_frame(&mut cut, DEFAULT_MAX_FRAME).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // payload cut short
        let mut cut = &buf[..6];
        assert_eq!(
            read_frame(&mut cut, DEFAULT_MAX_FRAME).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor, 10).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
