//! Read-only memory-mapped file access without external dependencies.
//!
//! [`MmapFile`] maps a file with a hand-declared `mmap(2)` binding on
//! 64-bit unix (std already links libc, so no new dependency is needed) and
//! falls back to reading the file into a 16-byte-aligned buffer anywhere
//! else — or when the mapping itself fails. Either way [`MmapFile::bytes`]
//! yields a 16-byte-aligned view, which is what the persistence layer's
//! zero-copy slice casts require.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::ptr::NonNull;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A file's contents, either memory-mapped (page faults stand in for I/O)
/// or read into an aligned buffer on platforms without the mapping path.
///
/// The view is immutable; mappings are private and read-only.
pub struct MmapFile {
    data: Backing,
}

enum Backing {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped {
        ptr: NonNull<u8>,
        len: usize,
    },
    Owned(AlignedBytes),
}

// Safety: the mapping is PROT_READ/MAP_PRIVATE and never mutated; shared
// byte reads from any thread are fine, and unmapping from another thread
// is fine too.
unsafe impl Send for MmapFile {}
unsafe impl Sync for MmapFile {}

/// A heap buffer whose bytes start on a 16-byte boundary (`Vec<u128>`
/// backing), matching the alignment guarantee of the mapped path. The
/// persistence layer uses it to give in-memory artifact images the same
/// zero-copy-castable alignment a mapped file has.
pub struct AlignedBytes {
    buf: Vec<u128>,
    len: usize,
}

impl AlignedBytes {
    /// A zero-filled buffer of `len` bytes.
    pub fn with_len(len: usize) -> AlignedBytes {
        AlignedBytes {
            buf: vec![0u128; len.div_ceil(16)],
            len,
        }
    }

    /// An aligned copy of `src`.
    pub fn copy_from(src: &[u8]) -> AlignedBytes {
        let mut a = AlignedBytes::with_len(src.len());
        a.bytes_mut().copy_from_slice(src);
        a
    }

    /// The buffer contents (16-byte aligned).
    pub fn bytes(&self) -> &[u8] {
        // Safety: the Vec<u128> allocation covers at least `len` bytes and
        // any byte pattern is a valid u8.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const u8, self.len) }
    }

    /// Mutable view of the buffer contents.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        // Safety: as above, with unique access.
        unsafe { std::slice::from_raw_parts_mut(self.buf.as_mut_ptr() as *mut u8, self.len) }
    }
}

impl std::fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBytes").field("len", &self.len).finish()
    }
}

impl MmapFile {
    /// Opens `path` read-only and maps (or loads) its full contents.
    pub fn open(path: &Path) -> io::Result<MmapFile> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;

        #[cfg(all(unix, target_pointer_width = "64"))]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            // Safety: fd is a valid open file, addr is a NULL hint, and the
            // result is checked against MAP_FAILED before use.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 {
                if let Some(ptr) = NonNull::new(ptr as *mut u8) {
                    return Ok(MmapFile {
                        data: Backing::Mapped { ptr, len },
                    });
                }
            }
            // Mapping failed (exotic filesystem, resource limits): fall
            // through to the portable read path.
        }

        let mut buf = AlignedBytes::with_len(len);
        file.read_exact(buf.bytes_mut())?;
        Ok(MmapFile {
            data: Backing::Owned(buf),
        })
    }

    /// The file contents. The returned slice is 16-byte aligned.
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { ptr, len } => {
                // Safety: the mapping stays valid until Drop.
                unsafe { std::slice::from_raw_parts(ptr.as_ptr(), *len) }
            }
            Backing::Owned(buf) => buf.bytes(),
        }
    }

    /// Number of bytes in the file.
    pub fn len(&self) -> usize {
        match &self.data {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { len, .. } => *len,
            Backing::Owned(buf) => buf.len,
        }
    }

    /// True iff the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff the contents are an actual `mmap(2)` mapping rather than a
    /// buffered copy — useful for reporting which path a load took.
    pub fn is_mapped(&self) -> bool {
        match &self.data {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Backing::Mapped { ptr, len } = &self.data {
            // Safety: exactly the region returned by mmap in `open`.
            unsafe {
                sys::munmap(ptr.as_ptr() as *mut std::os::raw::c_void, *len);
            }
        }
    }
}

impl std::fmt::Debug for MmapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapFile")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "cobra-mmap-test-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ))
    }

    #[test]
    fn round_trips_file_contents() {
        let path = temp_path("round");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = MmapFile::open(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        assert_eq!(map.bytes().as_ptr().align_offset(16), 0, "16-byte aligned");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let map = MmapFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(MmapFile::open(Path::new("/nonexistent/cobra-mmap")).is_err());
    }
}
