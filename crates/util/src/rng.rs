//! SplitMix64 — a tiny, fast, deterministic RNG.
//!
//! The workload generators must produce identical databases for a given seed
//! across toolchains and releases (the experiment tables in EXPERIMENTS.md
//! cite exact monomial counts), so we fix the algorithm here rather than
//! depending on an external crate whose streams may change between versions.

/// SplitMix64 state (Steele, Lea & Flood, OOPSLA'14). Passes BigCrush when
/// used as a 64-bit generator; more than adequate for workload synthesis.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds ⇒ equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction
    /// (with rejection to remove modulo bias).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform value in the inclusive integer range `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.gen_range(span) as i64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_index(items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Derives an independent child generator (for parallel substreams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 1234567 from the SplitMix64 reference
        // implementation (pinned so future refactors can't silently change
        // generated workloads).
        let mut r = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(got, vec![6457827717110365317, 3203168211198807973, 9817491932198370423]);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.gen_range(13);
            assert!(v < 13);
            let w = r.gen_range_inclusive(-5, 5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SplitMix64::new(99);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_index(10)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_diverge() {
        let mut base = SplitMix64::new(5);
        let mut c1 = base.fork();
        let mut c2 = base.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
