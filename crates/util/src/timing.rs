//! Wall-clock measurement helpers for the assignment-speedup experiments.
//!
//! The paper reports "assignment speedup" — the relative reduction in the
//! time to apply a valuation to the compressed vs. the full provenance.
//! These helpers centralize the measurement discipline: warm-up, repeated
//! runs, and best-of/median aggregation to damp scheduler noise.

use std::time::{Duration, Instant};

/// A simple running stopwatch.
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in fractional milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

/// Times a single run of `f`, returning `(result, duration)`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

/// Runs `f` `warmup + runs` times and returns the minimum duration over the
/// measured runs together with the last result.
///
/// Minimum (not mean) is the conventional low-noise estimator for CPU-bound
/// microbenchmarks; criterion is used for the statistically rigorous version
/// in `cobra-bench`.
pub fn time_best_of<T>(warmup: usize, runs: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(runs > 0, "need at least one measured run");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..runs {
        let sw = Stopwatch::start();
        let r = std::hint::black_box(f());
        let d = sw.elapsed();
        if d < best {
            best = d;
        }
        out = Some(r);
    }
    (out.expect("runs > 0"), best)
}

/// Computes the paper-style speedup percentage of `fast` relative to `slow`:
/// `(slow − fast) / slow × 100`. A value of 79 means "79% faster" in the
/// paper's phrasing (time reduced by 79%).
pub fn speedup_percent(slow: Duration, fast: Duration) -> f64 {
    if slow.is_zero() {
        return 0.0;
    }
    (slow.as_secs_f64() - fast.as_secs_f64()) / slow.as_secs_f64() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_result() {
        let (v, d) = time_once(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn best_of_runs_all_iterations() {
        let mut count = 0;
        let (_, d) = time_best_of(2, 3, || {
            count += 1;
        });
        assert_eq!(count, 5);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn speedup_formula() {
        let slow = Duration::from_millis(100);
        let fast = Duration::from_millis(21);
        let s = speedup_percent(slow, fast);
        assert!((s - 79.0).abs() < 1e-9);
        assert_eq!(speedup_percent(Duration::ZERO, fast), 0.0);
    }
}
