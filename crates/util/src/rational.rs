//! Exact rational arithmetic.
//!
//! Provenance coefficients in the paper are products and sums of small
//! decimals (call durations × per-minute prices), e.g. `522 × 0.4 = 208.8`.
//! Reproducing the paper's tables exactly requires exact arithmetic, so the
//! whole pipeline runs on [`Rat`], a reduced `i128` fraction. Conversion to
//! `f64` is provided for the timing-oriented valuation benchmarks where
//! exactness is irrelevant and speed matters.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den`, always kept in canonical form:
/// `den > 0` and `gcd(|num|, den) == 1` (and `0` is `0/1`).
///
/// Addition is exact for every representable result: when the `i128`
/// intermediates of the reducing slow path would overflow, the sum is
/// computed in 256-bit arithmetic and reduced by its gcd (the `wide`
/// module), so
/// results whose canonical form fits `i128` are always produced. Arithmetic
/// panics (instead of silently wrapping) only when the exact *reduced*
/// value itself does not fit; [`Rat::checked_add`] reports that case as
/// `None`. The workloads in this repository stay far below these limits
/// (denominators are products of price denominators, ≤ 10⁴).
///
/// The layout is `#[repr(C)]` — two `i128`s — so persisted coefficient
/// arrays can be reloaded as zero-copy slices by the persistence layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct Rat {
    num: i128,
    den: i128, // invariant: den > 0, gcd(|num|, den) == 1
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

/// True iff every value fits in `i64`, so products of two of them (and
/// sums of two such products) cannot overflow `i128` — the guard for the
/// small-integer fast paths that skip gcd normalization.
#[inline]
fn all_fit_i64(values: [i128; 4]) -> bool {
    values
        .iter()
        .all(|&v| i64::try_from(v).is_ok())
}

impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num / den` in canonical form.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "Rat denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates an integer rational.
    pub const fn int(n: i64) -> Rat {
        Rat {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator of the canonical form (sign-carrying).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator of the canonical form (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// True iff the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// True iff the value is one.
    pub fn is_one(self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// True iff the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "division by zero Rat");
        Rat::new(self.den, self.num)
    }

    /// Nearest `f64` approximation.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Parses a decimal literal such as `"0.35"`, `"-12"`, `"208.80"` into
    /// the exact rational it denotes. Also accepts `a/b` fraction syntax.
    pub fn parse(s: &str) -> Result<Rat, ParseRatError> {
        s.parse()
    }

    /// Exact checked addition: `None` iff the canonical form of the exact
    /// sum — after full gcd reduction — does not fit `i128`.
    ///
    /// Where [`Add`] panics on such unrepresentable sums,
    /// this reports them; representable sums are identical on both paths.
    pub fn checked_add(self, rhs: Rat) -> Option<Rat> {
        // Small-integer fast paths (the hot shape in batched exact sweeps):
        // both paths produce the canonical form without running gcd on the
        // result, guarded so the skipped-reduction arithmetic stays within
        // i128. Integer + integer is trivially reduced; for coprime
        // denominators `a/b + c/d = (a·d + c·b)/(b·d)` is already in lowest
        // terms (any common factor of the numerator and `b·d` would divide
        // one of the coprime pairs).
        if self.den == 1 && rhs.den == 1 {
            return match self.num.checked_add(rhs.num) {
                Some(num) => Some(Rat { num, den: 1 }),
                None => wide::add_exact(self, rhs),
            };
        }
        if all_fit_i64([self.num, self.den, rhs.num, rhs.den]) {
            let g = gcd(self.den, rhs.den);
            if g == 1 {
                return Some(Rat {
                    num: self.num * rhs.den + rhs.num * self.den,
                    den: self.den * rhs.den,
                });
            }
        }
        // Reduce cross terms first to delay overflow (a/b + c/d with
        // g = gcd(b, d)); if the i128 intermediates still overflow, fall
        // back to the exact 256-bit reducing path instead of wrapping.
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)
            .zip(rhs.num.checked_mul(rhs_scale))
            .and_then(|(a, b)| a.checked_add(b));
        let den = self.den.checked_mul(lhs_scale);
        match (num, den) {
            (Some(n), Some(d)) => Some(Rat::new(n, d)),
            _ => wide::add_exact(self, rhs),
        }
    }

    /// Raises to a non-negative integer power by repeated squaring.
    pub fn pow(self, mut exp: u32) -> Rat {
        let mut base = self;
        let mut acc = Rat::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            exp >>= 1;
            if exp > 0 {
                base *= base;
            }
        }
        acc
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Self {
        Rat::int(n)
    }
}

impl From<i32> for Rat {
    fn from(n: i32) -> Self {
        Rat::int(n as i64)
    }
}

impl From<u32> for Rat {
    fn from(n: u32) -> Self {
        Rat::int(n as i64)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        match self.checked_add(rhs) {
            Some(sum) => sum,
            None => panic!("Rat overflow: {self:?} + {rhs:?} is not representable in i128"),
        }
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Integer × integer stays canonical with no reduction at all.
        if self.den == 1 && rhs.den == 1 {
            return Rat {
                num: self.num * rhs.num,
                den: 1,
            };
        }
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let g1 = if g1 == 0 { 1 } else { g1 };
        let g2 = if g2 == 0 { 1 } else { g2 };
        Rat {
            num: (self.num / g1) * (rhs.num / g2),
            den: (self.den / g2) * (rhs.den / g1),
        }
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division *is* multiply-by-reciprocal
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |a, b| a + b)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b vs c/d  (b, d > 0)  ⇔  a·d vs c·b; boundary-sized components
        // overflow the i128 cross products, so those compare in 256-bit.
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            _ => wide::cmp_cross(self.num, other.den, other.num, self.den),
        }
    }
}

/// Overflow-proof 256-bit helpers for the rare additions and comparisons
/// whose i128 cross terms wrap: with both components of both operands near
/// `2^63`, `a·d + c·b` reaches `2·2^126` and exceeds `i128::MAX` even
/// though the *reduced* exact result often fits. Everything here is
/// sign-magnitude over a `(hi, lo)` pair of `u128` limbs; it only runs on
/// the cold path after a `checked_*` failure.
mod wide {
    use super::{gcd, Rat};
    use std::cmp::Ordering;

    /// Unsigned 256-bit integer: `hi · 2^128 + lo`. Field order matters:
    /// the derived `Ord` compares `hi` first.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct U256 {
        hi: u128,
        lo: u128,
    }

    impl U256 {
        const ZERO: U256 = U256 { hi: 0, lo: 0 };

        fn is_zero(self) -> bool {
            self.hi == 0 && self.lo == 0
        }

        /// Full 128×128 → 256 bit widening multiply via 64-bit limbs.
        fn mul_u128(a: u128, b: u128) -> U256 {
            const MASK: u128 = (1 << 64) - 1;
            let (a1, a0) = (a >> 64, a & MASK);
            let (b1, b0) = (b >> 64, b & MASK);
            let ll = a0 * b0;
            let (mid, mid_carry) = (a0 * b1).overflowing_add(a1 * b0);
            let (lo, lo_carry) = ll.overflowing_add(mid << 64);
            let hi = a1 * b1 + (mid >> 64) + ((mid_carry as u128) << 64) + lo_carry as u128;
            U256 { hi, lo }
        }

        /// Addition; the magnitudes this module produces stay below
        /// `2^255`, so the carry out of `hi` cannot occur.
        fn add(self, o: U256) -> U256 {
            let (lo, carry) = self.lo.overflowing_add(o.lo);
            U256 {
                hi: self.hi + o.hi + carry as u128,
                lo,
            }
        }

        /// Subtraction, requiring `self >= o`.
        fn sub(self, o: U256) -> U256 {
            let (lo, borrow) = self.lo.overflowing_sub(o.lo);
            U256 {
                hi: self.hi - o.hi - borrow as u128,
                lo,
            }
        }

        fn trailing_zeros(self) -> u32 {
            if self.lo != 0 {
                self.lo.trailing_zeros()
            } else {
                128 + self.hi.trailing_zeros()
            }
        }

        fn leading_zeros(self) -> u32 {
            if self.hi != 0 {
                self.hi.leading_zeros()
            } else {
                128 + self.lo.leading_zeros()
            }
        }

        /// Right shift by `n < 256` bits.
        fn shr(self, n: u32) -> U256 {
            match n {
                0 => self,
                1..=127 => U256 {
                    hi: self.hi >> n,
                    lo: (self.lo >> n) | (self.hi << (128 - n)),
                },
                128 => U256 { hi: 0, lo: self.hi },
                _ => U256 {
                    hi: 0,
                    lo: self.hi >> (n - 128),
                },
            }
        }

        /// Left shift by `n < 256` bits (used only where no bits shift out).
        fn shl(self, n: u32) -> U256 {
            match n {
                0 => self,
                1..=127 => U256 {
                    hi: (self.hi << n) | (self.lo >> (128 - n)),
                    lo: self.lo << n,
                },
                128 => U256 { hi: self.lo, lo: 0 },
                _ => U256 {
                    hi: self.lo << (n - 128),
                    lo: 0,
                },
            }
        }

        /// Shift-subtract division; only reached with non-zero divisors.
        fn div(self, d: U256) -> U256 {
            debug_assert!(!d.is_zero());
            if self < d {
                return U256::ZERO;
            }
            let shift = d.leading_zeros() - self.leading_zeros();
            let mut divisor = d.shl(shift);
            let mut rem = self;
            let mut quot = U256::ZERO;
            for _ in 0..=shift {
                quot = quot.shl(1);
                if rem >= divisor {
                    rem = rem.sub(divisor);
                    quot.lo |= 1;
                }
                divisor = divisor.shr(1);
            }
            quot
        }

        fn to_u128(self) -> Option<u128> {
            if self.hi == 0 {
                Some(self.lo)
            } else {
                None
            }
        }
    }

    /// Binary gcd of two non-zero 256-bit values.
    fn gcd_u256(mut a: U256, mut b: U256) -> U256 {
        debug_assert!(!a.is_zero() && !b.is_zero());
        let shift = a.trailing_zeros().min(b.trailing_zeros());
        a = a.shr(a.trailing_zeros());
        loop {
            b = b.shr(b.trailing_zeros());
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(a);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Signed 256-bit value in sign-magnitude form (`neg` ignored at zero).
    #[derive(Clone, Copy)]
    struct I256 {
        neg: bool,
        mag: U256,
    }

    impl I256 {
        fn mul_i128(a: i128, b: i128) -> I256 {
            I256 {
                neg: (a < 0) != (b < 0),
                mag: U256::mul_u128(a.unsigned_abs(), b.unsigned_abs()),
            }
        }

        fn add(self, o: I256) -> I256 {
            if self.neg == o.neg {
                I256 {
                    neg: self.neg,
                    mag: self.mag.add(o.mag),
                }
            } else if self.mag >= o.mag {
                I256 {
                    neg: self.neg,
                    mag: self.mag.sub(o.mag),
                }
            } else {
                I256 {
                    neg: o.neg,
                    mag: o.mag.sub(self.mag),
                }
            }
        }
    }

    fn mag_to_i128(mag: U256, neg: bool) -> Option<i128> {
        let mag = mag.to_u128()?;
        if neg {
            if mag == i128::MIN.unsigned_abs() {
                Some(i128::MIN)
            } else {
                i128::try_from(mag).ok().map(|v| -v)
            }
        } else {
            i128::try_from(mag).ok()
        }
    }

    /// Exact `a + b` with 256-bit cross terms and full gcd reduction;
    /// `None` iff the reduced result does not fit `i128`.
    pub(super) fn add_exact(a: Rat, b: Rat) -> Option<Rat> {
        let g = gcd(a.den, b.den);
        let lhs_scale = b.den / g;
        let rhs_scale = a.den / g;
        let num = I256::mul_i128(a.num, lhs_scale).add(I256::mul_i128(b.num, rhs_scale));
        if num.mag.is_zero() {
            return Some(Rat::ZERO);
        }
        let den = U256::mul_u128(a.den.unsigned_abs(), lhs_scale.unsigned_abs());
        let reduce = gcd_u256(num.mag, den);
        let num_mag = num.mag.div(reduce);
        let den_mag = den.div(reduce);
        Some(Rat {
            num: mag_to_i128(num_mag, num.neg)?,
            den: mag_to_i128(den_mag, false)?,
        })
    }

    /// `sign(a·d) cmp sign(c·b)` with 256-bit products (`d, b > 0`).
    pub(super) fn cmp_cross(a: i128, d: i128, c: i128, b: i128) -> Ordering {
        let lhs = I256::mul_i128(a, d);
        let rhs = I256::mul_i128(c, b);
        match (lhs.mag.is_zero() || !lhs.neg, rhs.mag.is_zero() || !rhs.neg) {
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (true, true) => lhs.mag.cmp(&rhs.mag),
            (false, false) => rhs.mag.cmp(&lhs.mag),
        }
    }
}

/// Error returned when parsing a decimal or fraction literal fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatError {
    input: String,
}

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {:?}", self.input)
    }
}

impl std::error::Error for ParseRatError {}

impl FromStr for Rat {
    type Err = ParseRatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRatError {
            input: s.to_owned(),
        };
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let n: i128 = n.trim().parse().map_err(|_| err())?;
            let d: i128 = d.trim().parse().map_err(|_| err())?;
            if d == 0 {
                return Err(err());
            }
            return Ok(Rat::new(n, d));
        }
        let (sign, body) = match s.strip_prefix('-') {
            Some(rest) => (-1i128, rest),
            None => (1i128, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() {
            return Err(err());
        }
        let (int_part, frac_part) = match body.split_once('.') {
            Some((i, f)) => (i, f),
            None => (body, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(err());
        }
        let digits_ok = |d: &str| d.chars().all(|c| c.is_ascii_digit());
        if !digits_ok(int_part) || !digits_ok(frac_part) {
            return Err(err());
        }
        let int_val: i128 = if int_part.is_empty() {
            0
        } else {
            int_part.parse().map_err(|_| err())?
        };
        if frac_part.len() > 30 {
            return Err(err());
        }
        let mut den: i128 = 1;
        let mut frac_val: i128 = 0;
        for c in frac_part.chars() {
            den = den.checked_mul(10).ok_or_else(err)?;
            frac_val = frac_val
                .checked_mul(10)
                .and_then(|v| v.checked_add((c as u8 - b'0') as i128))
                .ok_or_else(err)?;
        }
        Ok(Rat::new(sign * (int_val * den + frac_val), den))
    }
}

impl fmt::Display for Rat {
    /// Renders as a terminating decimal when the denominator is of the form
    /// `2^a·5^b` (always the case for price/duration data), otherwise as
    /// `num/den`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            return write!(f, "{}", self.num);
        }
        // Check for a terminating decimal expansion.
        let mut d = self.den;
        let mut pow2 = 0u32;
        let mut pow5 = 0u32;
        while d % 2 == 0 {
            d /= 2;
            pow2 += 1;
        }
        while d % 5 == 0 {
            d /= 5;
            pow5 += 1;
        }
        if d != 1 || pow2.max(pow5) > 30 {
            return write!(f, "{}/{}", self.num, self.den);
        }
        let digits = pow2.max(pow5);
        // Scale numerator so the denominator becomes 10^digits.
        let scale = 2i128.pow(digits - pow2) * 5i128.pow(digits - pow5);
        let scaled = self.num * scale;
        let (sign, scaled) = if scaled < 0 { ("-", -scaled) } else { ("", scaled) };
        let ten = 10i128.pow(digits);
        let int_part = scaled / ten;
        let frac = scaled % ten;
        let frac_str = format!("{:0width$}", frac, width = digits as usize);
        let frac_str = frac_str.trim_end_matches('0');
        if frac_str.is_empty() {
            write!(f, "{}{}", sign, int_part)
        } else {
            write!(f, "{}{}.{}", sign, int_part, frac_str)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({})", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, 4), Rat::new(1, -2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
        assert_eq!(Rat::new(0, -7).denom(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
        assert_eq!(a.pow(3), Rat::new(1, 8));
        assert_eq!(a.pow(0), Rat::ONE);
    }

    #[test]
    fn paper_coefficients_exact() {
        // Example 2 of the paper: 522 × 0.4 = 208.8, 364 × 0.35 = 127.4, …
        let dur = Rat::int(522);
        let ppm = Rat::parse("0.4").unwrap();
        assert_eq!(dur * ppm, Rat::parse("208.8").unwrap());
        assert_eq!(
            Rat::int(364) * Rat::parse("0.35").unwrap(),
            Rat::parse("127.4").unwrap()
        );
        assert_eq!(
            Rat::int(671) * Rat::parse("0.15").unwrap(),
            Rat::parse("100.65").unwrap()
        );
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "0.5", "-0.25", "208.8", "100.65", "42"] {
            let r = Rat::parse(s).unwrap();
            assert_eq!(r.to_string(), s.trim_start_matches('+'));
        }
        assert_eq!(Rat::parse("3/4").unwrap(), Rat::new(3, 4));
        assert_eq!(Rat::parse("-6/8").unwrap(), Rat::new(-3, 4));
        assert_eq!(Rat::new(1, 3).to_string(), "1/3");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", ".", "1.2.3", "a", "1/0", "--2", "1e5"] {
            assert!(Rat::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn ordering() {
        let mut v = vec![
            Rat::new(1, 2),
            Rat::new(-1, 2),
            Rat::ZERO,
            Rat::int(3),
            Rat::new(1, 3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Rat::new(-1, 2),
                Rat::ZERO,
                Rat::new(1, 3),
                Rat::new(1, 2),
                Rat::int(3)
            ]
        );
    }

    #[test]
    fn sum_iterator() {
        let total: Rat = (1..=4).map(|i| Rat::new(1, i)).sum();
        assert_eq!(total, Rat::new(25, 12));
    }

    #[test]
    fn to_f64() {
        assert_eq!(Rat::new(1, 2).to_f64(), 0.5);
        assert_eq!(Rat::parse("208.8").unwrap().to_f64(), 208.8);
    }

    /// The always-normalizing reference implementations the fast paths
    /// must match: cross-reduce, combine, then re-canonicalize via
    /// `Rat::new` (the pre-fast-path code).
    fn add_slow(a: Rat, b: Rat) -> Rat {
        let g = gcd(a.den, b.den);
        let lhs_scale = b.den / g;
        let rhs_scale = a.den / g;
        Rat::new(a.num * lhs_scale + b.num * rhs_scale, a.den * lhs_scale)
    }

    fn mul_slow(a: Rat, b: Rat) -> Rat {
        if a.num == 0 || b.num == 0 {
            return Rat::ZERO;
        }
        Rat::new(a.num * b.num, a.den * b.den)
    }

    fn canonical(r: Rat) -> bool {
        if r.num == 0 {
            return r.den == 1;
        }
        r.den > 0 && gcd(r.num, r.den) == 1
    }

    fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }

    /// Independent exact reference for addition of operands small enough
    /// (components near `2^63`, as every strategy below generates) that the
    /// gcd-reduced cross products fit `u128`: plain u128 sign-magnitude
    /// arithmetic then suffices — no shared code with the impl's 256-bit
    /// path. Panics if an operand exceeds the precondition (never, for the
    /// generators); `None` means the exact reduced sum is unrepresentable
    /// in `i128`.
    fn add_ref_small_components(a: Rat, b: Rat) -> Option<Rat> {
        let g = gcd(a.den, b.den);
        let lhs_scale = (b.den / g) as u128;
        let rhs_scale = (a.den / g) as u128;
        let pre = "reference precondition: cross products fit u128";
        let m1 = a.num.unsigned_abs().checked_mul(lhs_scale).expect(pre);
        let m2 = b.num.unsigned_abs().checked_mul(rhs_scale).expect(pre);
        let (neg, mag) = match (a.num < 0, b.num < 0) {
            (n1, n2) if n1 == n2 => (n1, m1.checked_add(m2).expect(pre)),
            (n1, _) if m1 >= m2 => (n1, m1 - m2),
            (_, n2) => (n2, m2 - m1),
        };
        if mag == 0 {
            return Some(Rat::ZERO);
        }
        let den_mag = (a.den as u128).checked_mul(lhs_scale).expect(pre);
        let reduce = gcd_u128(mag, den_mag);
        let num = i128::try_from(mag / reduce).ok()?;
        let den = i128::try_from(den_mag / reduce).ok()?;
        Some(Rat {
            num: if neg { -num } else { num },
            den,
        })
    }

    mod fast_path_props {
        use super::*;
        use proptest::prelude::*;

        fn rat_strategy() -> impl Strategy<Value = Rat> {
            // Mix of integers (the gcd-free hot shape), decimal-like
            // denominators (2^a·5^b, the telephony coefficients), and
            // arbitrary fractions — all within the i64 fast-path guard
            // and beyond it.
            prop_oneof![
                3 => (-1_000_000i64..1_000_000).prop_map(Rat::int),
                3 => ((-10_000_000i64..10_000_000), (0u32..5, 0u32..5)).prop_map(
                    |(n, (p2, p5))| Rat::new(n as i128, 2i128.pow(p2) * 5i128.pow(p5))
                ),
                2 => ((-100_000i64..100_000), (1i64..100_000)).prop_map(
                    |(n, d)| Rat::new(n as i128, d as i128)
                ),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            #[test]
            fn add_fast_path_matches_slow_path(
                a in rat_strategy(),
                b in rat_strategy(),
            ) {
                let fast = a + b;
                let slow = add_slow(a, b);
                prop_assert_eq!(fast, slow);
                prop_assert_eq!(fast.num, slow.num, "canonical numerator");
                prop_assert_eq!(fast.den, slow.den, "canonical denominator");
                prop_assert!(canonical(fast), "gcd-skipped result must stay reduced");
            }

            #[test]
            fn mul_fast_path_matches_slow_path(
                a in rat_strategy(),
                b in rat_strategy(),
            ) {
                let fast = a * b;
                let slow = mul_slow(a, b);
                prop_assert_eq!(fast.num, slow.num);
                prop_assert_eq!(fast.den, slow.den);
                prop_assert!(canonical(fast));
            }

            #[test]
            fn guard_boundary_fast_and_slow_paths_agree(
                a in boundary_rat(),
                b in prop_oneof![boundary_rat(), rat_strategy()],
            ) {
                // Addition / subtraction against the independent exact
                // reference. Representable sums must come out exact and
                // canonical through whichever path (fast, checked-i128,
                // 256-bit wide) the operands select; unrepresentable sums
                // must be *detected* (checked_add → None), never wrapped.
                for (x, y) in [(a, b), (a, -b)] {
                    match add_ref_small_components(x, y) {
                        Some(want) => {
                            let got = x + y;
                            prop_assert_eq!(got, want);
                            prop_assert_eq!(got.num, want.num, "canonical numerator");
                            prop_assert_eq!(got.den, want.den, "canonical denominator");
                            prop_assert!(canonical(got));
                            prop_assert_eq!(x.checked_add(y), Some(want));
                        }
                        None => prop_assert_eq!(x.checked_add(y), None),
                    }
                }
                // Comparisons share the widening cross products.
                if let Some(diff) = add_ref_small_components(a, -b) {
                    prop_assert_eq!(a.cmp(&b), diff.num.cmp(&0));
                }
                let prod = a * b;
                let slow = mul_slow(a, b);
                prop_assert_eq!(prod.num, slow.num);
                prop_assert_eq!(prod.den, slow.den);
                prop_assert!(canonical(prod));
            }
        }

        /// Components hugging the `±i64` guard from **both** sides: the
        /// largest magnitudes the gcd-skipping fast path accepts and the
        /// smallest it must route to the normalizing slow path. Any
        /// off-by-one in [`all_fit_i64`] — accepting `i64::MAX + 1`, or
        /// mishandling `i64::MIN`'s asymmetric magnitude — shows up here
        /// as a non-canonical or unequal result.
        fn guard_adjacent() -> impl Strategy<Value = i128> {
            let anchors = prop_oneof![
                Just(i64::MAX as i128),
                Just(i64::MIN as i128),
                Just(-(i64::MAX as i128)),
            ];
            (anchors, -4i64..5).prop_map(|(a, d)| a + d as i128)
        }

        /// Boundary-sized components in either or **both** positions.
        /// With both components near `2^63` the cross terms of addition
        /// reach `2·2^126` and overflow `i128` on the checked slow path;
        /// those pairs route through the 256-bit reducing path, which
        /// either produces the exact canonical sum or reports it
        /// unrepresentable — so they are generated, not excluded.
        fn boundary_rat() -> impl Strategy<Value = Rat> {
            prop_oneof![
                (guard_adjacent(), 1i128..9).prop_map(|(n, d)| Rat::new(n, d)),
                (-8i128..9, guard_adjacent().prop_map(|v| v.abs().max(2)))
                    .prop_map(|(n, d)| Rat::new(n, d)),
                (guard_adjacent(), guard_adjacent().prop_map(|v| v.abs().max(2)))
                    .prop_map(|(n, d)| Rat::new(n, d)),
            ]
        }
    }

    /// Both components of both operands near `2^63`: the i128 cross terms
    /// of the slow path overflow, but the exact reduced sum fits — the
    /// 256-bit wide path must produce it rather than wrapping or panicking.
    #[test]
    fn both_components_huge_addition_takes_wide_path() {
        let p = (1i128 << 63) + 13; // odd
        let q = (1i128 << 63) + 15; // odd, coprime with p (both odd, differ by 2)
        let a = Rat::new((1i128 << 63) + 3, 2 * p);
        let b = Rat::new((1i128 << 63) + 9, 2 * q);
        // Cross terms ≈ 2·2^126 overflow i128; the shared factor 2 in the
        // denominators guarantees the reduced sum fits.
        let sum = a + b;
        let want = add_ref_small_components(a, b).expect("sum is representable");
        assert_eq!(sum, want);
        assert!(canonical(sum));
        // Round-trip back out of the huge-denominator sum (cross terms
        // ≈ 2^190 — deep into the wide path again).
        assert_eq!(sum - b, a);
        assert_eq!(sum - a, b);
        // Ordering across the widening comparison path.
        assert!(a < sum);
        assert!(b < sum);
        assert_eq!(a.cmp(&b), (a - b).numer().cmp(&0));
    }

    /// When even the gcd-reduced exact sum cannot fit `i128`, the checked
    /// API reports `None` — the old behavior was a silent wrap in release
    /// builds.
    #[test]
    fn unrepresentable_sum_detected_not_wrapped() {
        let a = Rat::new((1i128 << 63) + 3, (1i128 << 63) + 9);
        let b = Rat::new((1i128 << 63) + 5, (1i128 << 63) + 29);
        assert_eq!(a.checked_add(b), add_ref_small_components(a, b));
        assert_eq!(a.checked_add(b), None);
        // The same magnitudes with opposite signs cancel to a representable
        // (tiny) difference, served exactly.
        let diff = a - b;
        assert!(canonical(diff));
        assert_eq!(diff + b, a);
    }

    /// Components beyond the i64 guard must fall through to the reducing
    /// slow path and still produce canonical results.
    #[test]
    fn oversized_components_take_slow_path() {
        let huge = Rat::new(1i128 << 70, 3); // numerator exceeds i64
        let small = Rat::new(1, 6);
        let sum = huge + small;
        assert_eq!(sum, Rat::new((1i128 << 71) + 1, 6));
        assert!(canonical(sum));
        let prod = huge * small;
        assert_eq!(prod, Rat::new(1i128 << 70, 18));
        // and the integer fast path handles i128-scale integers unchanged
        let big_int = Rat::int(i64::MAX) + Rat::int(i64::MAX);
        assert_eq!(big_int.num, i64::MAX as i128 * 2);
        assert_eq!(big_int.den, 1);
    }
}
