//! Registry-scoped dense id remapping.
//!
//! The interner hands out dense `u32` ids, so a *global → local* variable
//! remap does not need a hash map: a flat table indexed by the global id is
//! one bounds-checked load per lookup and is trivially shareable between
//! compiled programs (the full and compressed sides of a COBRA session
//! resolve scenario overrides through the same kind of table). The table
//! grows to the largest global id it has seen, which for an interner-backed
//! registry is exactly the registry size — "registry-scoped".

/// Sentinel marking an unmapped global id.
const UNMAPPED: u32 = u32::MAX;

/// A dense `global id → local index` remap table.
///
/// Locals are assigned in first-insertion order, densely from zero —
/// the same numbering a hash-map based `entry(..).or_insert(len)` loop
/// produces, but lookups are a single indexed load and building performs
/// no hashing at all.
#[derive(Clone, Debug, Default)]
pub struct DenseRemap {
    table: Vec<u32>,
    mapped: u32,
}

impl DenseRemap {
    /// An empty remap.
    pub fn new() -> DenseRemap {
        DenseRemap::default()
    }

    /// An empty remap with table capacity for globals `0..scope` (the
    /// registry size). Ids beyond the scope still work — the table grows.
    pub fn with_scope(scope: usize) -> DenseRemap {
        DenseRemap {
            table: vec![UNMAPPED; scope],
            mapped: 0,
        }
    }

    /// The local index of `global`, inserting the next free local if the
    /// id is unmapped. Returns `(local, freshly_inserted)`.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX − 1` locals are inserted.
    pub fn get_or_insert(&mut self, global: u32) -> (u32, bool) {
        let idx = global as usize;
        if idx >= self.table.len() {
            self.table.resize(idx + 1, UNMAPPED);
        }
        if self.table[idx] != UNMAPPED {
            return (self.table[idx], false);
        }
        let local = self.mapped;
        assert!(local != UNMAPPED, "DenseRemap overflow");
        self.table[idx] = local;
        self.mapped += 1;
        (local, true)
    }

    /// The local index of `global`, if mapped. Ids outside the table are
    /// simply unmapped — callers may probe with any registry id.
    #[inline]
    pub fn get(&self, global: u32) -> Option<u32> {
        match self.table.get(global as usize) {
            Some(&local) if local != UNMAPPED => Some(local),
            _ => None,
        }
    }

    /// Number of mapped globals (= number of locals handed out).
    pub fn len(&self) -> usize {
        self.mapped as usize
    }

    /// True iff nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.mapped == 0
    }

    /// The scope of the table (largest global id probed without growth).
    pub fn scope(&self) -> usize {
        self.table.len()
    }
}

impl FromIterator<u32> for DenseRemap {
    /// Builds a remap from globals in local-index order (duplicates keep
    /// their first position).
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> DenseRemap {
        let mut remap = DenseRemap::new();
        for global in iter {
            remap.get_or_insert(global);
        }
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_is_local_order() {
        let mut r = DenseRemap::new();
        assert_eq!(r.get_or_insert(7), (0, true));
        assert_eq!(r.get_or_insert(3), (1, true));
        assert_eq!(r.get_or_insert(7), (0, false));
        assert_eq!(r.get(7), Some(0));
        assert_eq!(r.get(3), Some(1));
        assert_eq!(r.get(0), None);
        assert_eq!(r.get(1_000_000), None); // beyond the table: unmapped
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn scoped_table_preallocates() {
        let mut r = DenseRemap::with_scope(100);
        assert_eq!(r.scope(), 100);
        assert!(r.is_empty());
        r.get_or_insert(99);
        assert_eq!(r.scope(), 100);
        assert_eq!(r.get(99), Some(0));
    }

    #[test]
    fn from_iterator_keeps_first_occurrence() {
        let r: DenseRemap = [5u32, 2, 5, 9].into_iter().collect();
        assert_eq!(r.get(5), Some(0));
        assert_eq!(r.get(2), Some(1));
        assert_eq!(r.get(9), Some(2));
        assert_eq!(r.len(), 3);
    }
}
