//! String interning for provenance variable names.
//!
//! Provenance polynomials mention the same variable names millions of times;
//! interning maps each name to a dense `u32` [`Symbol`] so monomials store
//! and compare 4-byte ids instead of strings.

use crate::hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// An interned string id. Ordering follows interning order, which the rest
/// of the system treats as the canonical variable order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// An append-only string interner.
///
/// Strings are stored once (as `Arc<str>` so lookups can hand out cheap
/// clones) and mapped to dense [`Symbol`]s.
#[derive(Default, Clone)]
pub struct Interner {
    by_name: FxHashMap<Arc<str>, Symbol>,
    names: Vec<Arc<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(name);
        let sym = Symbol(u32::try_from(self.names.len()).expect("interner overflow"));
        self.names.push(arc.clone());
        self.by_name.insert(arc, sym);
        sym
    }

    /// Looks up a symbol by name without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Resolves a symbol to a shared `Arc<str>`.
    pub fn resolve_arc(&self, sym: Symbol) -> Arc<str> {
        self.names[sym.index()].clone()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_ref()))
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.names.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("p1");
        let b = i.intern("m1");
        let a2 = i.intern("p1");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        for name in ["p1", "f1", "y1", "v", "b1", "b2", "e"] {
            let s = i.intern(name);
            assert_eq!(i.resolve(s), name);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        i.intern("x");
        assert!(i.get("x").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = (0..10).map(|k| i.intern(&format!("v{k}"))).collect();
        for (k, s) in syms.iter().enumerate() {
            assert_eq!(s.index(), k);
        }
        assert!(syms.windows(2).all(|w| w[0] < w[1]));
    }
}
