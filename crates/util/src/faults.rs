//! Fault-injection test hooks for the parallel sweep stack.
//!
//! The robustness layer promises that a panicking worker never aborts the
//! process and that interrupted sweeps return exact partial results.
//! Promises like these rot unless something exercises them, so the
//! parallel engines call [`point`] at their structural boundaries (span
//! start, block boundary) and this module decides whether to inject a
//! fault there:
//!
//! * **Disarmed** (the default): [`point`] is two relaxed atomic loads and
//!   a return — effectively free at block granularity, so production
//!   sweeps pay nothing.
//! * **Scoped** ([`with_faults`]): a test arms an explicit [`FaultPlan`]
//!   (panic at the k-th span, panic at the k-th block, fixed delays) for
//!   the duration of one closure. Scopes are serialized process-wide, so
//!   concurrent tests cannot see each other's faults, and the plan is
//!   global rather than thread-local because the faults must fire on
//!   *worker* threads that never ran the arming code.
//! * **Environment** (`COBRA_FAULTS=1`): a standing low-grade
//!   perturbation mode for CI — every span start sleeps briefly and
//!   yields, skewing worker interleavings so order-sensitive merge bugs
//!   surface. No panics are injected from the environment; panic
//!   injection is always an explicit test decision.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Where a fault-injection [`point`] sits in the parallel engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Site {
    /// A worker is about to start processing its contiguous span
    /// (including the inline single-thread "span").
    SpanStart,
    /// A sweep loop is about to process its next streamed block.
    Block,
}

/// What a [`with_faults`] scope injects. Counters are global across all
/// threads and reset when the scope is entered, so "panic at span 1"
/// means the second span *any* worker starts.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Panic when the span counter reaches this value (0-based).
    pub panic_at_span: Option<usize>,
    /// Panic when the block counter reaches this value (0-based).
    pub panic_at_block: Option<usize>,
    /// Sleep this long at every span start.
    pub span_delay: Option<Duration>,
    /// Sleep this long at every block boundary.
    pub block_delay: Option<Duration>,
}

impl FaultPlan {
    /// A plan that panics at the `k`-th span start.
    pub fn panic_on_span(k: usize) -> FaultPlan {
        FaultPlan {
            panic_at_span: Some(k),
            ..FaultPlan::default()
        }
    }

    /// A plan that panics at the `k`-th block boundary.
    pub fn panic_on_block(k: usize) -> FaultPlan {
        FaultPlan {
            panic_at_block: Some(k),
            ..FaultPlan::default()
        }
    }

    /// A plan that delays every span start by `d` (no panics) — skews
    /// worker interleavings without changing any result.
    pub fn delay_spans(d: Duration) -> FaultPlan {
        FaultPlan {
            span_delay: Some(d),
            ..FaultPlan::default()
        }
    }
}

/// The panic message every injected panic carries, so tests can tell an
/// injected fault from a genuine bug when asserting on surfaced errors.
pub const INJECTED_PANIC: &str = "cobra_util::faults injected panic";

static SCOPE_ARMED: AtomicBool = AtomicBool::new(false);
static SPAN_COUNTER: AtomicUsize = AtomicUsize::new(0);
static BLOCK_COUNTER: AtomicUsize = AtomicUsize::new(0);
static PLAN: Mutex<FaultPlan> = Mutex::new(FaultPlan {
    panic_at_span: None,
    panic_at_block: None,
    span_delay: None,
    block_delay: None,
});
/// Serializes [`with_faults`] scopes process-wide. Separate from `PLAN`
/// so the scope lock is held across the user closure while `PLAN` is
/// only locked for snapshots.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A fault scope's closure is *expected* to panic (that is the point),
    // so poisoning carries no information here.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// True when `COBRA_FAULTS` is set to something other than `0`/empty —
/// the standing CI perturbation mode. Read once per process.
pub fn env_armed() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("COBRA_FAULTS").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// True when any injection mode (scope or environment) is active.
pub fn armed() -> bool {
    SCOPE_ARMED.load(Ordering::Relaxed) || env_armed()
}

/// Arms `plan` for the duration of `f`, then disarms — even when `f`
/// panics (injected panics that escape the engines' isolation propagate
/// through here). Scopes are serialized process-wide so concurrent tests
/// never observe each other's plans.
///
/// ```
/// use cobra_util::faults::{self, FaultPlan};
/// use std::panic::{catch_unwind, AssertUnwindSafe};
///
/// let caught = faults::with_faults(FaultPlan::panic_on_span(0), || {
///     catch_unwind(AssertUnwindSafe(|| {
///         faults::point(faults::Site::SpanStart);
///     }))
/// });
/// assert!(caught.is_err()); // the injected panic fired
/// assert!(!faults::armed() || faults::env_armed()); // and disarmed again
/// ```
pub fn with_faults<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            SCOPE_ARMED.store(false, Ordering::Relaxed);
            *lock(&PLAN) = FaultPlan::default();
        }
    }
    let _scope = lock(&SCOPE_LOCK);
    *lock(&PLAN) = plan;
    SPAN_COUNTER.store(0, Ordering::Relaxed);
    BLOCK_COUNTER.store(0, Ordering::Relaxed);
    SCOPE_ARMED.store(true, Ordering::Relaxed);
    let _disarm = Disarm;
    f()
}

/// A fault-injection site. No-op (two relaxed loads) when disarmed; when
/// a [`with_faults`] plan is armed this may sleep or panic according to
/// the plan, and under `COBRA_FAULTS=1` span starts sleep briefly to
/// perturb worker interleavings.
#[inline]
pub fn point(site: Site) {
    if !SCOPE_ARMED.load(Ordering::Relaxed) {
        if env_armed() {
            env_perturb(site);
        }
        return;
    }
    scoped_point(site);
}

#[cold]
fn env_perturb(site: Site) {
    match site {
        Site::SpanStart => {
            // Long enough to reorder span completions, short enough that
            // a full test suite stays fast (spans are O(threads) per
            // sweep, not O(scenarios)).
            std::thread::sleep(Duration::from_micros(100));
        }
        Site::Block => {
            // Blocks are frequent: a bare yield every few blocks skews
            // scheduling without measurable slowdown.
            if BLOCK_COUNTER
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(16)
            {
                std::thread::yield_now();
            }
        }
    }
}

#[cold]
fn scoped_point(site: Site) {
    let plan = *lock(&PLAN);
    match site {
        Site::SpanStart => {
            let idx = SPAN_COUNTER.fetch_add(1, Ordering::Relaxed);
            if let Some(d) = plan.span_delay {
                std::thread::sleep(d);
            }
            if plan.panic_at_span == Some(idx) {
                panic!("{INJECTED_PANIC} (span {idx})");
            }
        }
        Site::Block => {
            let idx = BLOCK_COUNTER.fetch_add(1, Ordering::Relaxed);
            if let Some(d) = plan.block_delay {
                std::thread::sleep(d);
            }
            if plan.panic_at_block == Some(idx) {
                panic!("{INJECTED_PANIC} (block {idx})");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn disarmed_points_are_noops() {
        // must not panic or sleep noticeably
        for _ in 0..10_000 {
            point(Site::Block);
            point(Site::SpanStart);
        }
    }

    #[test]
    fn panic_fires_at_the_requested_span() {
        let result = with_faults(FaultPlan::panic_on_span(1), || {
            point(Site::SpanStart); // span 0: survives
            catch_unwind(AssertUnwindSafe(|| point(Site::SpanStart)))
        });
        let payload = result.expect_err("span 1 must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains(INJECTED_PANIC), "{msg}");
        // disarmed again: the same point is now a no-op
        point(Site::SpanStart);
    }

    #[test]
    fn block_panics_and_delays_compose() {
        let result = with_faults(
            FaultPlan {
                panic_at_block: Some(0),
                block_delay: Some(Duration::from_millis(1)),
                ..FaultPlan::default()
            },
            || catch_unwind(AssertUnwindSafe(|| point(Site::Block))),
        );
        assert!(result.is_err());
    }

    #[test]
    fn counters_reset_per_scope() {
        for _ in 0..2 {
            let result = with_faults(FaultPlan::panic_on_span(0), || {
                catch_unwind(AssertUnwindSafe(|| point(Site::SpanStart)))
            });
            assert!(result.is_err(), "span counter must restart at 0");
        }
    }

    #[test]
    fn delay_only_plans_do_not_panic() {
        with_faults(FaultPlan::delay_spans(Duration::from_micros(50)), || {
            for _ in 0..3 {
                point(Site::SpanStart);
                point(Site::Block);
            }
        });
    }
}
