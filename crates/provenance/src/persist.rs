//! Versioned, checksummed, zero-copy persistence for compiled artifacts.
//!
//! A persisted artifact is a single flat file:
//!
//! ```text
//! offset 0   magic    "COBR"            (u32, little-endian bytes)
//! offset 4   version  1                 (u32)
//! offset 8   checksum lane-FNV-1a-64    (u64, over every byte from offset 16; see [`fnv1a64`])
//! offset 16  section count              (u32, then 12 pad bytes)
//! offset 32  section table              (count × { tag u32, pad u32, offset u64, len u64 })
//! ...        sections                   (each starting on a 16-byte boundary)
//! ```
//!
//! Inside a section, scalars are little-endian and typed slices are padded
//! to their element alignment, so a reader whose backing buffer is 16-byte
//! aligned (a [`MmapFile`] mapping, or an [`AlignedBytes`](cobra_util::AlignedBytes) image) can cast
//! slice regions **in place** — loading an [`EvalProgram`] re-allocates no
//! CSR array, only the small label/local tables. That is what makes server
//! cold-start O(page faults) instead of O(recompile).
//!
//! # Example: round-trip a compiled program
//!
//! ```
//! use cobra_provenance::{persist, EvalProgram, VarRegistry};
//! use cobra_util::{AlignedBytes, Rat};
//!
//! let mut reg = VarRegistry::new();
//! let set = cobra_provenance::parse_polyset("P = 2*x*y + 3*z", &mut reg).unwrap();
//! let prog = EvalProgram::compile(&set);
//!
//! // Encode into an artifact image.
//! let mut writer = persist::ArtifactWriter::new();
//! persist::write_program(&mut writer, persist::tags::PROGRAM_RAT, &prog);
//! let bytes = writer.finish();
//!
//! // Decode: parse validates magic, version and checksum; the view borrows.
//! let image = AlignedBytes::copy_from(&bytes);
//! let reader = persist::ArtifactReader::parse(image.bytes()).unwrap();
//! let view: persist::EvalProgramRef<'_, Rat> =
//!     persist::read_program_ref(&reader, persist::tags::PROGRAM_RAT).unwrap();
//! assert_eq!(view.labels, ["P"]);
//! let reloaded = view.to_owned_program();
//! assert_eq!(reloaded.num_terms(), prog.num_terms());
//! ```
//!
//! Corruption anywhere in the table or payload fails [`ArtifactReader::parse`]:
//!
//! ```
//! use cobra_provenance::persist::{ArtifactReader, ArtifactWriter, PersistError};
//! let mut w = ArtifactWriter::new();
//! w.begin_section(7);
//! w.put_u64(42);
//! let mut bytes = w.finish();
//! let last = bytes.len() - 1;
//! bytes[last] ^= 0xFF;
//! let image = cobra_util::AlignedBytes::copy_from(&bytes);
//! assert!(matches!(
//!     ArtifactReader::parse(image.bytes()),
//!     Err(PersistError::ChecksumMismatch { .. })
//! ));
//! ```

use crate::compile::EvalProgram;
use crate::poly::Coeff;
use crate::var::Var;
use cobra_util::{ArcSlice, MmapFile, Rat};
use std::any::Any;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// File magic: the bytes `COBR` at offset 0.
pub const MAGIC: [u8; 4] = *b"COBR";
/// Current format version, the one writers emit. Version 2 added the
/// shared-subterm slot count to program sections ([`write_program`]) and
/// the DAG-engine flag to session sections; readers still accept
/// [`MIN_VERSION`] artifacts (absent fields default to zero).
pub const VERSION: u32 = 2;
/// Oldest artifact version readers accept.
pub const MIN_VERSION: u32 = 1;

const HEADER_LEN: usize = 16;
const TABLE_START: usize = 32;
const TABLE_ENTRY_LEN: usize = 24;

/// Conventional section tags used by the session store. Tags are
/// caller-chosen `u32`s; these just keep writers and readers agreeing.
pub mod tags {
    /// The exact (`Rat`) full-provenance program.
    pub const PROGRAM_RAT: u32 = 1;
    /// The `f64` shadow of the full program.
    pub const PROGRAM_F64: u32 = 2;
    /// Session metadata (registry, trees, base valuation, frontier).
    pub const SESSION: u32 = 3;
    /// Warm compressed-engine sections: selection `i` uses `WARM_BASE + i`.
    pub const WARM_BASE: u32 = 0x100;
}

/// The artifact checksum: a lane-parallel FNV-1a-64 variant — small,
/// dependency-free, and stable, which is all a corruption guard needs.
///
/// Eight independent FNV-1a accumulators each fold one little-endian
/// `u64` word of every 64-byte block, then the lanes, the tail bytes and
/// the length fold into a single digest. Plain byte-at-a-time FNV-1a is
/// one serial multiply per byte and caps artifact loads well below
/// memory bandwidth; the eight multiply chains here are independent, so
/// verifying a mapped artifact costs milliseconds instead of tens.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lanes = [OFFSET; 8];
    let mut blocks = bytes.chunks_exact(64);
    for block in &mut blocks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(word.try_into().unwrap());
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    for lane in lanes {
        h ^= lane;
        h = h.wrapping_mul(PRIME);
    }
    for &b in blocks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    // The length distinguishes tails that are prefixes of each other.
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

/// Errors raised while parsing or decoding a persisted artifact.
#[derive(Debug)]
pub enum PersistError {
    /// The file does not start with the `COBR` magic.
    BadMagic,
    /// The file's format version is outside [`MIN_VERSION`]..=[`VERSION`].
    BadVersion(u32),
    /// The stored checksum does not match the contents.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// A requested section tag is absent.
    MissingSection(u32),
    /// The artifact ended inside a structure.
    Truncated(&'static str),
    /// A zero-copy slice region is not aligned for its element type
    /// (the backing buffer must be 16-byte aligned).
    Misaligned(&'static str),
    /// A decoded value violates an invariant (bad UTF-8 label, zero
    /// denominator, coefficient type mismatch, …).
    Invalid(String),
    /// The underlying file could not be read.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a COBR artifact (bad magic)"),
            PersistError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported artifact version {v} (expected {MIN_VERSION}..={VERSION})"
                )
            }
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            PersistError::MissingSection(tag) => write!(f, "artifact has no section {tag:#x}"),
            PersistError::Truncated(what) => write!(f, "artifact truncated in {what}"),
            PersistError::Misaligned(what) => write!(f, "misaligned slice region for {what}"),
            PersistError::Invalid(msg) => write!(f, "invalid artifact contents: {msg}"),
            PersistError::Io(e) => write!(f, "artifact I/O error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn pad_to(buf: &mut Vec<u8>, align: usize) {
    while !buf.len().is_multiple_of(align) {
        buf.push(0);
    }
}

fn as_bytes<T: Copy>(s: &[T]) -> &[u8] {
    // Safety: reading any initialized T as bytes is sound; lifetime is tied
    // to the input slice.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, std::mem::size_of_val(s)) }
}

/// Incrementally builds an artifact: open sections with
/// [`begin_section`](Self::begin_section), append primitives, then
/// [`finish`](Self::finish) to assemble the header, table, padding and
/// checksum.
#[derive(Default)]
pub struct ArtifactWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl ArtifactWriter {
    /// An empty writer.
    pub fn new() -> ArtifactWriter {
        ArtifactWriter::default()
    }

    /// Starts a new section with the given tag; subsequent `put_*` calls
    /// append to it.
    pub fn begin_section(&mut self, tag: u32) {
        self.sections.push((tag, Vec::new()));
    }

    fn buf(&mut self) -> &mut Vec<u8> {
        &mut self
            .sections
            .last_mut()
            .expect("ArtifactWriter: put_* before begin_section")
            .1
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i128`.
    pub fn put_i128(&mut self, v: i128) {
        self.buf().extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string, padded to 4 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string too long"));
        let buf = self.buf();
        buf.extend_from_slice(s.as_bytes());
        pad_to(buf, 4);
    }

    /// Appends a length-prefixed `u32` slice (element-aligned).
    pub fn put_u32_slice(&mut self, s: &[u32]) {
        self.put_u64(s.len() as u64);
        let buf = self.buf();
        pad_to(buf, 4);
        buf.extend_from_slice(as_bytes(s));
    }

    /// Appends a length-prefixed `f64` slice (element-aligned).
    pub fn put_f64_slice(&mut self, s: &[f64]) {
        self.put_u64(s.len() as u64);
        let buf = self.buf();
        pad_to(buf, 8);
        buf.extend_from_slice(as_bytes(s));
    }

    /// Appends a length-prefixed [`Rat`] slice (element-aligned: 16 bytes).
    pub fn put_rat_slice(&mut self, s: &[Rat]) {
        self.put_u64(s.len() as u64);
        let buf = self.buf();
        pad_to(buf, 16);
        buf.extend_from_slice(as_bytes(s));
    }

    /// Assembles the final artifact image: header, section table, 16-byte
    /// aligned section payloads, and the checksum over everything past the
    /// header.
    pub fn finish(self) -> Vec<u8> {
        let count = self.sections.len();
        let mut out = vec![0u8; HEADER_LEN];
        out.extend_from_slice(&(count as u32).to_le_bytes());
        out.resize(TABLE_START, 0);
        let table_pos = out.len();
        out.resize(table_pos + count * TABLE_ENTRY_LEN, 0);
        let mut entries = Vec::with_capacity(count);
        for (tag, payload) in &self.sections {
            pad_to(&mut out, 16);
            entries.push((*tag, out.len() as u64, payload.len() as u64));
            out.extend_from_slice(payload);
        }
        for (i, (tag, offset, len)) in entries.iter().enumerate() {
            let at = table_pos + i * TABLE_ENTRY_LEN;
            out[at..at + 4].copy_from_slice(&tag.to_le_bytes());
            out[at + 8..at + 16].copy_from_slice(&offset.to_le_bytes());
            out[at + 16..at + 24].copy_from_slice(&len.to_le_bytes());
        }
        let checksum = fnv1a64(&out[HEADER_LEN..]);
        out[0..4].copy_from_slice(&MAGIC);
        out[4..8].copy_from_slice(&VERSION.to_le_bytes());
        out[8..16].copy_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// A parsed artifact: header validated (magic, version, checksum) and the
/// section table decoded. Borrows the backing bytes.
pub struct ArtifactReader<'a> {
    bytes: &'a [u8],
    version: u32,
    sections: Vec<(u32, usize, usize)>,
}

impl<'a> ArtifactReader<'a> {
    /// Parses and validates an artifact image.
    ///
    /// For the zero-copy slice getters to succeed, `bytes` must start on a
    /// 16-byte boundary — guaranteed by [`MmapFile`] and [`AlignedBytes`](cobra_util::AlignedBytes).
    pub fn parse(bytes: &'a [u8]) -> Result<ArtifactReader<'a>, PersistError> {
        if bytes.len() < TABLE_START {
            return Err(PersistError::Truncated("header"));
        }
        if bytes[0..4] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(PersistError::BadVersion(version));
        }
        let stored = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let computed = fnv1a64(&bytes[HEADER_LEN..]);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch { stored, computed });
        }
        let count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let table_end = TABLE_START + count * TABLE_ENTRY_LEN;
        if bytes.len() < table_end {
            return Err(PersistError::Truncated("section table"));
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let at = TABLE_START + i * TABLE_ENTRY_LEN;
            let tag = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap());
            let offset = usize::try_from(offset)
                .map_err(|_| PersistError::Truncated("section offset"))?;
            let len =
                usize::try_from(len).map_err(|_| PersistError::Truncated("section length"))?;
            let end = offset
                .checked_add(len)
                .ok_or(PersistError::Truncated("section bounds"))?;
            if end > bytes.len() {
                return Err(PersistError::Truncated("section payload"));
            }
            sections.push((tag, offset, len));
        }
        Ok(ArtifactReader {
            bytes,
            version,
            sections,
        })
    }

    /// The artifact's format version ([`MIN_VERSION`]..=[`VERSION`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Tags present, in file order.
    pub fn section_tags(&self) -> impl Iterator<Item = u32> + '_ {
        self.sections.iter().map(|&(tag, _, _)| tag)
    }

    /// Opens the first section with the given tag.
    pub fn section(&self, tag: u32) -> Result<SectionReader<'a>, PersistError> {
        let &(_, offset, len) = self
            .sections
            .iter()
            .find(|&&(t, _, _)| t == tag)
            .ok_or(PersistError::MissingSection(tag))?;
        Ok(SectionReader {
            bytes: &self.bytes[offset..offset + len],
            pos: 0,
        })
    }
}

/// Sequential reader over one section's payload, mirroring the
/// [`ArtifactWriter`] primitives (including their padding).
pub struct SectionReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(PersistError::Truncated(what))?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated(what));
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn align(&mut self, a: usize, what: &'static str) -> Result<(), PersistError> {
        let aligned = self.pos.div_ceil(a) * a;
        self.take(aligned - self.pos, what)?;
        Ok(())
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().unwrap(),
        ))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().unwrap(),
        ))
    }

    /// Reads an `i128`.
    pub fn get_i128(&mut self) -> Result<i128, PersistError> {
        Ok(i128::from_le_bytes(
            self.take(16, "i128")?.try_into().unwrap(),
        ))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, PersistError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len, "string")?;
        self.align(4, "string padding")?;
        std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Invalid("non-UTF-8 string".to_owned()))
    }

    fn get_slice<T: Copy>(
        &mut self,
        what: &'static str,
    ) -> Result<&'a [T], PersistError> {
        let len = usize::try_from(self.get_u64()?)
            .map_err(|_| PersistError::Truncated(what))?;
        self.align(std::mem::align_of::<T>(), what)?;
        let nbytes = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or(PersistError::Truncated(what))?;
        let raw = self.take(nbytes, what)?;
        // Safety: T is a plain-old-data type (u32/f64/Rat) for which any
        // bit pattern is a valid value; align_to checks alignment.
        let (head, mid, tail) = unsafe { raw.align_to::<T>() };
        if !head.is_empty() || !tail.is_empty() || mid.len() != len {
            return Err(PersistError::Misaligned(what));
        }
        Ok(mid)
    }

    /// Reads a length-prefixed `u32` slice, zero-copy.
    pub fn get_u32_slice(&mut self) -> Result<&'a [u32], PersistError> {
        self.get_slice::<u32>("u32 slice")
    }

    /// Reads a length-prefixed `f64` slice, zero-copy.
    pub fn get_f64_slice(&mut self) -> Result<&'a [f64], PersistError> {
        self.get_slice::<f64>("f64 slice")
    }

    /// Reads a length-prefixed [`Rat`] slice, zero-copy, validating that
    /// every denominator is positive (full canonicality is trusted to the
    /// checksum).
    pub fn get_rat_slice(&mut self) -> Result<&'a [Rat], PersistError> {
        let rats = self.get_slice::<Rat>("Rat slice")?;
        if rats.iter().any(|r| r.denom() <= 0) {
            return Err(PersistError::Invalid(
                "Rat with non-positive denominator".to_owned(),
            ));
        }
        Ok(rats)
    }

    /// Bytes remaining after the current position.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Coefficient types the persistence layer can encode. Sealed in practice:
/// implemented for [`Rat`] and `f64`.
pub trait PersistCoeff: Coeff {
    /// Type discriminator stored alongside the coefficient array.
    const TYPE_ID: u32;
    /// Writes a coefficient slice (element-aligned).
    fn write_slice(w: &mut ArtifactWriter, s: &[Self])
    where
        Self: Sized;
    /// Reads a coefficient slice, zero-copy.
    fn read_slice<'a>(r: &mut SectionReader<'a>) -> Result<&'a [Self], PersistError>
    where
        Self: Sized;
}

impl PersistCoeff for Rat {
    const TYPE_ID: u32 = 1;
    fn write_slice(w: &mut ArtifactWriter, s: &[Self]) {
        w.put_rat_slice(s);
    }
    fn read_slice<'a>(r: &mut SectionReader<'a>) -> Result<&'a [Self], PersistError> {
        r.get_rat_slice()
    }
}

impl PersistCoeff for f64 {
    const TYPE_ID: u32 = 2;
    fn write_slice(w: &mut ArtifactWriter, s: &[Self]) {
        w.put_f64_slice(s);
    }
    fn read_slice<'a>(r: &mut SectionReader<'a>) -> Result<&'a [Self], PersistError> {
        r.get_f64_slice()
    }
}

/// Writes a compiled program as one section under `tag`. Since format
/// version 2 the section carries the shared-subterm slot count right
/// after the polynomial count, so DAG programs ([`crate::dag`]) persist
/// like any other program.
pub fn write_program<C: PersistCoeff>(w: &mut ArtifactWriter, tag: u32, prog: &EvalProgram<C>) {
    let (poly_offsets, coeffs, term_offsets, var_ids, exps) = prog.csr_parts();
    w.begin_section(tag);
    w.put_u32(C::TYPE_ID);
    w.put_u32(u32::try_from(prog.num_polys()).expect("program too large"));
    w.put_u32(u32::try_from(prog.num_slots()).expect("program too large"));
    for label in prog.labels() {
        w.put_str(label);
    }
    let locals: Vec<u32> = prog.vars().iter().map(|v| v.0).collect();
    w.put_u32_slice(&locals);
    w.put_u32_slice(poly_offsets);
    w.put_u32_slice(term_offsets);
    w.put_u32_slice(var_ids);
    w.put_u32_slice(exps);
    C::write_slice(w, coeffs);
}

/// Borrowed zero-copy view of a persisted [`EvalProgram`]: every array
/// aliases the artifact bytes. Convert with
/// [`to_program`](Self::to_program) (still zero-copy, keep-alive via an
/// owner) or [`to_owned_program`](Self::to_owned_program) (deep copy).
pub struct EvalProgramRef<'a, C> {
    /// Result-tuple labels, in program order.
    pub labels: Vec<&'a str>,
    /// Shared-subterm slot rows after the output rows (0 in v1 artifacts
    /// and for flat programs).
    pub num_slots: usize,
    /// Global variable ids in local-index order.
    pub locals: &'a [u32],
    /// Term range of each polynomial.
    pub poly_offsets: &'a [u32],
    /// Factor range of each term.
    pub term_offsets: &'a [u32],
    /// Local variable id of each factor.
    pub var_ids: &'a [u32],
    /// Exponent of each factor.
    pub exps: &'a [u32],
    /// Coefficient of each term.
    pub coeffs: &'a [C],
}

/// Reads the program section under `tag` as a borrowed zero-copy view.
pub fn read_program_ref<'a, C: PersistCoeff>(
    reader: &ArtifactReader<'a>,
    tag: u32,
) -> Result<EvalProgramRef<'a, C>, PersistError> {
    let mut s = reader.section(tag)?;
    let type_id = s.get_u32()?;
    if type_id != C::TYPE_ID {
        return Err(PersistError::Invalid(format!(
            "coefficient type mismatch: stored {type_id}, requested {}",
            C::TYPE_ID
        )));
    }
    let num_polys = s.get_u32()? as usize;
    // v1 program sections predate shared-subterm slots.
    let num_slots = if reader.version() >= 2 {
        s.get_u32()? as usize
    } else {
        0
    };
    let mut labels = Vec::with_capacity(num_polys);
    for _ in 0..num_polys {
        labels.push(s.get_str()?);
    }
    let locals = s.get_u32_slice()?;
    let poly_offsets = s.get_u32_slice()?;
    let term_offsets = s.get_u32_slice()?;
    let var_ids = s.get_u32_slice()?;
    let exps = s.get_u32_slice()?;
    let coeffs = C::read_slice(&mut s)?;
    let view = EvalProgramRef {
        labels,
        num_slots,
        locals,
        poly_offsets,
        term_offsets,
        var_ids,
        exps,
        coeffs,
    };
    view.validate()?;
    Ok(view)
}

impl<'a, C: PersistCoeff> EvalProgramRef<'a, C> {
    /// Structural sanity checks: offset arrays must be monotone and
    /// in-bounds so evaluation cannot index out of range.
    fn validate(&self) -> Result<(), PersistError> {
        let bad = |msg: &str| Err(PersistError::Invalid(msg.to_owned()));
        if self.poly_offsets.len() != self.labels.len() + self.num_slots + 1 {
            return bad("poly_offsets length");
        }
        if self.term_offsets.len() != self.coeffs.len() + 1 {
            return bad("term_offsets length");
        }
        if self.var_ids.len() != self.exps.len() {
            return bad("var_ids/exps length");
        }
        if self.poly_offsets.first() != Some(&0)
            || self.poly_offsets.last().copied() != Some(self.coeffs.len() as u32)
            || self.poly_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return bad("poly_offsets range");
        }
        if self.term_offsets.first() != Some(&0)
            || self.term_offsets.last().copied() != Some(self.var_ids.len() as u32)
            || self.term_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return bad("term_offsets range");
        }
        let nl = self.locals.len() as u32;
        let ns = self.num_slots as u32;
        if self.var_ids.iter().any(|&v| v >= nl + ns) {
            return bad("var_id out of local range");
        }
        // Slot rows must be topologically ordered: slot `s` (row
        // `num_polys + s`) may only reference scenario variables and
        // strictly earlier slots, or evaluation would read a lane that
        // has not been staged yet.
        let np = self.labels.len();
        for s in 0..self.num_slots {
            let t0 = self.poly_offsets[np + s] as usize;
            let t1 = self.poly_offsets[np + s + 1] as usize;
            let f0 = self.term_offsets[t0] as usize;
            let f1 = self.term_offsets[t1] as usize;
            if self.var_ids[f0..f1].iter().any(|&v| v >= nl + s as u32) {
                return bad("slot rows not topologically ordered");
            }
        }
        Ok(())
    }

    /// Rebuilds an [`EvalProgram`] whose CSR arrays **alias the artifact
    /// bytes**, kept alive by `owner` (typically the `Arc<MmapFile>` the
    /// reader parsed). Only labels and the local-variable tables are
    /// re-allocated.
    pub fn to_program(&self, owner: Arc<dyn Any + Send + Sync>) -> EvalProgram<C> {
        let arc = |s: &'a [u32]| -> ArcSlice<u32> {
            // Safety: `owner` keeps the artifact bytes (which `s` borrows
            // from) alive and immutable for the slice's lifetime.
            unsafe { ArcSlice::from_raw_parts(s.as_ptr(), s.len(), Arc::clone(&owner)) }
        };
        let coeffs = unsafe {
            ArcSlice::from_raw_parts(self.coeffs.as_ptr(), self.coeffs.len(), Arc::clone(&owner))
        };
        EvalProgram::from_persisted_parts(
            self.labels.iter().map(|s| (*s).to_owned()).collect(),
            arc(self.poly_offsets),
            coeffs,
            arc(self.term_offsets),
            arc(self.var_ids),
            arc(self.exps),
            self.locals.iter().map(|&v| Var(v)).collect(),
            self.num_slots,
        )
    }

    /// Rebuilds an [`EvalProgram`] by copying every array out of the
    /// artifact — for callers that drop the backing bytes.
    pub fn to_owned_program(&self) -> EvalProgram<C> {
        EvalProgram::from_persisted_parts(
            self.labels.iter().map(|s| (*s).to_owned()).collect(),
            self.poly_offsets.to_vec().into(),
            self.coeffs.to_vec().into(),
            self.term_offsets.to_vec().into(),
            self.var_ids.to_vec().into(),
            self.exps.to_vec().into(),
            self.locals.iter().map(|&v| Var(v)).collect(),
            self.num_slots,
        )
    }
}

/// An artifact loaded from disk and kept alive for zero-copy consumers:
/// wraps the [`MmapFile`] in an `Arc` that loaded programs hold onto.
pub struct LoadedArtifact {
    map: Arc<MmapFile>,
}

impl LoadedArtifact {
    /// Maps (or reads) `path`.
    pub fn open(path: &Path) -> Result<LoadedArtifact, PersistError> {
        Ok(LoadedArtifact {
            map: Arc::new(MmapFile::open(path)?),
        })
    }

    /// Parses the artifact header and section table.
    pub fn reader(&self) -> Result<ArtifactReader<'_>, PersistError> {
        ArtifactReader::parse(self.map.bytes())
    }

    /// The keep-alive owner for zero-copy views into this artifact.
    pub fn owner(&self) -> Arc<dyn Any + Send + Sync> {
        Arc::clone(&self.map) as Arc<dyn Any + Send + Sync>
    }

    /// True iff the bytes are an actual memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Loads the program under `tag`, CSR arrays aliasing the mapping.
    pub fn load_program<C: PersistCoeff>(&self, tag: u32) -> Result<EvalProgram<C>, PersistError> {
        let reader = self.reader()?;
        let view = read_program_ref::<C>(&reader, tag)?;
        Ok(view.to_program(self.owner()))
    }
}

/// Writes an artifact image to `path` atomically (write to a sibling
/// temporary file, then rename into place).
pub fn write_file(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_polyset;
    use crate::var::VarRegistry;
    use crate::BatchEvaluator;
    use crate::Valuation;
    use cobra_util::AlignedBytes;

    fn sample_program() -> (VarRegistry, EvalProgram<Rat>) {
        let mut reg = VarRegistry::new();
        let set = parse_polyset(
            "P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1\nP2 = 77.9*b1*m1 + 80.5*b1*m3",
            &mut reg,
        )
        .unwrap();
        (reg, EvalProgram::compile(&set))
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "cobra-persist-test-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ))
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = ArtifactWriter::new();
        w.begin_section(0xA);
        w.put_u32(7);
        w.put_str("label with ünïcode");
        w.put_u64(u64::MAX);
        w.put_i128(-3);
        w.put_u32_slice(&[1, 2, 3]);
        w.put_f64_slice(&[0.5, -1.25]);
        w.put_rat_slice(&[Rat::new(2088, 10), Rat::new(-1, 3)]);
        w.begin_section(0xB);
        w.put_u32(9);
        let bytes = w.finish();

        let image = AlignedBytes::copy_from(&bytes);
        let r = ArtifactReader::parse(image.bytes()).unwrap();
        assert_eq!(r.section_tags().collect::<Vec<_>>(), vec![0xA, 0xB]);
        let mut s = r.section(0xA).unwrap();
        assert_eq!(s.get_u32().unwrap(), 7);
        assert_eq!(s.get_str().unwrap(), "label with ünïcode");
        assert_eq!(s.get_u64().unwrap(), u64::MAX);
        assert_eq!(s.get_i128().unwrap(), -3);
        assert_eq!(s.get_u32_slice().unwrap(), &[1, 2, 3]);
        assert_eq!(s.get_f64_slice().unwrap(), &[0.5, -1.25]);
        assert_eq!(
            s.get_rat_slice().unwrap(),
            &[Rat::new(2088, 10), Rat::new(-1, 3)]
        );
        assert_eq!(s.remaining(), 0);
        let mut s = r.section(0xB).unwrap();
        assert_eq!(s.get_u32().unwrap(), 9);
        assert!(matches!(
            r.section(0xC),
            Err(PersistError::MissingSection(0xC))
        ));
    }

    #[test]
    fn header_corruption_detected() {
        let mut w = ArtifactWriter::new();
        w.begin_section(1);
        w.put_u64(1234);
        let good = w.finish();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let image = AlignedBytes::copy_from(&bad_magic);
        assert!(matches!(
            ArtifactReader::parse(image.bytes()),
            Err(PersistError::BadMagic)
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        // re-seal the checksum so only the version differs
        let image = AlignedBytes::copy_from(&bad_version);
        assert!(matches!(
            ArtifactReader::parse(image.bytes()),
            Err(PersistError::BadVersion(99))
        ));

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        let image = AlignedBytes::copy_from(&flipped);
        assert!(matches!(
            ArtifactReader::parse(image.bytes()),
            Err(PersistError::ChecksumMismatch { .. })
        ));

        assert!(matches!(
            ArtifactReader::parse(&good[..8]),
            Err(PersistError::Truncated(_))
        ));
    }

    #[test]
    fn program_round_trip_owned_and_zero_copy() {
        let (mut reg, prog) = sample_program();
        let mut w = ArtifactWriter::new();
        write_program(&mut w, tags::PROGRAM_RAT, &prog);
        write_program(&mut w, tags::PROGRAM_F64, &prog.to_f64_program());
        let bytes = w.finish();

        let image = AlignedBytes::copy_from(&bytes);
        let r = ArtifactReader::parse(image.bytes()).unwrap();
        let view = read_program_ref::<Rat>(&r, tags::PROGRAM_RAT).unwrap();
        assert_eq!(view.labels, ["P1", "P2"]);
        // The view's slices alias the image.
        let img_range = image.bytes().as_ptr() as usize
            ..image.bytes().as_ptr() as usize + image.bytes().len();
        assert!(img_range.contains(&(view.coeffs.as_ptr() as usize)));

        let owned = view.to_owned_program();
        assert_eq!(owned.num_polys(), prog.num_polys());
        assert_eq!(owned.num_terms(), prog.num_terms());
        assert_eq!(owned.vars(), prog.vars());

        // Evaluation identical to the source program.
        let val = Valuation::with_default(Rat::ONE);
        let full = BatchEvaluator::new(prog.clone());
        let re = BatchEvaluator::new(owned);
        let rows_a = full.bind_all(std::slice::from_ref(&val)).unwrap();
        let rows_b = re.bind_all(&[val]).unwrap();
        assert_eq!(
            full.eval_batch(&rows_a).row(0),
            re.eval_batch(&rows_b).row(0)
        );

        // Wrong coefficient type is rejected.
        assert!(matches!(
            read_program_ref::<f64>(&r, tags::PROGRAM_RAT),
            Err(PersistError::Invalid(_))
        ));

        // Registry stays usable (silence unused warning meaningfully).
        assert!(reg.var("p1").0 < reg.len() as u32);
    }

    #[test]
    fn file_round_trip_via_mmap_is_zero_copy() {
        let (_reg, prog) = sample_program();
        let mut w = ArtifactWriter::new();
        write_program(&mut w, tags::PROGRAM_RAT, &prog);
        let bytes = w.finish();
        let path = temp_path("prog");
        write_file(&path, &bytes).unwrap();

        let artifact = LoadedArtifact::open(&path).unwrap();
        let loaded: EvalProgram<Rat> = artifact.load_program(tags::PROGRAM_RAT).unwrap();
        // The loaded program's coefficient storage aliases the mapping.
        let (_, coeffs, ..) = loaded.csr_parts();
        let map_range = artifact.map.bytes().as_ptr() as usize
            ..artifact.map.bytes().as_ptr() as usize + artifact.map.bytes().len();
        assert!(map_range.contains(&(coeffs.as_ptr() as usize)));
        // ... and survives dropping the artifact handle (Arc keep-alive).
        drop(artifact);
        assert_eq!(loaded.num_terms(), prog.num_terms());
        assert_eq!(
            loaded.decompile().total_monomials(),
            prog.decompile().total_monomials()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn structural_validation_rejects_inconsistent_offsets() {
        let (_reg, prog) = sample_program();
        let mut w = ArtifactWriter::new();
        write_program(&mut w, tags::PROGRAM_RAT, &prog);
        // Hand-build a broken section: claim 2 polys but 1 offset entry.
        let mut bad = ArtifactWriter::new();
        bad.begin_section(tags::PROGRAM_RAT);
        bad.put_u32(Rat::TYPE_ID);
        bad.put_u32(2);
        bad.put_u32(0); // num_slots (v2)
        bad.put_str("A");
        bad.put_str("B");
        bad.put_u32_slice(&[]); // locals
        bad.put_u32_slice(&[0]); // poly_offsets: wrong length
        bad.put_u32_slice(&[0]); // term_offsets
        bad.put_u32_slice(&[]); // var_ids
        bad.put_u32_slice(&[]); // exps
        bad.put_rat_slice(&[]); // coeffs
        let bytes = bad.finish();
        let image = AlignedBytes::copy_from(&bytes);
        let r = ArtifactReader::parse(image.bytes()).unwrap();
        assert!(matches!(
            read_program_ref::<Rat>(&r, tags::PROGRAM_RAT),
            Err(PersistError::Invalid(_))
        ));
    }
}
