//! Provenance polynomials over a generic coefficient ring.
//!
//! A [`Polynomial`] is a canonical sum of `(monomial, coefficient)` terms:
//! monomials strictly increasing in the canonical order, no zero
//! coefficients. The paper's provenance expressions (Example 2) are exactly
//! such polynomials with rational coefficients; the compression algorithm
//! only ever needs three operations from them — term iteration, variable
//! renaming with merge (the abstraction), and evaluation under a valuation.

use crate::monomial::Monomial;
use crate::valuation::{DenseValuation, Valuation};
use crate::var::{Var, VarRegistry};
use cobra_util::{FxHashSet, Rat};
use std::fmt;

/// Coefficient ring abstraction: exact rationals ([`Rat`]) for
/// paper-faithful arithmetic, `f64` for the valuation speed benchmarks.
pub trait Coeff: Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition.
    fn add(&self, other: &Self) -> Self;
    /// Subtraction.
    fn sub(&self, other: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Integer power (used when evaluating exponentiated variables).
    fn pow(&self, exp: u32) -> Self;
    /// Is this the additive identity? (Zero terms are pruned.)
    fn is_zero(&self) -> bool;
    /// Conversion from an exact rational (for cross-representation tests
    /// and the Rat → f64 fast path).
    fn from_rat(r: Rat) -> Self;
    /// Lossy conversion to `f64` for reporting.
    fn to_f64(&self) -> f64;
}

impl Coeff for Rat {
    fn zero() -> Self {
        Rat::ZERO
    }
    fn one() -> Self {
        Rat::ONE
    }
    fn add(&self, other: &Self) -> Self {
        *self + *other
    }
    fn sub(&self, other: &Self) -> Self {
        *self - *other
    }
    fn mul(&self, other: &Self) -> Self {
        *self * *other
    }
    fn pow(&self, exp: u32) -> Self {
        Rat::pow(*self, exp)
    }
    fn is_zero(&self) -> bool {
        Rat::is_zero(*self)
    }
    fn from_rat(r: Rat) -> Self {
        r
    }
    fn to_f64(&self) -> f64 {
        Rat::to_f64(*self)
    }
}

impl Coeff for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn pow(&self, exp: u32) -> Self {
        // The shared square-and-multiply chain keeps this walk
        // bit-identical to every lane kernel (see `cobra_util::kernel`).
        cobra_util::kernel::pow_f64(*self, exp)
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    fn from_rat(r: Rat) -> Self {
        r.to_f64()
    }
    fn to_f64(&self) -> f64 {
        *self
    }
}

/// A polynomial in canonical form: terms sorted by monomial, no zero
/// coefficients, no duplicate monomials.
#[derive(Clone, PartialEq)]
pub struct Polynomial<C: Coeff> {
    terms: Vec<(Monomial, C)>,
}

impl<C: Coeff> Default for Polynomial<C> {
    fn default() -> Self {
        Polynomial { terms: Vec::new() }
    }
}

impl<C: Coeff> Polynomial<C> {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant polynomial (zero terms if `c` is zero).
    pub fn constant(c: C) -> Self {
        if c.is_zero() {
            Self::zero()
        } else {
            Polynomial {
                terms: vec![(Monomial::one(), c)],
            }
        }
    }

    /// The polynomial consisting of a single variable.
    pub fn var(v: Var) -> Self {
        Polynomial {
            terms: vec![(Monomial::var(v), C::one())],
        }
    }

    /// A single term `c · m`.
    pub fn term(m: Monomial, c: C) -> Self {
        if c.is_zero() {
            Self::zero()
        } else {
            Polynomial { terms: vec![(m, c)] }
        }
    }

    /// Builds from arbitrary terms, canonicalizing (sorting, merging
    /// duplicates, dropping zeros).
    pub fn from_terms(terms: impl IntoIterator<Item = (Monomial, C)>) -> Self {
        let mut terms: Vec<(Monomial, C)> = terms.into_iter().collect();
        terms.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut out: Vec<(Monomial, C)> = Vec::with_capacity(terms.len());
        for (m, c) in terms {
            match out.last_mut() {
                Some((last_m, last_c)) if *last_m == m => *last_c = last_c.add(&c),
                _ => out.push((m, c)),
            }
        }
        out.retain(|(_, c)| !c.is_zero());
        Polynomial { terms: out }
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of monomials — the paper's provenance-size measure.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Maximum total degree over all terms (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.iter().map(|(m, _)| m.degree()).max().unwrap_or(0)
    }

    /// Iterates `(monomial, coefficient)` terms in canonical order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &(Monomial, C)> {
        self.terms.iter()
    }

    /// The canonical term slice (monomials strictly increasing). Indices
    /// into this slice are stable for the lifetime of the polynomial —
    /// they are what `cobra_core`'s group analysis records as term
    /// references.
    pub fn terms(&self) -> &[(Monomial, C)] {
        &self.terms
    }

    /// The coefficient of `m` (zero if absent).
    pub fn coeff_of(&self, m: &Monomial) -> C {
        self.terms
            .binary_search_by(|(tm, _)| tm.cmp(m))
            .map(|i| self.terms[i].1.clone())
            .unwrap_or_else(|_| C::zero())
    }

    /// The set of distinct variables occurring in the polynomial.
    pub fn vars(&self) -> FxHashSet<Var> {
        let mut set = FxHashSet::default();
        for (m, _) in &self.terms {
            set.extend(m.vars());
        }
        set
    }

    /// Sum of two polynomials.
    pub fn add(&self, other: &Self) -> Self {
        // Merge two canonical term lists.
        let mut out = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            let (ma, ca) = &self.terms[i];
            let (mb, cb) = &other.terms[j];
            match ma.cmp(mb) {
                std::cmp::Ordering::Less => {
                    out.push((ma.clone(), ca.clone()));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((mb.clone(), cb.clone()));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let c = ca.add(cb);
                    if !c.is_zero() {
                        out.push((ma.clone(), c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend(self.terms[i..].iter().cloned());
        out.extend(other.terms[j..].iter().cloned());
        Polynomial { terms: out }
    }

    /// Adds a single term in place (used by aggregation hot loops).
    pub fn add_term(&mut self, m: Monomial, c: C) {
        if c.is_zero() {
            return;
        }
        match self.terms.binary_search_by(|(tm, _)| tm.cmp(&m)) {
            Ok(i) => {
                let new = self.terms[i].1.add(&c);
                if new.is_zero() {
                    self.terms.remove(i);
                } else {
                    self.terms[i].1 = new;
                }
            }
            Err(i) => self.terms.insert(i, (m, c)),
        }
    }

    /// Sets the coefficient of `m` to exactly `c`, inserting the term when
    /// absent and removing it when `c` is zero. Returns `true` iff the
    /// polynomial's *monomial set* changed (a term appeared or vanished) —
    /// the structural/coefficient-only distinction delta application
    /// reports upward so callers can invalidate only shape-dependent
    /// caches ([`crate::delta`]).
    pub fn set_term(&mut self, m: Monomial, c: C) -> bool {
        match self.terms.binary_search_by(|(tm, _)| tm.cmp(&m)) {
            Ok(i) => {
                if c.is_zero() {
                    self.terms.remove(i);
                    true
                } else {
                    self.terms[i].1 = c;
                    false
                }
            }
            Err(i) => {
                if c.is_zero() {
                    false
                } else {
                    self.terms.insert(i, (m, c));
                    true
                }
            }
        }
    }

    /// Difference of two polynomials.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Additive inverse.
    pub fn neg(&self) -> Self {
        Polynomial {
            terms: self
                .terms
                .iter()
                .map(|(m, c)| (m.clone(), C::zero().sub(c)))
                .collect(),
        }
    }

    /// Product of two polynomials (distributes and re-canonicalizes).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut terms = Vec::with_capacity(self.terms.len() * other.terms.len());
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                terms.push((ma.mul(mb), ca.mul(cb)));
            }
        }
        Self::from_terms(terms)
    }

    /// Multiplies every coefficient by a scalar.
    pub fn scale(&self, c: &C) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        Polynomial {
            terms: self
                .terms
                .iter()
                .map(|(m, k)| (m.clone(), k.mul(c)))
                .collect(),
        }
    }

    /// Multiplies every term by a monomial (no re-sort needed: `m ↦ m·x` is
    /// order-preserving only for the unit monomial, so we re-canonicalize).
    pub fn mul_monomial(&self, m: &Monomial) -> Self {
        if m.is_one() {
            return self.clone();
        }
        Self::from_terms(self.terms.iter().map(|(tm, c)| (tm.mul(m), c.clone())))
    }

    /// Renames variables (the abstraction substitution); terms whose
    /// monomials become identical merge by coefficient addition. This is
    /// COBRA's compression primitive.
    pub fn rename_vars(&self, mut f: impl FnMut(Var) -> Var) -> Self {
        Self::from_terms(
            self.terms
                .iter()
                .map(|(m, c)| (m.rename(&mut f), c.clone())),
        )
    }

    /// Full evaluation under a sparse valuation.
    ///
    /// # Errors
    /// Returns the missing variable if the valuation (with no default) does
    /// not cover some variable.
    pub fn eval(&self, val: &Valuation<C>) -> Result<C, Var> {
        let mut acc = C::zero();
        for (m, c) in &self.terms {
            let mut term = c.clone();
            for (v, e) in m.iter() {
                let x = val.get(v).ok_or(v)?;
                term = term.mul(&x.pow(e));
            }
            acc = acc.add(&term);
        }
        Ok(acc)
    }

    /// Full evaluation against a dense valuation (the benchmarked fast
    /// path: one slice index per variable occurrence).
    pub fn eval_dense(&self, val: &DenseValuation<C>) -> C {
        let mut acc = C::zero();
        for (m, c) in &self.terms {
            let mut term = c.clone();
            for (v, e) in m.iter() {
                term = term.mul(&val.get(v).pow(e));
            }
            acc = acc.add(&term);
        }
        acc
    }

    /// Partial evaluation: substitutes only the variables bound by `val`,
    /// leaving others symbolic. Returns a (possibly constant) polynomial.
    pub fn partial_eval(&self, val: &Valuation<C>) -> Self {
        Self::from_terms(self.terms.iter().map(|(m, c)| {
            let mut coeff = c.clone();
            let mut residue = Vec::new();
            for (v, e) in m.iter() {
                match val.get(v) {
                    Some(x) => coeff = coeff.mul(&x.pow(e)),
                    None => residue.push((v, e)),
                }
            }
            (Monomial::from_pairs(residue), coeff)
        }))
    }

    /// Substitutes a whole polynomial for a variable: `P[v ↦ R]`.
    ///
    /// Generalizes renaming (substitute a variable) and partial evaluation
    /// (substitute a constant); the interesting case for hypothetical
    /// reasoning is `v ↦ 1 + δ`, which re-expresses provenance in terms of
    /// a *deviation* variable `δ`.
    pub fn substitute(&self, v: Var, replacement: &Polynomial<C>) -> Self {
        let mut out = Polynomial::zero();
        for (m, c) in &self.terms {
            let e = m.exponent_of(v);
            if e == 0 {
                out.add_term(m.clone(), c.clone());
                continue;
            }
            let (rest, _) = m.without(v);
            // replacement^e, then shift by the residual monomial & coeff
            let mut power = Polynomial::constant(C::one());
            for _ in 0..e {
                power = power.mul(replacement);
            }
            let shifted = power.mul_monomial(&rest).scale(c);
            out = out.add(&shifted);
        }
        out
    }

    /// Formal partial derivative `∂P/∂v` — the sensitivity of the query
    /// result to the parameter `v` (an extension for hypothetical
    /// reasoning: ranks which parameters matter most for a scenario).
    pub fn derivative(&self, v: Var) -> Self {
        Self::from_terms(self.terms.iter().filter_map(|(m, c)| {
            let e = m.exponent_of(v);
            if e == 0 {
                return None;
            }
            let (rest, _) = m.without(v);
            let lowered = if e == 1 {
                rest
            } else {
                rest.mul(&Monomial::from_pairs([(v, e - 1)]))
            };
            Some((lowered, c.mul(&C::from_rat(cobra_util::Rat::int(e as i64)))))
        }))
    }

    /// Maps coefficients into another ring, dropping terms that become zero
    /// (e.g. exact `Rat` → `f64` for the timing experiments).
    pub fn map_coeff<D: Coeff>(&self, mut f: impl FnMut(&C) -> D) -> Polynomial<D> {
        Polynomial {
            terms: self
                .terms
                .iter()
                .filter_map(|(m, c)| {
                    let d = f(c);
                    (!d.is_zero()).then(|| (m.clone(), d))
                })
                .collect(),
        }
    }

    /// Renders with variable names from `reg`, e.g.
    /// `208.8*p1*m1 + 240*p1*m3`.
    pub fn display<'a>(&'a self, reg: &'a VarRegistry) -> impl fmt::Display + 'a
    where
        C: fmt::Display,
    {
        PolyDisplay { p: self, reg }
    }
}

impl Polynomial<Rat> {
    /// Converts an exact polynomial to its `f64` counterpart (same shape,
    /// approximate coefficients) for the valuation speed benchmarks.
    pub fn to_f64_poly(&self) -> Polynomial<f64> {
        self.map_coeff(|c| c.to_f64())
    }
}

impl<C: Coeff> fmt::Debug for Polynomial<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let parts: Vec<String> = self
            .terms
            .iter()
            .map(|(m, c)| format!("{:?}*{:?}", c, m))
            .collect();
        write!(f, "{}", parts.join(" + "))
    }
}

struct PolyDisplay<'a, C: Coeff + fmt::Display> {
    p: &'a Polynomial<C>,
    reg: &'a VarRegistry,
}

impl<C: Coeff + fmt::Display> fmt::Display for PolyDisplay<'_, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.p.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in self.p.iter() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if m.is_one() {
                write!(f, "{c}")?;
            } else if *c == C::one() {
                write!(f, "{}", m.display(self.reg))?;
            } else {
                write!(f, "{}*{}", c, m.display(self.reg))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VarRegistry, Var, Var, Var) {
        let mut r = VarRegistry::new();
        let x = r.var("x");
        let y = r.var("y");
        let z = r.var("z");
        (r, x, y, z)
    }

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    #[test]
    fn canonical_from_terms() {
        let (_, x, y, _) = setup();
        let p = Polynomial::from_terms([
            (Monomial::var(y), rat("1")),
            (Monomial::var(x), rat("2")),
            (Monomial::var(y), rat("-1")), // cancels
            (Monomial::one(), rat("0")),   // dropped
        ]);
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.coeff_of(&Monomial::var(x)), rat("2"));
        assert_eq!(p.coeff_of(&Monomial::var(y)), Rat::ZERO);
    }

    #[test]
    fn ring_identities() {
        let (_, x, y, z) = setup();
        let p = Polynomial::from_terms([
            (Monomial::var(x), rat("2")),
            (Monomial::var(y), rat("3")),
        ]);
        let q = Polynomial::from_terms([
            (Monomial::var(y), rat("-3")),
            (Monomial::var(z), rat("5")),
        ]);
        // p + q - q == p
        assert_eq!(p.add(&q).sub(&q), p);
        // p + 0 == p, p * 1 == p, p * 0 == 0
        assert_eq!(p.add(&Polynomial::zero()), p);
        assert_eq!(p.mul(&Polynomial::constant(Rat::ONE)), p);
        assert!(p.mul(&Polynomial::zero()).is_zero());
        // distributivity on a sample
        let r = Polynomial::var(x);
        assert_eq!(r.mul(&p.add(&q)), r.mul(&p).add(&r.mul(&q)));
    }

    #[test]
    fn mul_expands_and_merges() {
        let (_, x, y, _) = setup();
        // (x + y)^2 = x^2 + 2xy + y^2
        let p = Polynomial::<Rat>::var(x).add(&Polynomial::var(y));
        let sq = p.mul(&p);
        assert_eq!(sq.num_terms(), 3);
        assert_eq!(sq.coeff_of(&Monomial::from_pairs([(x, 1), (y, 1)])), rat("2"));
        assert_eq!(sq.coeff_of(&Monomial::from_pairs([(x, 2)])), rat("1"));
        assert_eq!(sq.degree(), 2);
    }

    #[test]
    fn add_term_in_place_matches_from_terms() {
        let (_, x, y, _) = setup();
        let mut p = Polynomial::zero();
        p.add_term(Monomial::var(x), rat("1.5"));
        p.add_term(Monomial::var(y), rat("2"));
        p.add_term(Monomial::var(x), rat("0.5"));
        let q = Polynomial::from_terms([
            (Monomial::var(x), rat("2")),
            (Monomial::var(y), rat("2")),
        ]);
        assert_eq!(p, q);
        // cancelling to zero removes the term
        p.add_term(Monomial::var(y), rat("-2"));
        assert_eq!(p.num_terms(), 1);
    }

    #[test]
    fn rename_compresses_like_the_paper() {
        // Abstraction of Example 4: grouping f1, y1, v into `Sp` merges
        // their m1-terms into a single monomial with summed coefficients.
        let mut reg = VarRegistry::new();
        let f1 = reg.var("f1");
        let y1 = reg.var("y1");
        let v = reg.var("v");
        let m1 = reg.var("m1");
        let sp = reg.var("Sp");
        let p = Polynomial::from_terms([
            (Monomial::from_pairs([(f1, 1), (m1, 1)]), rat("127.4")),
            (Monomial::from_pairs([(y1, 1), (m1, 1)]), rat("75.9")),
            (Monomial::from_pairs([(v, 1), (m1, 1)]), rat("42")),
        ]);
        let grouped = p.rename_vars(|w| if w == m1 || w == sp { w } else { sp });
        assert_eq!(grouped.num_terms(), 1);
        assert_eq!(
            grouped.coeff_of(&Monomial::from_pairs([(m1, 1), (sp, 1)])),
            rat("245.3")
        );
    }

    #[test]
    fn eval_sparse_and_dense_agree() {
        let (_, x, y, _) = setup();
        let p = Polynomial::from_terms([
            (Monomial::from_pairs([(x, 2)]), rat("3")),
            (Monomial::from_pairs([(x, 1), (y, 1)]), rat("-1")),
            (Monomial::one(), rat("7")),
        ]);
        let mut val = Valuation::new();
        val.set(x, rat("2"));
        val.set(y, rat("5"));
        // 3·4 − 1·10 + 7 = 9
        assert_eq!(p.eval(&val).unwrap(), rat("9"));
        let dense = DenseValuation::from_valuation(&val, 3, Rat::ONE);
        assert_eq!(p.eval_dense(&dense), rat("9"));
    }

    #[test]
    fn eval_reports_missing_var() {
        let (_, x, y, _) = setup();
        let p = Polynomial::from_terms([(Monomial::from_pairs([(x, 1), (y, 1)]), rat("1"))]);
        let mut val = Valuation::new();
        val.set(x, rat("1"));
        assert_eq!(p.eval(&val), Err(y));
    }

    #[test]
    fn partial_eval_keeps_unbound_symbolic() {
        let (_, x, y, _) = setup();
        let p = Polynomial::from_terms([
            (Monomial::from_pairs([(x, 1), (y, 1)]), rat("2")),
            (Monomial::var(y), rat("3")),
        ]);
        let mut val = Valuation::new();
        val.set(x, rat("4"));
        let q = p.partial_eval(&val);
        // 2·4·y + 3·y = 11·y
        assert_eq!(q.num_terms(), 1);
        assert_eq!(q.coeff_of(&Monomial::var(y)), rat("11"));
        // binding everything yields a constant equal to full eval
        val.set(y, rat("10"));
        let full = p.eval(&val).unwrap();
        assert_eq!(p.partial_eval(&val).coeff_of(&Monomial::one()), full);
    }

    #[test]
    fn display_matches_paper_style() {
        let mut reg = VarRegistry::new();
        let p1 = reg.var("p1");
        let m1 = reg.var("m1");
        let p = Polynomial::from_terms([(Monomial::from_pairs([(p1, 1), (m1, 1)]), rat("208.8"))]);
        assert_eq!(p.display(&reg).to_string(), "208.8*p1*m1");
        assert_eq!(Polynomial::<Rat>::zero().display(&reg).to_string(), "0");
    }

    #[test]
    fn substitute_generalizes_rename_and_partial_eval() {
        let (_, x, y, z) = setup();
        let p = Polynomial::from_terms([
            (Monomial::from_pairs([(x, 2), (y, 1)]), rat("3")),
            (Monomial::var(x), rat("2")),
            (Monomial::var(z), rat("1")),
        ]);
        // substitute by a variable == rename
        assert_eq!(
            p.substitute(x, &Polynomial::var(z)),
            p.rename_vars(|v| if v == x { z } else { v })
        );
        // substitute by a constant == partial evaluation
        let mut val = Valuation::new();
        val.set(x, rat("4"));
        assert_eq!(
            p.substitute(x, &Polynomial::constant(rat("4"))),
            p.partial_eval(&val)
        );
        // x ↦ 1 + δ: evaluating at δ=0 recovers x=1
        let mut reg2 = VarRegistry::new();
        reg2.var("x");
        reg2.var("y");
        reg2.var("z");
        let delta = reg2.var("delta");
        let shifted = p.substitute(
            x,
            &Polynomial::constant(Rat::ONE).add(&Polynomial::var(delta)),
        );
        let at_zero = Valuation::with_default(Rat::ONE).bind(delta, Rat::ZERO);
        let at_one = Valuation::with_default(Rat::ONE);
        assert_eq!(shifted.eval(&at_zero).unwrap(), p.eval(&at_one).unwrap());
        // evaluation commutes with substitution in general
        let val = Valuation::with_default(Rat::ONE).bind(delta, rat("0.5"));
        let direct = shifted.eval(&val).unwrap();
        let x_val = Rat::ONE + rat("0.5");
        let pulled = Valuation::with_default(Rat::ONE).bind(x, x_val);
        assert_eq!(p.eval(&pulled).unwrap(), direct);
    }

    #[test]
    fn derivative_rules() {
        let (_, x, y, _) = setup();
        // d/dx (3x²y + 2x + 5y) = 6xy + 2
        let p = Polynomial::from_terms([
            (Monomial::from_pairs([(x, 2), (y, 1)]), rat("3")),
            (Monomial::var(x), rat("2")),
            (Monomial::var(y), rat("5")),
        ]);
        let dx = p.derivative(x);
        assert_eq!(dx.num_terms(), 2);
        assert_eq!(
            dx.coeff_of(&Monomial::from_pairs([(x, 1), (y, 1)])),
            rat("6")
        );
        assert_eq!(dx.coeff_of(&Monomial::one()), rat("2"));
        // derivative of a constant is zero; sum rule holds
        assert!(Polynomial::constant(rat("7")).derivative(x).is_zero());
        let q = Polynomial::var(y);
        assert_eq!(
            p.add(&q).derivative(x),
            p.derivative(x).add(&q.derivative(x))
        );
    }

    #[test]
    fn f64_conversion_preserves_shape() {
        let (_, x, _, _) = setup();
        let p = Polynomial::from_terms([
            (Monomial::var(x), rat("0.5")),
            (Monomial::one(), rat("2")),
        ]);
        let q = p.to_f64_poly();
        assert_eq!(q.num_terms(), 2);
        assert_eq!(q.coeff_of(&Monomial::var(x)), 0.5);
    }
}
