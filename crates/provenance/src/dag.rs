//! Algebraic compression: rewriting a flat CSR program into a
//! shared-subterm **DAG program**.
//!
//! Cut-based abstraction (the paper's axis) shrinks provenance by merging
//! variables; this module adds the orthogonal *algebraic* axis. A flat
//! [`EvalProgram`] re-multiplies the same subproducts for every monomial
//! of every polynomial — at paper scale the telephony workload evaluates
//! the same `plan × usage` power product once per zip code, 139,260
//! times per scenario. [`rewrite`] factors that redundancy into explicit
//! **slot rows** (see [`EvalProgram`]'s type-level docs) in three passes:
//!
//! 1. **Power-product CSE** — hash-conses every complete power product
//!    that occurs in ≥ 2 terms into a coefficient-1 slot; the terms
//!    collapse to `c · slot`. Keying on the power product alone (never
//!    the coefficient) is what makes this effective across polynomials
//!    that price the same product differently.
//! 2. **Pair mining** — bounded greedy extraction of the most frequent
//!    `(factor, factor)` pair across all rows (slot rows included, so
//!    chains of extractions build deeper shared subproducts), repeated
//!    while any pair is shared by ≥ 2 terms.
//! 3. **Horner restructuring** — per output row, recursively factors the
//!    highest-frequency variable `v` out of the terms containing it:
//!    `P = v^e·Q + R`, lifting `Q` into a sum slot when it keeps ≥ 2
//!    terms.
//!
//! The result is an [`EvalProgram`] whose slot rows are topologically
//! ordered, so every existing kernel evaluates it by computing slots
//! first — batch dispatch, parallel spans, sweep folds and deadline
//! budgets thread through unchanged. Rearrangement is **exact in the
//! ring**: the `Rat` path of a DAG program produces the identical
//! canonical rationals as the flat walk, while the `f64` path carries
//! its own slot-aware Higham certificate
//! ([`EvalProgram::rounding_op_counts`]).

use crate::compile::EvalProgram;
use crate::poly::Coeff;
use std::collections::{BTreeMap, HashMap};

/// Tuning knobs for [`rewrite`]. [`DagOptions::default`] enables every
/// pass at bounds that keep the rewrite near-linear in program size.
#[derive(Clone, Debug)]
pub struct DagOptions {
    /// Pass 1: hash-consed power-product CSE.
    pub product_cse: bool,
    /// Pass 2: greedy shared-pair extraction.
    pub pair_mining: bool,
    /// Pass 3: recursive Horner restructuring per output row.
    pub horner: bool,
    /// Maximum pair-extraction rounds (each round scans every term once
    /// and extracts one pair).
    pub max_pair_rounds: usize,
    /// Maximum Horner recursion depth per output row.
    pub horner_depth: usize,
    /// Minimum number of terms sharing a variable before Horner factors
    /// it out.
    pub min_group: usize,
}

impl Default for DagOptions {
    fn default() -> DagOptions {
        DagOptions {
            product_cse: true,
            pair_mining: true,
            horner: true,
            max_pair_rounds: 32,
            horner_depth: 4,
            min_group: 3,
        }
    }
}

impl DagOptions {
    /// CSE only: passes 2 and 3 disabled — the ablation baseline.
    pub fn cse_only() -> DagOptions {
        DagOptions {
            pair_mining: false,
            horner: false,
            ..DagOptions::default()
        }
    }
}

/// What the rewrite bought, in the units the acceptance gate measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagStats {
    /// Output rows (identical between flat and DAG program).
    pub num_polys: usize,
    /// Shared-subterm slot rows the rewrite introduced.
    pub num_slots: usize,
    /// Terms of the flat source program.
    pub flat_terms: usize,
    /// Terms of the DAG program, slot rows included.
    pub dag_terms: usize,
    /// Static multiplies one flat scenario evaluation performs.
    pub flat_multiply_ops: u64,
    /// Static multiplies one DAG scenario evaluation performs.
    pub dag_multiply_ops: u64,
}

impl DagStats {
    /// `flat_multiply_ops / dag_multiply_ops` — the op-reduction factor
    /// (> 1.0 whenever the rewrite found shareable structure).
    pub fn op_ratio(&self) -> f64 {
        if self.dag_multiply_ops == 0 {
            1.0
        } else {
            self.flat_multiply_ops as f64 / self.dag_multiply_ops as f64
        }
    }
}

/// A rewritten program plus its [`DagStats`].
#[derive(Clone, Debug)]
pub struct DagBuild<C: Coeff> {
    /// The slot program (`num_slots() == 0` only if nothing was
    /// shareable — the program is still a valid, equivalent rebuild).
    pub program: EvalProgram<C>,
    /// Size/op accounting of the rewrite.
    pub stats: DagStats,
}

/// One term during rewriting: factors are `(extended var id, exponent)`
/// pairs, sorted ascending by var, over the space `0..num_locals`
/// (scenario variables) ∪ `num_locals..` (slots, in creation order —
/// renumbered topologically at emission).
#[derive(Clone, Debug)]
struct Term<C> {
    coeff: C,
    factors: Vec<(u32, u32)>,
}

/// Rewrites a **flat** program into a shared-subterm DAG program.
///
/// The output program has the same labels, locals and binding surface
/// (`num_polys`, `num_locals`) as the input — scenario rows bound against
/// one evaluate against the other unchanged.
///
/// # Panics
/// Panics if `prog` already has slots (`num_slots() > 0`).
pub fn rewrite<C: Coeff>(prog: &EvalProgram<C>, opts: &DagOptions) -> DagBuild<C> {
    assert_eq!(prog.num_slots(), 0, "rewrite expects a flat program");
    let np = prog.num_polys();
    let nl = prog.num_locals() as u32;

    // Lower the CSR rows into mutable term lists.
    let mut outputs: Vec<Vec<Term<C>>> = Vec::with_capacity(np);
    for p in 0..np {
        let terms = prog.poly_offsets[p] as usize..prog.poly_offsets[p + 1] as usize;
        outputs.push(
            terms
                .map(|t| {
                    let factors =
                        prog.term_offsets[t] as usize..prog.term_offsets[t + 1] as usize;
                    Term {
                        coeff: prog.coeffs[t].clone(),
                        factors: factors.map(|f| (prog.var_ids[f], prog.exps[f])).collect(),
                    }
                })
                .collect(),
        );
    }
    let mut slots: Vec<Vec<Term<C>>> = Vec::new();

    if opts.product_cse {
        product_cse(&mut outputs, &mut slots, nl);
    }
    if opts.pair_mining {
        pair_mining(&mut outputs, &mut slots, nl, opts.max_pair_rounds);
    }
    if opts.horner {
        for row in &mut outputs {
            let terms = std::mem::take(row);
            *row = horner(terms, &mut slots, nl, opts.horner_depth, opts.min_group);
        }
    }

    let (flat_terms, flat_multiply_ops) = (prog.num_terms(), prog.multiply_ops());
    let program = emit(prog, outputs, slots, nl);
    let stats = DagStats {
        num_polys: np,
        num_slots: program.num_slots(),
        flat_terms,
        dag_terms: program.num_terms(),
        flat_multiply_ops,
        dag_multiply_ops: program.multiply_ops(),
    };
    DagBuild { program, stats }
}

/// Pass 1: hash-cons complete power products shared by ≥ 2 terms. A
/// product qualifies when evaluating it costs ≥ 2 multiplies (two or
/// more factors, or one factor with exponent > 1) — a lone `v¹` is
/// already a single lane read.
fn product_cse<C: Coeff>(outputs: &mut [Vec<Term<C>>], slots: &mut Vec<Vec<Term<C>>>, nl: u32) {
    fn qualifies(factors: &[(u32, u32)]) -> bool {
        factors.len() >= 2 || (factors.len() == 1 && factors[0].1 > 1)
    }
    let mut counts: HashMap<Vec<(u32, u32)>, u32> = HashMap::new();
    for terms in outputs.iter() {
        for term in terms {
            if qualifies(&term.factors) {
                *counts.entry(term.factors.clone()).or_insert(0) += 1;
            }
        }
    }
    // Allocate slots in first-encounter order (deterministic), then
    // rewrite every qualifying term to `c · slot`.
    let mut slot_of: HashMap<Vec<(u32, u32)>, u32> = HashMap::new();
    for terms in outputs.iter_mut() {
        for term in terms.iter_mut() {
            if counts.get(&term.factors).copied().unwrap_or(0) < 2 {
                continue;
            }
            let product = std::mem::take(&mut term.factors);
            let slot = *slot_of.entry(product).or_insert_with_key(|product| {
                slots.push(vec![Term {
                    coeff: C::one(),
                    factors: product.clone(),
                }]);
                nl + (slots.len() - 1) as u32
            });
            term.factors = vec![(slot, 1)];
        }
    }
}

/// Pass 2: bounded greedy pair extraction across all rows (slot rows
/// included, so chains of shared pairs compose). Each round counts every
/// unordered factor pair, extracts the most frequent one into a new slot
/// when it is shared by ≥ 2 terms, and substitutes it everywhere except
/// the new slot's own defining row.
///
/// The dependency graph stays acyclic: substituting the new slot `M`
/// into a row `X` adds the edge `X → M`, and `M`'s only out-edges go to
/// factors `X` already referenced directly — a path back from those to
/// `X` would have been a pre-existing cycle.
fn pair_mining<C: Coeff>(
    outputs: &mut [Vec<Term<C>>],
    slots: &mut Vec<Vec<Term<C>>>,
    nl: u32,
    max_rounds: usize,
) {
    /// An ordered pair of `(var, exp)` factors as they appear in a term.
    type FactorPair = ((u32, u32), (u32, u32));
    for _ in 0..max_rounds {
        // BTreeMap iteration order makes the argmax deterministic (the
        // first — smallest — pair wins ties).
        let mut counts: BTreeMap<FactorPair, u32> = BTreeMap::new();
        for terms in outputs.iter().chain(slots.iter()) {
            for term in terms {
                for i in 0..term.factors.len() {
                    for j in i + 1..term.factors.len() {
                        *counts
                            .entry((term.factors[i], term.factors[j]))
                            .or_insert(0) += 1;
                    }
                }
            }
        }
        let Some((&pair, &count)) = counts.iter().max_by_key(|&(_, &c)| c) else {
            break;
        };
        if count < 2 {
            break;
        }
        let slot = nl + slots.len() as u32;
        slots.push(vec![Term {
            coeff: C::one(),
            factors: vec![pair.0, pair.1],
        }]);
        // Skip the defining row just pushed — substituting there would
        // make the definition self-referential.
        let skip = outputs.len() + slots.len() - 1;
        for (row, terms) in outputs.iter_mut().chain(slots.iter_mut()).enumerate() {
            if row == skip {
                continue;
            }
            for term in terms.iter_mut() {
                substitute_pair(term, pair, slot);
            }
        }
    }
}

/// Replaces the occurrence of `pair` in `term` (both exact
/// `(var, exponent)` factors present) with `(slot, 1)`, keeping the
/// factor list sorted by var.
fn substitute_pair<C>(term: &mut Term<C>, pair: ((u32, u32), (u32, u32)), slot: u32) {
    let (a, b) = pair;
    let Some(ia) = term.factors.iter().position(|&f| f == a) else {
        return;
    };
    let Some(ib) = term.factors.iter().position(|&f| f == b) else {
        return;
    };
    debug_assert_ne!(ia, ib);
    let (first, second) = if ia < ib { (ia, ib) } else { (ib, ia) };
    term.factors.remove(second);
    term.factors.remove(first);
    let at = term.factors.partition_point(|&(v, _)| v < slot);
    term.factors.insert(at, (slot, 1));
}

/// Pass 3: recursive Horner restructuring of one term list. Factors the
/// most frequent variable out of the terms containing it (`P = v^e·Q +
/// R`) and lifts the quotient `Q` into a sum slot when it keeps ≥ 2
/// terms; `Q` and `R` recurse.
fn horner<C: Coeff>(
    terms: Vec<Term<C>>,
    slots: &mut Vec<Vec<Term<C>>>,
    nl: u32,
    depth: usize,
    min_group: usize,
) -> Vec<Term<C>> {
    if depth == 0 || terms.len() < min_group.max(2) {
        return terms;
    }
    let mut freq: BTreeMap<u32, usize> = BTreeMap::new();
    for term in &terms {
        for &(v, _) in &term.factors {
            *freq.entry(v).or_insert(0) += 1;
        }
    }
    let Some((&v, &count)) = freq.iter().max_by_key(|&(_, &c)| c) else {
        return terms;
    };
    if count < min_group {
        return terms;
    }
    let (group, rest): (Vec<Term<C>>, Vec<Term<C>>) = terms
        .into_iter()
        .partition(|t| t.factors.iter().any(|&(var, _)| var == v));
    let emin = group
        .iter()
        .map(|t| t.factors.iter().find(|&&(var, _)| var == v).unwrap().1)
        .min()
        .expect("group is non-empty by construction");
    let quotient: Vec<Term<C>> = group
        .into_iter()
        .map(|mut t| {
            let i = t.factors.iter().position(|&(var, _)| var == v).unwrap();
            if t.factors[i].1 == emin {
                t.factors.remove(i);
            } else {
                t.factors[i].1 -= emin;
            }
            t
        })
        .collect();
    let quotient = horner(quotient, slots, nl, depth - 1, min_group);
    let mut out = Vec::with_capacity(rest.len() + 1);
    if quotient.len() == 1 {
        // A single-term quotient needs no slot: fold `v^emin` back in.
        let mut t = quotient.into_iter().next().expect("len checked");
        merge_factor(&mut t, v, emin);
        out.push(t);
    } else {
        let slot = nl + slots.len() as u32;
        slots.push(quotient);
        let mut t = Term {
            coeff: C::one(),
            factors: vec![(v, emin)],
        };
        merge_factor(&mut t, slot, 1);
        out.push(t);
    }
    out.extend(horner(rest, slots, nl, depth - 1, min_group));
    out
}

/// Multiplies `v^e` into a term's factor list, merging exponents.
fn merge_factor<C>(term: &mut Term<C>, v: u32, e: u32) {
    match term.factors.binary_search_by_key(&v, |&(var, _)| var) {
        Ok(i) => term.factors[i].1 += e,
        Err(i) => term.factors.insert(i, (v, e)),
    }
}

/// Emits the rewritten rows as a CSR program: output rows first, then the
/// slot rows **renumbered into topological (dependencies-first) order** —
/// pair mining substitutes new slots into older slot rows, so creation
/// order alone does not satisfy the kernels' ordering contract.
fn emit<C: Coeff>(
    prog: &EvalProgram<C>,
    outputs: Vec<Vec<Term<C>>>,
    slots: Vec<Vec<Term<C>>>,
    nl: u32,
) -> EvalProgram<C> {
    let ns = slots.len();
    let deps: Vec<Vec<usize>> = slots
        .iter()
        .map(|terms| {
            terms
                .iter()
                .flat_map(|t| t.factors.iter())
                .filter(|&&(v, _)| v >= nl)
                .map(|&(v, _)| (v - nl) as usize)
                .collect()
        })
        .collect();
    // Iterative DFS post-order = topological order (the graph is acyclic
    // by construction; see `pair_mining`).
    let mut order: Vec<usize> = Vec::with_capacity(ns);
    let mut state = vec![0u8; ns]; // 0 unvisited / 1 on stack / 2 done
    for root in 0..ns {
        if state[root] != 0 {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        state[root] = 1;
        while let Some(&(s, next)) = stack.last() {
            if next < deps[s].len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let d = deps[s][next];
                if state[d] == 0 {
                    state[d] = 1;
                    stack.push((d, 0));
                }
            } else {
                state[s] = 2;
                order.push(s);
                stack.pop();
            }
        }
    }
    debug_assert_eq!(order.len(), ns);
    let mut new_index = vec![0u32; ns];
    for (new, &old) in order.iter().enumerate() {
        new_index[old] = new as u32;
    }
    let remap = |v: u32| -> u32 {
        if v >= nl {
            nl + new_index[(v - nl) as usize]
        } else {
            v
        }
    };

    let np = outputs.len();
    let mut poly_offsets = Vec::with_capacity(np + ns + 1);
    let mut coeffs = Vec::new();
    let mut term_offsets = vec![0u32];
    let mut var_ids = Vec::new();
    let mut exps = Vec::new();
    poly_offsets.push(0);
    for terms in outputs.iter().chain(order.iter().map(|&s| &slots[s])) {
        for term in terms {
            coeffs.push(term.coeff.clone());
            let mut factors: Vec<(u32, u32)> =
                term.factors.iter().map(|&(v, e)| (remap(v), e)).collect();
            factors.sort_unstable();
            for (v, e) in factors {
                var_ids.push(v);
                exps.push(e);
            }
            term_offsets
                .push(u32::try_from(var_ids.len()).expect("DAG program exceeds u32 factors"));
        }
        poly_offsets.push(u32::try_from(coeffs.len()).expect("DAG program exceeds u32 terms"));
    }

    EvalProgram::from_raw_parts(
        prog.labels().to_vec(),
        poly_offsets,
        coeffs,
        term_offsets,
        var_ids,
        exps,
        prog.vars().to_vec(),
        prog.local_of.clone(),
        ns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use crate::poly::Polynomial;
    use crate::polyset::PolySet;
    use crate::var::VarRegistry;
    use cobra_util::Rat;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    /// Three polynomials sharing the `x·y` and `x·y·z` products with
    /// different coefficients — the telephony shape in miniature.
    fn shared_products() -> (VarRegistry, PolySet<Rat>) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let z = reg.var("z");
        let w = reg.var("w");
        let mut set = PolySet::new();
        set.push(
            "A",
            Polynomial::from_terms([
                (Monomial::from_pairs([(x, 1), (y, 1)]), rat("3")),
                (Monomial::from_pairs([(x, 1), (y, 1), (z, 1)]), rat("5")),
                (Monomial::var(w), rat("1")),
            ]),
        );
        set.push(
            "B",
            Polynomial::from_terms([
                (Monomial::from_pairs([(x, 1), (y, 1)]), rat("-2")),
                (Monomial::from_pairs([(x, 1), (y, 1), (z, 1)]), rat("7")),
            ]),
        );
        set.push(
            "C",
            Polynomial::from_terms([
                (Monomial::from_pairs([(x, 1), (y, 1)]), rat("11")),
                (Monomial::from_pairs([(z, 2)]), rat("4")),
                (Monomial::one(), rat("-6")),
            ]),
        );
        (reg, set)
    }

    #[test]
    fn cse_shares_products_and_stays_exact() {
        let (mut reg, set) = shared_products();
        let flat = EvalProgram::compile(&set);
        let built = rewrite(&flat, &DagOptions::cse_only());
        let dag = &built.program;
        // x·y (3 uses) and x·y·z (2 uses) become slots; z² stays inline.
        assert!(dag.num_slots() >= 2, "slots: {}", dag.num_slots());
        assert_eq!(dag.num_polys(), flat.num_polys());
        assert_eq!(dag.num_locals(), flat.num_locals());
        assert_eq!(dag.labels(), flat.labels());
        assert!(built.stats.dag_multiply_ops < built.stats.flat_multiply_ops);
        assert!(built.stats.op_ratio() > 1.0);

        let x = reg.var("x");
        for i in 0..7 {
            let val = crate::Valuation::with_default(Rat::int(2))
                .bind(x, Rat::parse(&format!("{i}.5")).unwrap());
            let row = flat.bind(&val).unwrap();
            assert_eq!(dag.bind(&val).unwrap(), row, "identical binding surface");
            assert_eq!(dag.eval_scenario(&row), flat.eval_scenario(&row));
        }
    }

    #[test]
    fn full_rewrite_is_exact_on_dense_polynomials() {
        // Dense-ish polynomials with exponents: exercises pair mining and
        // Horner together with CSE, checked exactly against the flat walk.
        let mut reg = VarRegistry::new();
        let vars: Vec<_> = (0..5).map(|i| reg.var(&format!("v{i}"))).collect();
        let mut set = PolySet::new();
        for p in 0..6u32 {
            let terms: Vec<_> = (0..12u32)
                .map(|t| {
                    let m = Monomial::from_pairs((0..5usize).filter_map(|i| {
                        let e = (t + p * 3 + i as u32) % 4;
                        (e > 0).then_some((vars[i], e))
                    }));
                    (m, Rat::int(i64::from(t % 5) - 2))
                })
                .collect();
            set.push(format!("P{p}"), Polynomial::from_terms(terms));
        }
        let flat = EvalProgram::compile(&set);
        let built = rewrite(&flat, &DagOptions::default());
        let dag = &built.program;
        assert_eq!(dag.num_polys(), flat.num_polys());
        for i in 0..9i64 {
            let val = crate::Valuation::with_default(Rat::int(1)).bind(vars[0], Rat::int(i - 4));
            let row = flat.bind(&val).unwrap();
            assert_eq!(
                dag.eval_scenario(&row),
                flat.eval_scenario(&row),
                "scenario {i}"
            );
        }
    }

    #[test]
    fn rewrite_without_sharing_changes_nothing_observable() {
        // All-distinct monomials: no pass finds anything, the rebuild is
        // still equivalent (and slot-free).
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut set = PolySet::new();
        set.push(
            "P",
            Polynomial::from_terms([
                (Monomial::var(x), rat("2")),
                (Monomial::var(y), rat("3")),
            ]),
        );
        let flat = EvalProgram::compile(&set);
        let built = rewrite(&flat, &DagOptions::default());
        assert_eq!(built.program.num_slots(), 0);
        assert_eq!(built.stats.flat_multiply_ops, built.stats.dag_multiply_ops);
        let val = crate::Valuation::with_default(rat("-1.5"));
        let row = flat.bind(&val).unwrap();
        assert_eq!(built.program.eval_scenario(&row), flat.eval_scenario(&row));
    }

    #[test]
    fn dag_f64_lane_kernels_match_generic_walk() {
        use crate::compile::BatchEvaluator;
        let (_, set) = shared_products();
        let flat = EvalProgram::compile(&set);
        let built = rewrite(&flat, &DagOptions::default());
        let dag64 = built.program.to_f64_program();
        let rows: Vec<Vec<f64>> = (0..19)
            .map(|i| {
                (0..dag64.num_locals())
                    .map(|v| 0.3 + (i * 7 + v) as f64 * 0.21)
                    .collect()
            })
            .collect();
        // Generic slot-aware walk vs the blocked lane kernels.
        let eval = BatchEvaluator::new(dag64.clone());
        let lane = eval.eval_batch_fast(&rows);
        for (s, row) in rows.iter().enumerate() {
            assert_eq!(lane.row(s), dag64.eval_scenario(row), "scenario {s}");
        }
    }

    #[test]
    fn slot_rows_are_topologically_ordered() {
        let (_, set) = shared_products();
        let flat = EvalProgram::compile(&set);
        let dag = rewrite(&flat, &DagOptions::default()).program;
        let np = dag.num_polys();
        let nl = dag.num_locals() as u32;
        for s in 0..dag.num_slots() {
            let row = np + s;
            let terms = dag.poly_offsets[row] as usize..dag.poly_offsets[row + 1] as usize;
            for t in terms {
                let factors = dag.term_offsets[t] as usize..dag.term_offsets[t + 1] as usize;
                for f in factors {
                    assert!(
                        dag.var_ids[f] < nl + s as u32,
                        "slot {s} references a not-yet-computed value"
                    );
                }
            }
        }
    }
}
