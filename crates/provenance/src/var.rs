//! Provenance variables and their registry.
//!
//! A [`Var`] is a dense 32-bit id; the [`VarRegistry`] maps ids to the
//! human-readable names used in the paper (`p1`, `f1`, `m3`, and
//! meta-variables such as `Business` introduced by abstraction).

use cobra_util::{Interner, Symbol};
use std::fmt;

/// A provenance variable (an interned name).
///
/// Ordering follows registration order and is the canonical variable order
/// used inside monomials.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

/// Registry of provenance variables: name ⇄ [`Var`].
///
/// One registry is shared across a whole COBRA session; polynomials,
/// abstraction trees and valuations all refer to the same variable space.
#[derive(Default, Clone, Debug)]
pub struct VarRegistry {
    interner: Interner,
}

impl VarRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a variable by name.
    pub fn var(&mut self, name: &str) -> Var {
        Var(self.interner.intern(name).0)
    }

    /// Registers many variables at once, in order.
    pub fn vars<'a>(&mut self, names: impl IntoIterator<Item = &'a str>) -> Vec<Var> {
        names.into_iter().map(|n| self.var(n)).collect()
    }

    /// Looks a variable up by name without registering it.
    pub fn lookup(&self, name: &str) -> Option<Var> {
        self.interner.get(name).map(|s| Var(s.0))
    }

    /// Resolves a variable to its name.
    ///
    /// # Panics
    /// Panics if `v` is not from this registry.
    pub fn name(&self, v: Var) -> &str {
        self.interner.resolve(Symbol(v.0))
    }

    /// Registers a fresh variable with a name based on `base`, appending a
    /// numeric suffix if the base name is taken. Used for meta-variables
    /// whose natural name collides with an existing variable.
    pub fn fresh(&mut self, base: &str) -> Var {
        if self.lookup(base).is_none() {
            return self.var(base);
        }
        for i in 1.. {
            let candidate = format!("{base}#{i}");
            if self.lookup(&candidate).is_none() {
                return self.var(&candidate);
            }
        }
        unreachable!()
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True iff no variable has been registered.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Iterates all `(var, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &str)> {
        self.interner.iter().map(|(s, n)| (Var(s.0), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_round_trip() {
        let mut reg = VarRegistry::new();
        let p1 = reg.var("p1");
        let m1 = reg.var("m1");
        assert_eq!(reg.var("p1"), p1);
        assert_ne!(p1, m1);
        assert_eq!(reg.name(p1), "p1");
        assert_eq!(reg.lookup("m1"), Some(m1));
        assert_eq!(reg.lookup("nope"), None);
    }

    #[test]
    fn fresh_avoids_collisions() {
        let mut reg = VarRegistry::new();
        let a = reg.var("Business");
        let b = reg.fresh("Business");
        assert_ne!(a, b);
        assert_eq!(reg.name(b), "Business#1");
        let c = reg.fresh("Business");
        assert_eq!(reg.name(c), "Business#2");
        let d = reg.fresh("Special");
        assert_eq!(reg.name(d), "Special");
    }

    #[test]
    fn bulk_registration_preserves_order() {
        let mut reg = VarRegistry::new();
        let vs = reg.vars(["a", "b", "c"]);
        assert!(vs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(reg.len(), 3);
    }
}
