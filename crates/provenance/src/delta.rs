//! Delta updates to polynomial sets: the `O(touched)` mutation path.
//!
//! Long-lived sessions mean the underlying data changes while compiled
//! programs and plans are hot. A [`PolyDelta`] describes tuple inserts,
//! deletes and coefficient changes as term-level edits against a
//! [`PolySet`]; [`PolySet::apply_delta`] patches the set in place in
//! `O(ops · log terms)` and returns a [`DeltaReport`] saying exactly which
//! polynomials changed and whether any *monomial set* changed — the
//! structural/coefficient-only split the higher layers use to invalidate
//! only the caches a delta actually touches (compiled CSR rows, group
//! analysis, plan tables).
//!
//! Application is atomic: every op is validated against the set before
//! the first mutation, so an invalid delta leaves the set untouched.

use crate::monomial::Monomial;
use crate::poly::Coeff;
use crate::polyset::PolySet;
use cobra_util::FxHashSet;
use std::fmt;

/// The edit a [`DeltaOp`] applies to one monomial's coefficient.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaAction<C: Coeff> {
    /// Add `c` to the coefficient — a tuple insert contributes its
    /// monomial; a negative `c` models partial retraction. Adding to an
    /// absent monomial creates it; cancelling to zero removes it.
    Add(C),
    /// Set the coefficient to exactly `c` (zero removes the term).
    Set(C),
    /// Remove the monomial entirely (tuple delete).
    Remove,
}

/// One term-level edit against a polynomial of a [`PolySet`].
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaOp<C: Coeff> {
    /// Index of the target polynomial in the set (insertion order).
    pub poly: usize,
    /// The monomial being edited.
    pub monomial: Monomial,
    /// What happens to its coefficient.
    pub action: DeltaAction<C>,
}

/// A batch of term-level edits applied atomically by
/// [`PolySet::apply_delta`]. Ops apply in order, so a delete followed by
/// a re-insert of the same monomial behaves like two sequential edits.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PolyDelta<C: Coeff> {
    ops: Vec<DeltaOp<C>>,
}

impl<C: Coeff> PolyDelta<C> {
    /// An empty delta.
    pub fn new() -> Self {
        PolyDelta { ops: Vec::new() }
    }

    /// Appends an arbitrary op.
    pub fn push(&mut self, op: DeltaOp<C>) {
        self.ops.push(op);
    }

    /// Appends an [`DeltaAction::Add`] op.
    pub fn add(&mut self, poly: usize, monomial: Monomial, coeff: C) {
        self.push(DeltaOp {
            poly,
            monomial,
            action: DeltaAction::Add(coeff),
        });
    }

    /// Appends a [`DeltaAction::Set`] op.
    pub fn set(&mut self, poly: usize, monomial: Monomial, coeff: C) {
        self.push(DeltaOp {
            poly,
            monomial,
            action: DeltaAction::Set(coeff),
        });
    }

    /// Appends a [`DeltaAction::Remove`] op.
    pub fn remove(&mut self, poly: usize, monomial: Monomial) {
        self.push(DeltaOp {
            poly,
            monomial,
            action: DeltaAction::Remove,
        });
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the delta has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp<C>] {
        &self.ops
    }
}

/// What applying a delta actually changed, per polynomial.
///
/// No-op edits (adding zero, setting a coefficient to its current value,
/// removing an absent monomial) do **not** mark a polynomial touched, so
/// the report is safe to drive cache invalidation directly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Polynomials whose *monomial set* changed (a term appeared or
    /// vanished), sorted and deduplicated. These need their CSR rows,
    /// group analysis and plan statistics rebuilt.
    pub structural_polys: Vec<usize>,
    /// Polynomials where only coefficient *values* changed (same monomial
    /// set), sorted, deduplicated, and disjoint from `structural_polys`.
    /// These keep every shape-derived cache; only coefficients reload.
    pub coeff_polys: Vec<usize>,
    /// Number of ops that changed a term (the churn measure compaction
    /// counters accumulate).
    pub terms_touched: usize,
}

impl DeltaReport {
    /// All touched polynomial indices (structural ∪ coefficient-only),
    /// sorted and deduplicated.
    pub fn touched(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .structural_polys
            .iter()
            .chain(&self.coeff_polys)
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// True iff any polynomial's monomial set changed.
    pub fn is_structural(&self) -> bool {
        !self.structural_polys.is_empty()
    }

    /// True iff the delta changed nothing.
    pub fn is_noop(&self) -> bool {
        self.structural_polys.is_empty() && self.coeff_polys.is_empty()
    }
}

/// Why a delta could not be applied (the set is left untouched).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An op addressed a polynomial index outside the set.
    NoSuchPoly {
        /// The offending index.
        index: usize,
        /// The set's polynomial count.
        len: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::NoSuchPoly { index, len } => {
                write!(f, "delta op addresses polynomial {index}, but the set has {len}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

impl<C: Coeff> PolySet<C> {
    /// Applies a delta in place, in `O(ops · log terms)`.
    ///
    /// Each op resolves the monomial's current coefficient, computes the
    /// new one, and rewrites the term through
    /// [`Polynomial::set_term`](crate::Polynomial::set_term); the returned
    /// [`DeltaReport`] classifies every genuinely changed polynomial as
    /// structural or coefficient-only.
    ///
    /// # Errors
    /// [`DeltaError::NoSuchPoly`] if any op addresses an out-of-range
    /// polynomial — checked up front, so a failed application leaves the
    /// set untouched.
    pub fn apply_delta(&mut self, delta: &PolyDelta<C>) -> Result<DeltaReport, DeltaError> {
        let len = self.len();
        if let Some(op) = delta.ops().iter().find(|op| op.poly >= len) {
            return Err(DeltaError::NoSuchPoly {
                index: op.poly,
                len,
            });
        }
        let mut structural: FxHashSet<usize> = FxHashSet::default();
        let mut coeff_only: FxHashSet<usize> = FxHashSet::default();
        let mut terms_touched = 0usize;
        for op in delta.ops() {
            let poly = self.poly_mut(op.poly).expect("validated above");
            let old = poly.coeff_of(&op.monomial);
            let new = match &op.action {
                DeltaAction::Add(c) => old.add(c),
                DeltaAction::Set(c) => c.clone(),
                DeltaAction::Remove => C::zero(),
            };
            if new == old {
                continue;
            }
            if old.is_zero() || new.is_zero() {
                structural.insert(op.poly);
            } else {
                coeff_only.insert(op.poly);
            }
            poly.set_term(op.monomial.clone(), new);
            terms_touched += 1;
        }
        let mut structural_polys: Vec<usize> = structural.iter().copied().collect();
        structural_polys.sort_unstable();
        let mut coeff_polys: Vec<usize> = coeff_only
            .into_iter()
            .filter(|p| !structural.contains(p))
            .collect();
        coeff_polys.sort_unstable();
        Ok(DeltaReport {
            structural_polys,
            coeff_polys,
            terms_touched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::Polynomial;
    use crate::var::VarRegistry;
    use cobra_util::Rat;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn sample() -> (VarRegistry, PolySet<Rat>) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut set = PolySet::new();
        set.push(
            "P1",
            Polynomial::from_terms([
                (Monomial::var(x), rat("2")),
                (Monomial::var(y), rat("3")),
            ]),
        );
        set.push(
            "P2",
            Polynomial::from_terms([(Monomial::from_pairs([(x, 1), (y, 1)]), rat("1"))]),
        );
        (reg, set)
    }

    #[test]
    fn coeff_only_edits_keep_shape() {
        let (mut reg, mut set) = sample();
        let x = reg.var("x");
        let mut delta = PolyDelta::new();
        delta.add(0, Monomial::var(x), rat("0.5"));
        let report = set.apply_delta(&delta).unwrap();
        assert_eq!(report.coeff_polys, vec![0]);
        assert!(report.structural_polys.is_empty());
        assert!(!report.is_structural());
        assert_eq!(report.terms_touched, 1);
        assert_eq!(set.poly(0).unwrap().coeff_of(&Monomial::var(x)), rat("2.5"));
        assert_eq!(set.total_monomials(), 3);
    }

    #[test]
    fn inserts_and_removes_are_structural() {
        let (mut reg, mut set) = sample();
        let x = reg.var("x");
        let z = reg.var("z");
        let mut delta = PolyDelta::new();
        delta.add(1, Monomial::var(z), rat("7")); // new monomial, new var
        delta.remove(0, Monomial::var(x));
        delta.set(0, Monomial::var(reg.var("y")), rat("4")); // coeff-only
        let report = set.apply_delta(&delta).unwrap();
        assert_eq!(report.structural_polys, vec![0, 1]);
        assert!(report.coeff_polys.is_empty()); // poly 0 already structural
        assert_eq!(report.touched(), vec![0, 1]);
        assert_eq!(set.poly(0).unwrap().num_terms(), 1);
        assert_eq!(set.poly(1).unwrap().coeff_of(&Monomial::var(z)), rat("7"));
    }

    #[test]
    fn cancellation_to_zero_is_structural() {
        let (mut reg, mut set) = sample();
        let x = reg.var("x");
        let mut delta = PolyDelta::new();
        delta.add(0, Monomial::var(x), rat("-2"));
        let report = set.apply_delta(&delta).unwrap();
        assert_eq!(report.structural_polys, vec![0]);
        assert_eq!(set.poly(0).unwrap().coeff_of(&Monomial::var(x)), Rat::ZERO);
    }

    #[test]
    fn noop_edits_touch_nothing() {
        let (mut reg, mut set) = sample();
        let x = reg.var("x");
        let before = set.clone();
        let mut delta = PolyDelta::new();
        delta.add(0, Monomial::var(x), Rat::ZERO); // add zero
        delta.set(0, Monomial::var(x), rat("2")); // set to current value
        delta.remove(1, Monomial::var(reg.var("absent"))); // remove absent
        let report = set.apply_delta(&delta).unwrap();
        assert!(report.is_noop());
        assert_eq!(report.terms_touched, 0);
        assert_eq!(set, before);
    }

    #[test]
    fn delete_then_reinsert_round_trips() {
        let (mut reg, mut set) = sample();
        let x = reg.var("x");
        let before = set.clone();
        let mut delta = PolyDelta::new();
        delta.remove(0, Monomial::var(x));
        delta.add(0, Monomial::var(x), rat("2"));
        let report = set.apply_delta(&delta).unwrap();
        // both ops individually changed the monomial set
        assert_eq!(report.structural_polys, vec![0]);
        assert_eq!(report.terms_touched, 2);
        assert_eq!(set, before);
    }

    #[test]
    fn invalid_index_is_atomic() {
        let (mut reg, mut set) = sample();
        let x = reg.var("x");
        let before = set.clone();
        let mut delta = PolyDelta::new();
        delta.add(0, Monomial::var(x), rat("100"));
        delta.remove(9, Monomial::var(x));
        let err = set.apply_delta(&delta).unwrap_err();
        assert_eq!(err, DeltaError::NoSuchPoly { index: 9, len: 2 });
        assert!(err.to_string().contains("polynomial 9"));
        assert_eq!(set, before, "failed application must leave the set untouched");
    }
}
