//! The provenance-semiring framework of Green, Karvounarakis & Tannen
//! (PODS 2007) — the model the paper cites as \[5\].
//!
//! Provenance polynomials are the *free* commutative semiring ℕ\[X\]; every
//! other provenance semantics is obtained by a semiring homomorphism from
//! it. This module provides the [`Semiring`] abstraction, the standard
//! instances used in the literature, and [`SemiringHom`] with the
//! commutation property (`hom(eval_poly) = eval_hom-image`) that underpins
//! COBRA's correctness guarantee (paper §1: polynomial construction
//! "commutes with variable valuations").
//!
//! `cobra-engine` evaluates K-relations over any of these semirings; the
//! COBRA pipeline itself instantiates the framework with polynomials over
//! exact rationals (aggregate provenance in the style of Amsterdamer,
//! Deutch & Tannen, PODS 2011 — the paper's \[2\]).

use crate::poly::{Coeff, Polynomial};
use crate::valuation::Valuation;
use crate::var::Var;
use std::collections::BTreeSet;
use std::fmt::Debug;

/// A commutative semiring `(K, ⊕, ⊗, 0, 1)`.
///
/// Laws (checked by the property tests in this module and in
/// `tests/semiring_laws.rs`): `⊕` and `⊗` are associative and commutative
/// with identities `zero`/`one`; `⊗` distributes over `⊕`; `zero` is
/// absorbing for `⊗`.
pub trait Semiring: Clone + PartialEq + Debug {
    /// Additive identity (annotation of absent tuples).
    fn zero() -> Self;
    /// Multiplicative identity (annotation of "simply present" tuples).
    fn one() -> Self;
    /// Alternative use of data (union / projection).
    fn plus(&self, other: &Self) -> Self;
    /// Joint use of data (join).
    fn times(&self, other: &Self) -> Self;
    /// Is this the additive identity?
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

/// ℕ (here `u64`) with `+`/`×`: bag semantics, counts derivations.
impl Semiring for u64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn plus(&self, other: &Self) -> Self {
        self + other
    }
    fn times(&self, other: &Self) -> Self {
        self * other
    }
}

/// The Boolean semiring `({false, true}, ∨, ∧)`: set semantics / lineage
/// ("is this tuple in the result at all?").
impl Semiring for bool {
    fn zero() -> Self {
        false
    }
    fn one() -> Self {
        true
    }
    fn plus(&self, other: &Self) -> Self {
        *self || *other
    }
    fn times(&self, other: &Self) -> Self {
        *self && *other
    }
}

/// ℚ with `+`/`×` — the numeric target of aggregate-provenance
/// valuations (every commutative ring is in particular a semiring).
impl Semiring for cobra_util::Rat {
    fn zero() -> Self {
        cobra_util::Rat::ZERO
    }
    fn one() -> Self {
        cobra_util::Rat::ONE
    }
    fn plus(&self, other: &Self) -> Self {
        *self + *other
    }
    fn times(&self, other: &Self) -> Self {
        *self * *other
    }
}

/// The tropical semiring `(ℕ ∪ {∞}, min, +)`: cost of the cheapest
/// derivation. `∞` (= [`Tropical::INFINITY`]) is the additive identity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord, Hash)]
pub struct Tropical(pub u64);

impl Tropical {
    /// The absorbing "no derivation" element.
    pub const INFINITY: Tropical = Tropical(u64::MAX);

    /// Finite cost constructor.
    pub fn cost(c: u64) -> Tropical {
        assert!(c != u64::MAX, "u64::MAX is reserved for infinity");
        Tropical(c)
    }

    /// True iff this is the infinite cost.
    pub fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Semiring for Tropical {
    fn zero() -> Self {
        Tropical::INFINITY
    }
    fn one() -> Self {
        Tropical(0)
    }
    fn plus(&self, other: &Self) -> Self {
        Tropical(self.0.min(other.0))
    }
    fn times(&self, other: &Self) -> Self {
        if self.is_infinite() || other.is_infinite() {
            Tropical::INFINITY
        } else {
            Tropical(self.0 + other.0)
        }
    }
}

/// The access-control semiring (Foster, Green & Tannen): clearance levels
/// ordered `Public < Confidential < Secret < TopSecret < Never`.
/// `plus` = min (the most permissive alternative derivation wins),
/// `times` = max (joint use requires the stricter clearance). `Never` is
/// the annotation of unusable data (the additive identity).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Access {
    Public,
    Confidential,
    Secret,
    TopSecret,
    /// Absorbing "not available at any clearance".
    Never,
}

impl Semiring for Access {
    fn zero() -> Self {
        Access::Never
    }
    fn one() -> Self {
        Access::Public
    }
    fn plus(&self, other: &Self) -> Self {
        *self.min(other)
    }
    fn times(&self, other: &Self) -> Self {
        *self.max(other)
    }
}

/// Why-provenance `Why(X)`: sets of witnesses, each witness a set of base
/// tuples. `plus` = union of witness sets, `times` = pairwise union of
/// witnesses. (Buneman, Khanna & Tan's model as cast into the semiring
/// framework.)
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Why(pub BTreeSet<BTreeSet<Var>>);

impl Why {
    /// The annotation of a base tuple tagged `v`: one witness `{v}`.
    pub fn tuple(v: Var) -> Why {
        Why(BTreeSet::from([BTreeSet::from([v])]))
    }
}

impl Semiring for Why {
    fn zero() -> Self {
        Why(BTreeSet::new())
    }
    fn one() -> Self {
        // One empty witness: derivable from nothing.
        Why(BTreeSet::from([BTreeSet::new()]))
    }
    fn plus(&self, other: &Self) -> Self {
        Why(self.0.union(&other.0).cloned().collect())
    }
    fn times(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        Why(out)
    }
}

/// Polynomials form a semiring over any coefficient ring — in particular
/// ℕ\[X\] (how-provenance, the free commutative semiring) and the ℚ\[X\]
/// aggregate-provenance expressions COBRA compresses.
impl<C: Coeff> Semiring for Polynomial<C> {
    fn zero() -> Self {
        Polynomial::zero()
    }
    fn one() -> Self {
        Polynomial::constant(C::one())
    }
    fn plus(&self, other: &Self) -> Self {
        self.add(other)
    }
    fn times(&self, other: &Self) -> Self {
        self.mul(other)
    }
}

/// A semiring homomorphism `K₁ → K₂`: preserves 0, 1, ⊕ and ⊗.
///
/// The fundamental theorem of provenance semirings: any variable valuation
/// `X → K` extends uniquely to a homomorphism ℕ\[X\] → K, and query
/// evaluation commutes with it. [`eval_hom`] is that extension for
/// polynomial provenance; COBRA's correctness (evaluating the compressed
/// polynomial ≡ re-running the query on modified inputs) is an instance.
pub trait SemiringHom<K1: Semiring, K2: Semiring> {
    /// Applies the homomorphism.
    fn apply(&self, k: &K1) -> K2;
}

/// The evaluation homomorphism `C[X] → C` induced by a valuation.
pub struct EvalHom<'a, C: Coeff> {
    valuation: &'a Valuation<C>,
}

impl<'a, C: Coeff> EvalHom<'a, C> {
    /// Wraps a (total, via default) valuation as a homomorphism.
    pub fn new(valuation: &'a Valuation<C>) -> Self {
        EvalHom { valuation }
    }
}

impl<C: Coeff + Semiring> SemiringHom<Polynomial<C>, C> for EvalHom<'_, C> {
    fn apply(&self, p: &Polynomial<C>) -> C {
        p.eval(self.valuation)
            .expect("EvalHom requires a total valuation (set a default)")
    }
}

/// The drop-to-Boolean homomorphism ℕ → 𝔹 (bag → set semantics).
pub struct CountToBool;

impl SemiringHom<u64, bool> for CountToBool {
    fn apply(&self, k: &u64) -> bool {
        *k > 0
    }
}

/// `eval_hom(p, val)` — convenience wrapper for the evaluation
/// homomorphism; total because `val` must carry a default.
pub fn eval_hom<C: Coeff + Semiring>(p: &Polynomial<C>, val: &Valuation<C>) -> C {
    EvalHom::new(val).apply(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use cobra_util::Rat;

    /// Checks all commutative-semiring laws on a triple of sample values.
    fn check_laws<K: Semiring>(a: K, b: K, c: K) {
        let zero = K::zero();
        let one = K::one();
        // identities
        assert_eq!(a.plus(&zero), a);
        assert_eq!(a.times(&one), a);
        // commutativity
        assert_eq!(a.plus(&b), b.plus(&a));
        assert_eq!(a.times(&b), b.times(&a));
        // associativity
        assert_eq!(a.plus(&b).plus(&c), a.plus(&b.plus(&c)));
        assert_eq!(a.times(&b).times(&c), a.times(&b.times(&c)));
        // distributivity
        assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
        // absorption
        assert!(a.times(&zero).is_zero());
    }

    #[test]
    fn counting_semiring_laws() {
        check_laws(3u64, 5, 7);
    }

    #[test]
    fn boolean_semiring_laws() {
        check_laws(true, false, true);
        check_laws(false, false, true);
    }

    #[test]
    fn tropical_semiring_laws() {
        check_laws(Tropical(2), Tropical(9), Tropical::INFINITY);
        assert_eq!(Tropical(3).plus(&Tropical(5)), Tropical(3));
        assert_eq!(Tropical(3).times(&Tropical(5)), Tropical(8));
    }

    #[test]
    fn access_semiring_laws() {
        use Access::*;
        check_laws(Public, Secret, Never);
        check_laws(Confidential, TopSecret, Public);
        // a tuple derivable publicly OR secretly is public
        assert_eq!(Public.plus(&Secret), Public);
        // joining confidential with secret data requires secret clearance
        assert_eq!(Confidential.times(&Secret), Secret);
        assert_eq!(TopSecret.times(&Never), Never);
    }

    #[test]
    fn why_semiring_laws() {
        let a = Why::tuple(Var(1));
        let b = Why::tuple(Var(2));
        let c = Why::tuple(Var(3)).plus(&Why::tuple(Var(1)));
        check_laws(a.clone(), b.clone(), c);
        // joint use merges witnesses
        let ab = a.times(&b);
        assert_eq!(ab.0.len(), 1);
        assert!(ab.0.contains(&BTreeSet::from([Var(1), Var(2)])));
    }

    #[test]
    fn polynomial_semiring_laws() {
        let x = Polynomial::<Rat>::var(Var(0));
        let y = Polynomial::<Rat>::var(Var(1));
        let two = Polynomial::constant(Rat::int(2));
        check_laws(x.clone(), y.clone(), two.clone());
        check_laws(x.plus(&y), two.times(&x), Polynomial::zero());
    }

    #[test]
    fn eval_hom_is_a_homomorphism() {
        let x = Polynomial::<Rat>::var(Var(0));
        let y = Polynomial::<Rat>::var(Var(1));
        let val = Valuation::with_default(Rat::ONE)
            .bind(Var(0), Rat::int(3))
            .bind(Var(1), Rat::int(4));
        let h = |p: &Polynomial<Rat>| eval_hom(p, &val);
        let p = x.plus(&y);
        let q = x.times(&y).plus(&Polynomial::constant(Rat::int(2)));
        assert_eq!(h(&p.plus(&q)), h(&p) + h(&q));
        assert_eq!(h(&p.times(&q)), h(&p) * h(&q));
        assert_eq!(h(&Polynomial::zero()), Rat::ZERO);
        assert_eq!(h(&Polynomial::constant(Rat::ONE)), Rat::ONE);
    }

    #[test]
    fn count_to_bool_is_a_homomorphism() {
        let h = CountToBool;
        for a in [0u64, 1, 5] {
            for b in [0u64, 2] {
                assert_eq!(h.apply(&(a + b)), h.apply(&a).plus(&h.apply(&b)));
                assert_eq!(h.apply(&(a * b)), h.apply(&a).times(&h.apply(&b)));
            }
        }
    }

    #[test]
    fn how_provenance_specializes_to_counting() {
        // ℕ[X] under the valuation "every var ↦ 1" counts derivations.
        let x = Var(0);
        let y = Var(1);
        // provenance of a tuple derived two ways: x·y + x
        let p: Polynomial<Rat> = Polynomial::from_terms([
            (Monomial::from_pairs([(x, 1), (y, 1)]), Rat::ONE),
            (Monomial::var(x), Rat::ONE),
        ]);
        let ones = Valuation::with_default(Rat::ONE);
        assert_eq!(eval_hom(&p, &ones), Rat::int(2));
    }
}
