//! Compiled batch evaluation: CSR polynomial programs and scenario sweeps.
//!
//! COBRA's value proposition is that compressed provenance makes *repeated*
//! hypothetical evaluation cheap — the paper's headline metric is the
//! assignment speedup over many scenarios (§4). The tree-walking
//! [`Polynomial::eval_dense`](crate::Polynomial::eval_dense) path pays per-term pointer chasing (every
//! monomial is its own heap allocation) and a `powi` call per variable
//! occurrence on every scenario. This module lowers a whole [`PolySet`]
//! once into a flat **CSR program** and then amortizes that work across
//! arbitrarily many scenarios:
//!
//! * [`EvalProgram`] — contiguous coefficient / monomial-offset /
//!   variable-id / exponent arrays. Variables are remapped to a dense
//!   *local* index space (`0..num_locals`), so a scenario is a small flat
//!   table even when the global registry holds millions of variables.
//! * [`BatchEvaluator`] — evaluates many scenarios × many polynomials in
//!   one call, splitting scenarios across cores
//!   ([`cobra_util::par`]) and, on the `f64` fast path, blocking scenarios
//!   into SIMD-friendly lanes so the term loop vectorizes.
//!
//! The exact [`Rat`] path is retained for correctness
//! checks: `EvalProgram<Rat>` evaluation is term-for-term identical to
//! [`Polynomial::eval`](crate::Polynomial::eval). On the `f64` path the lane kernel performs the
//! same multiply/add sequence per scenario as `eval_dense`, so results are
//! bit-for-bit identical, not merely close.

use crate::kernel::{self, FixedProgram, FixedScratch};
use crate::monomial::Monomial;
use crate::poly::{Coeff, Polynomial};
use crate::polyset::PolySet;
use crate::valuation::{DenseValuation, Valuation};
use crate::var::Var;
use cobra_util::kernel::F64Kernel;
use cobra_util::{par, ArcSlice, DenseRemap, Rat};
use std::sync::{Arc, OnceLock};

pub use crate::kernel::LaneScratch;

/// Number of scenarios evaluated together by the `f64` lane kernels — one
/// parallel work item. 64 lanes keep the per-term working set (512 B per
/// accumulator vector) in L1 while the whole CSR program streams through
/// exactly once per block.
pub const LANES: usize = 64;


/// A [`PolySet`] lowered to flat CSR arrays for repeated evaluation.
///
/// Layout (all indices `u32`; a program is limited to 2³²−1 terms):
///
/// ```text
/// poly_offsets: [0 .. num_polys]  → term range of each polynomial
/// coeffs:       [0 .. num_terms]  → coefficient of each term
/// term_offsets: [0 .. num_terms]  → factor range of each term
/// var_ids:      [0 .. num_factors] → LOCAL variable id of each factor
/// exps:         [0 .. num_factors] → exponent of each factor
/// ```
///
/// The CSR arrays are [`ArcSlice`]s: normally backed by the `Vec`s the
/// compiler produced, but a program loaded from a persisted artifact
/// ([`crate::persist`]) aliases the memory-mapped file directly — no
/// re-allocation, cold-start cost is page faults.
///
/// ## Shared-subterm slots
///
/// A program produced by the DAG rewriter ([`crate::dag`]) carries
/// `num_slots > 0` extra CSR rows *after* the output rows: row
/// `num_polys + s` defines slot `s`, a named intermediate other rows
/// reference through the extended variable index space
/// `num_locals + s`. Slots are topologically ordered (a slot only
/// references earlier slots), so every evaluation path computes the
/// slot rows first and then the output rows — slots are just extra
/// lanes, and the observable surface (`num_polys`, `labels`, binding
/// width `num_locals`) is identical to the flat program's.
#[derive(Clone, Debug)]
pub struct EvalProgram<C: Coeff> {
    pub(crate) labels: Vec<String>,
    pub(crate) poly_offsets: ArcSlice<u32>,
    pub(crate) coeffs: ArcSlice<C>,
    pub(crate) term_offsets: ArcSlice<u32>,
    pub(crate) var_ids: ArcSlice<u32>,
    pub(crate) exps: ArcSlice<u32>,
    /// Local index → global variable.
    pub(crate) locals: Vec<Var>,
    /// Shared-subterm rows appended after the output rows (0 for a flat
    /// program; see the type-level docs).
    pub(crate) num_slots: usize,
    /// Global variable → local index: a registry-scoped dense table, so
    /// lookups are one indexed load and binding performs no hashing.
    pub(crate) local_of: DenseRemap,
    /// Lazily-prepared fixed-point twin of an exact program (`None` once
    /// initialized if the program does not fit the fixed-point guards).
    /// Only meaningful for `C = Rat`; see
    /// [`fixed_program`](EvalProgram::fixed_program).
    fixed: OnceLock<Option<Arc<FixedProgram>>>,
}

impl<C: Coeff> EvalProgram<C> {
    /// Lowers a polynomial set. Variables are numbered in first-occurrence
    /// order (deterministic for a canonical set).
    pub fn compile(set: &PolySet<C>) -> EvalProgram<C> {
        let mut labels = Vec::with_capacity(set.len());
        let mut poly_offsets = Vec::with_capacity(set.len() + 1);
        let mut coeffs = Vec::new();
        let mut term_offsets = vec![0u32];
        let mut var_ids = Vec::new();
        let mut exps = Vec::new();
        let mut locals = Vec::new();
        let mut local_of = DenseRemap::new();

        poly_offsets.push(0);
        for (label, poly) in set.iter() {
            labels.push(label.to_owned());
            for (m, c) in poly.iter() {
                coeffs.push(c.clone());
                for (v, e) in m.iter() {
                    let (local, fresh) = local_of.get_or_insert(v.0);
                    if fresh {
                        locals.push(v);
                    }
                    var_ids.push(local);
                    exps.push(e);
                }
                term_offsets.push(
                    u32::try_from(var_ids.len())
                        .expect("EvalProgram limited to u32::MAX factors"),
                );
            }
            poly_offsets.push(
                u32::try_from(coeffs.len()).expect("EvalProgram limited to u32::MAX terms"),
            );
        }

        EvalProgram {
            labels,
            poly_offsets: poly_offsets.into(),
            coeffs: coeffs.into(),
            term_offsets: term_offsets.into(),
            var_ids: var_ids.into(),
            exps: exps.into(),
            locals,
            local_of,
            num_slots: 0,
            fixed: OnceLock::new(),
        }
    }

    /// Assembles a program directly from CSR parts — the constructor the
    /// DAG rewriter ([`crate::dag`]) emits its slot rows through. The
    /// caller guarantees CSR consistency and topological slot order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        labels: Vec<String>,
        poly_offsets: Vec<u32>,
        coeffs: Vec<C>,
        term_offsets: Vec<u32>,
        var_ids: Vec<u32>,
        exps: Vec<u32>,
        locals: Vec<Var>,
        local_of: DenseRemap,
        num_slots: usize,
    ) -> EvalProgram<C> {
        debug_assert_eq!(poly_offsets.len(), labels.len() + num_slots + 1);
        EvalProgram {
            labels,
            poly_offsets: poly_offsets.into(),
            coeffs: coeffs.into(),
            term_offsets: term_offsets.into(),
            var_ids: var_ids.into(),
            exps: exps.into(),
            locals,
            local_of,
            num_slots,
            fixed: OnceLock::new(),
        }
    }

    /// Reassembles a program from persisted parts: owned labels/locals and
    /// (possibly file-backed) CSR slices. The `local_of` remap is rebuilt
    /// from `locals`, which lists globals in local-index order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_persisted_parts(
        labels: Vec<String>,
        poly_offsets: ArcSlice<u32>,
        coeffs: ArcSlice<C>,
        term_offsets: ArcSlice<u32>,
        var_ids: ArcSlice<u32>,
        exps: ArcSlice<u32>,
        locals: Vec<Var>,
        num_slots: usize,
    ) -> EvalProgram<C> {
        let local_of: DenseRemap = locals.iter().map(|v| v.0).collect();
        EvalProgram {
            labels,
            poly_offsets,
            coeffs,
            term_offsets,
            var_ids,
            exps,
            locals,
            local_of,
            num_slots,
            fixed: OnceLock::new(),
        }
    }

    /// The CSR arrays in persistence order, for the [`crate::persist`]
    /// encoder: `(poly_offsets, coeffs, term_offsets, var_ids, exps)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn csr_parts(&self) -> (&[u32], &[C], &[u32], &[u32], &[u32]) {
        (
            &self.poly_offsets,
            &self.coeffs,
            &self.term_offsets,
            &self.var_ids,
            &self.exps,
        )
    }

    /// Reconstructs the canonical [`PolySet`] this program was compiled
    /// from. [`compile`](Self::compile) iterates the set in its canonical
    /// order, so `compile(&prog.decompile())` reproduces `prog`'s CSR
    /// arrays exactly — the property session re-hydration relies on to
    /// re-plan compressions from a persisted program alone.
    ///
    /// # Panics
    /// Panics on a DAG program (`num_slots > 0`): slot rows are a derived
    /// evaluation artifact, not part of any canonical set — decompile the
    /// flat source program instead.
    pub fn decompile(&self) -> PolySet<C> {
        assert_eq!(self.num_slots, 0, "cannot decompile a DAG program");
        let mut set = PolySet::new();
        for (p, label) in self.labels.iter().enumerate() {
            let terms = self.poly_offsets[p] as usize..self.poly_offsets[p + 1] as usize;
            let poly = Polynomial::from_terms(terms.map(|t| {
                let factors =
                    self.term_offsets[t] as usize..self.term_offsets[t + 1] as usize;
                let m = Monomial::from_pairs(
                    factors.map(|f| (self.locals[self.var_ids[f] as usize], self.exps[f])),
                );
                (m, self.coeffs[t].clone())
            }));
            set.push(label, poly);
        }
        set
    }

    /// Rebuilds this program against `set` after a structural delta
    /// ([`crate::delta`]): the CSR rows of untouched polynomials are
    /// spliced over verbatim (straight `memcpy`s, no per-factor interning
    /// or hashing), and only the polynomials listed in `touched` (sorted,
    /// deduplicated indices into the set) are re-emitted from their
    /// canonical term lists. New variables are appended to the local
    /// space *after* every existing local.
    ///
    /// The result can therefore differ from a fresh
    /// [`compile`](Self::compile) of `set` in local numbering — but local
    /// ids only select binding slots. Per-term factor order still follows
    /// each monomial's canonical order and per-polynomial term order still
    /// follows the canonical term list, so every evaluation path produces
    /// **bit-identical** answers to the freshly compiled program, and
    /// [`decompile`](Self::decompile) still returns exactly `set`.
    ///
    /// # Panics
    /// Panics if `set` does not have the same polynomial count (deltas
    /// edit terms, never add or drop polynomials), or on a DAG program
    /// (`num_slots > 0`) — deltas patch the flat program; DAG programs
    /// are recompiled from the patched flat source.
    pub fn patched(&self, set: &PolySet<C>, touched: &[usize]) -> EvalProgram<C> {
        assert_eq!(self.num_slots, 0, "cannot patch a DAG program");
        assert_eq!(
            set.len(),
            self.num_polys(),
            "patched set must keep the polynomial count"
        );
        debug_assert!(
            touched.windows(2).all(|w| w[0] < w[1]),
            "touched indices must be sorted and deduplicated"
        );
        let mut poly_offsets = Vec::with_capacity(self.poly_offsets.len());
        let mut coeffs: Vec<C> = Vec::with_capacity(self.coeffs.len());
        let mut term_offsets: Vec<u32> = Vec::with_capacity(self.term_offsets.len());
        let mut var_ids: Vec<u32> = Vec::with_capacity(self.var_ids.len());
        let mut exps: Vec<u32> = Vec::with_capacity(self.exps.len());
        let mut locals = self.locals.clone();
        let mut local_of = self.local_of.clone();

        poly_offsets.push(0);
        term_offsets.push(0);
        let mut next_touched = touched.iter().copied().peekable();
        for (p, (_, poly)) in set.iter().enumerate() {
            if next_touched.peek() == Some(&p) {
                next_touched.next();
                // Re-emit the patched polynomial from its canonical terms.
                for (m, c) in poly.iter() {
                    coeffs.push(c.clone());
                    for (v, e) in m.iter() {
                        let (local, fresh) = local_of.get_or_insert(v.0);
                        if fresh {
                            locals.push(v);
                        }
                        var_ids.push(local);
                        exps.push(e);
                    }
                    term_offsets.push(
                        u32::try_from(var_ids.len())
                            .expect("EvalProgram limited to u32::MAX factors"),
                    );
                }
            } else {
                // Splice the untouched rows: factor data verbatim, term
                // offsets rebased onto the new factor array.
                let t0 = self.poly_offsets[p] as usize;
                let t1 = self.poly_offsets[p + 1] as usize;
                coeffs.extend_from_slice(&self.coeffs[t0..t1]);
                let f0 = self.term_offsets[t0] as usize;
                let f1 = self.term_offsets[t1] as usize;
                let base = var_ids.len();
                var_ids.extend_from_slice(&self.var_ids[f0..f1]);
                exps.extend_from_slice(&self.exps[f0..f1]);
                for t in t0..t1 {
                    let rebased = base + (self.term_offsets[t + 1] as usize - f0);
                    term_offsets.push(
                        u32::try_from(rebased)
                            .expect("EvalProgram limited to u32::MAX factors"),
                    );
                }
            }
            poly_offsets.push(
                u32::try_from(coeffs.len()).expect("EvalProgram limited to u32::MAX terms"),
            );
        }

        EvalProgram {
            labels: self.labels.clone(),
            poly_offsets: poly_offsets.into(),
            coeffs: coeffs.into(),
            term_offsets: term_offsets.into(),
            var_ids: var_ids.into(),
            exps: exps.into(),
            locals,
            local_of,
            num_slots: 0,
            fixed: OnceLock::new(),
        }
    }

    /// The coefficient-only fast path of [`patched`](Self::patched): every
    /// shape array (offsets, factor ids, exponents, locals) is shared via
    /// `O(1)` [`ArcSlice`] clones, and only the coefficient array is
    /// rebuilt — one `memcpy` plus the touched polynomials' values. Valid
    /// **only** when no touched polynomial's monomial set changed
    /// (`DeltaReport::is_structural()` is false).
    ///
    /// # Panics
    /// Panics if `set`'s polynomial count differs, or a touched
    /// polynomial's term count no longer matches its CSR row (a
    /// structural delta routed down the coefficient-only path), or on a
    /// DAG program (`num_slots > 0`).
    pub fn patched_coeffs(&self, set: &PolySet<C>, touched: &[usize]) -> EvalProgram<C> {
        assert_eq!(self.num_slots, 0, "cannot patch a DAG program");
        assert_eq!(
            set.len(),
            self.num_polys(),
            "patched set must keep the polynomial count"
        );
        let mut coeffs: Vec<C> = self.coeffs.to_vec();
        for &p in touched {
            let poly = set.poly(p).expect("touched index in range");
            let t0 = self.poly_offsets[p] as usize;
            let t1 = self.poly_offsets[p + 1] as usize;
            assert_eq!(
                poly.num_terms(),
                t1 - t0,
                "coefficient-only patch requires an unchanged monomial set"
            );
            for (k, (_, c)) in poly.iter().enumerate() {
                coeffs[t0 + k] = c.clone();
            }
        }
        EvalProgram {
            labels: self.labels.clone(),
            poly_offsets: self.poly_offsets.clone(),
            coeffs: coeffs.into(),
            term_offsets: self.term_offsets.clone(),
            var_ids: self.var_ids.clone(),
            exps: self.exps.clone(),
            locals: self.locals.clone(),
            local_of: self.local_of.clone(),
            num_slots: 0,
            fixed: OnceLock::new(),
        }
    }

    /// Number of polynomials.
    pub fn num_polys(&self) -> usize {
        self.labels.len()
    }

    /// Number of shared-subterm slot rows (0 for a flat program).
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of terms (monomials) across all rows, slot rows included.
    pub fn num_terms(&self) -> usize {
        self.coeffs.len()
    }

    /// Number of distinct variables referenced by the program.
    pub fn num_locals(&self) -> usize {
        self.locals.len()
    }

    /// Result-tuple labels, in program order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The global variables referenced, in local-index order.
    pub fn vars(&self) -> &[Var] {
        &self.locals
    }

    /// Local index of a global variable, if it occurs in the program.
    pub fn local_of(&self, v: Var) -> Option<u32> {
        self.local_of.get(v.0)
    }

    /// Compiles a sparse valuation into a scenario row (`num_locals`
    /// values, local-index order).
    ///
    /// # Errors
    /// Returns the first program variable the valuation does not cover.
    pub fn bind(&self, val: &Valuation<C>) -> Result<Vec<C>, Var> {
        let mut row = vec![C::zero(); self.num_locals()];
        self.bind_into(val, &mut row)?;
        Ok(row)
    }

    /// [`bind`](Self::bind) into a caller-provided row buffer — the
    /// allocation-free path scenario sweeps stream rows through.
    ///
    /// # Errors
    /// Returns the first program variable the valuation does not cover.
    ///
    /// # Panics
    /// Panics if `row.len() != num_locals()`.
    pub fn bind_into(&self, val: &Valuation<C>, row: &mut [C]) -> Result<(), Var> {
        assert_eq!(row.len(), self.num_locals(), "scenario row width");
        for (slot, &v) in row.iter_mut().zip(&self.locals) {
            *slot = val.get(v).ok_or(v)?;
        }
        Ok(())
    }

    /// Compiles a dense (global-index) valuation into a scenario row.
    pub fn bind_dense(&self, val: &DenseValuation<C>) -> Vec<C> {
        self.locals.iter().map(|&v| val.get(v).clone()).collect()
    }

    /// [`bind_dense`](Self::bind_dense) into a caller-provided row buffer.
    ///
    /// # Panics
    /// Panics if `row.len() != num_locals()`.
    pub fn bind_dense_into(&self, val: &DenseValuation<C>, row: &mut [C]) {
        assert_eq!(row.len(), self.num_locals(), "scenario row width");
        for (slot, &v) in row.iter_mut().zip(&self.locals) {
            *slot = val.get(v).clone();
        }
    }

    /// Evaluates every polynomial for one scenario row into `out`
    /// (`num_polys` values). Term-for-term the same operation order as
    /// [`Polynomial::eval_dense`](crate::Polynomial::eval_dense), so exact
    /// rings give identical results.
    ///
    /// # Panics
    /// Panics if `scenario.len() != num_locals()` or
    /// `out.len() != num_polys()`.
    pub fn eval_scenario_into(&self, scenario: &[C], out: &mut [C]) {
        assert_eq!(scenario.len(), self.num_locals(), "scenario row width");
        assert_eq!(out.len(), self.num_polys(), "output row width");
        if self.num_slots == 0 {
            for (p, slot) in out.iter_mut().enumerate() {
                *slot = self.eval_row(p, scenario);
            }
            return;
        }
        // DAG path: stage the slot values after the scenario values, in
        // the extended variable index space the slot rows were emitted
        // against, then evaluate the output rows over the staged table.
        let np = self.num_polys();
        let mut ext: Vec<C> = Vec::with_capacity(scenario.len() + self.num_slots);
        ext.extend_from_slice(scenario);
        for s in 0..self.num_slots {
            let v = self.eval_row(np + s, &ext);
            ext.push(v);
        }
        for (p, slot) in out.iter_mut().enumerate() {
            *slot = self.eval_row(p, &ext);
        }
    }

    /// One CSR row (output or slot) over a value table indexed by the
    /// extended variable space — term-for-term the operation order of the
    /// original flat walk, so flat programs are bit-unchanged.
    fn eval_row(&self, row: usize, vals: &[C]) -> C {
        let mut acc = C::zero();
        let terms = self.poly_offsets[row] as usize..self.poly_offsets[row + 1] as usize;
        for t in terms {
            let mut term = self.coeffs[t].clone();
            let factors = self.term_offsets[t] as usize..self.term_offsets[t + 1] as usize;
            for f in factors {
                let x = &vals[self.var_ids[f] as usize];
                term = term.mul(&x.pow(self.exps[f]));
            }
            acc = acc.add(&term);
        }
        acc
    }

    /// Static count of `f64` multiplications one scenario evaluation of
    /// this program performs, slot rows included: per factor one multiply
    /// into the running term plus the square-and-multiply chain of its
    /// exponent (`⌊log₂ e⌋` squarings and `popcount(e) − 1` odd-bit
    /// multiplies — the exact cost of the shared
    /// [`pow_f64`](cobra_util::kernel::pow_f64) chain). The DAG rewriter's
    /// op-reduction ratio is `flat.multiply_ops() / dag.multiply_ops()`.
    pub fn multiply_ops(&self) -> u64 {
        self.exps
            .iter()
            .map(|&e| {
                if e <= 1 {
                    1
                } else {
                    1 + (31 - e.leading_zeros()) as u64 + (e.count_ones() - 1) as u64
                }
            })
            .sum()
    }

    /// Evaluates every polynomial for one scenario row.
    pub fn eval_scenario(&self, scenario: &[C]) -> Vec<C> {
        let mut out = vec![C::zero(); self.num_polys()];
        self.eval_scenario_into(scenario, &mut out);
        out
    }
}

impl EvalProgram<Rat> {
    /// Converts an exact program into its `f64` counterpart (same shape and
    /// variable numbering, approximate coefficients).
    pub fn to_f64_program(&self) -> EvalProgram<f64> {
        EvalProgram {
            labels: self.labels.clone(),
            poly_offsets: self.poly_offsets.clone(),
            coeffs: self.coeffs.iter().map(|c| c.to_f64()).collect::<Vec<_>>().into(),
            term_offsets: self.term_offsets.clone(),
            var_ids: self.var_ids.clone(),
            exps: self.exps.clone(),
            locals: self.locals.clone(),
            local_of: self.local_of.clone(),
            num_slots: self.num_slots,
            fixed: OnceLock::new(),
        }
    }

    /// The scaled-`i128` fixed-point twin of this exact program, prepared
    /// lazily on first use and cached for the program's lifetime. `None`
    /// when the program does not fit the fixed-point guards (coefficient
    /// scale overflows `i128` or a term's degree exceeds the table cap) —
    /// such programs simply evaluate through the plain `Rat` kernel.
    /// DAG programs (`num_slots > 0`) never lower — their exact path is
    /// the slot-aware `Rat` walk, which keeps the fixed kernel's overflow
    /// pre-check sound without modelling staged slot magnitudes.
    pub fn fixed_program(&self) -> Option<&FixedProgram> {
        self.fixed
            .get_or_init(|| {
                if self.num_slots > 0 {
                    None
                } else {
                    FixedProgram::prepare(self).map(Arc::new)
                }
            })
            .as_deref()
    }

    /// One exact scenario through the kernel dispatch: the scaled
    /// fixed-point kernel when `use_fixed` (the caller's resolved
    /// [`exact_fixed_enabled`](cobra_util::kernel::exact_fixed_enabled)
    /// choice) and this program lowers, the plain `Rat` term walk
    /// otherwise — including the per-scenario overflow fallback, so the
    /// output is representation-identical either way. This is the
    /// single-row sibling of [`BatchEvaluator::eval_batch_exact_into`];
    /// the `f64` sweep engines use it for their divergence probes.
    ///
    /// # Panics
    /// Panics if `row.len() != num_locals()` or
    /// `out.len() != num_polys()`.
    pub fn eval_scenario_exact_with(
        &self,
        use_fixed: bool,
        row: &[Rat],
        out: &mut [Rat],
        scratch: &mut FixedScratch,
    ) {
        if use_fixed {
            if let Some(fp) = self.fixed_program() {
                if fp.eval_scenario_into(self, row, out, scratch) {
                    return;
                }
            }
        }
        self.eval_scenario_into(row, out);
    }
}

impl EvalProgram<f64> {
    /// The absolute-value shadow of this program: same shape and variable
    /// numbering, every coefficient replaced by its magnitude. Evaluated
    /// on the elementwise absolute values `|x|` of a scenario row it
    /// computes `Σ_j |c_j| Π |x|^e` per polynomial — the condition-number
    /// numerator a Higham-style a-priori rounding bound multiplies by
    /// `γ_k` (see [`rounding_op_counts`](Self::rounding_op_counts)).
    pub fn to_abs_program(&self) -> EvalProgram<f64> {
        EvalProgram {
            coeffs: self.coeffs.iter().map(|c| c.abs()).collect::<Vec<_>>().into(),
            ..self.clone()
        }
    }

    /// A per-polynomial upper bound `k_p` on the number of f64 roundings
    /// along any computation path of the evaluation kernels, for use in
    /// the standard a-priori bound `|computed − exact| ≤ γ_{k_p} · Σ_j
    /// |c_j| Π |x|^e` with `γ_k = k·u/(1−k·u)` (Higham, *Accuracy and
    /// Stability of Numerical Algorithms*, §3.1). Deliberately a safe
    /// overcount: `terms + 1` (the additions plus the one rounding each
    /// coefficient suffered when converted from its exact value) plus the
    /// worst term's factor cost, where a factor with exponent `e` is
    /// charged `2·bits(e) + 1` multiplications (covers both the `e == 1`
    /// fast path and `powi`'s square-and-multiply chain). An empty
    /// polynomial evaluates exactly and gets `k_p = 0`.
    ///
    /// On a DAG program the bound is computed over the slot graph: a slot
    /// row first receives its own `k_s` by the same per-row formula, and a
    /// factor referencing slot `s` with exponent `e` additionally inherits
    /// `e · k_s` (the slot's relative error enters once per multiplied
    /// copy, by the standard `(1+θ_a)(1+θ_b) = 1+θ_{a+b}` composition).
    /// Only the `num_polys` output-row bounds are returned, so the Higham
    /// shadow machinery is oblivious to whether a program is flat or DAG.
    pub fn rounding_op_counts(&self) -> Vec<u32> {
        let np = self.num_polys();
        let nl = self.num_locals();
        let mut slot_k = vec![0u32; self.num_slots];
        let row_k = |row: usize, slot_k: &[u32]| -> u32 {
            let terms = self.poly_offsets[row] as usize..self.poly_offsets[row + 1] as usize;
            let num_terms = terms.len() as u32;
            if num_terms == 0 {
                return 0;
            }
            let worst_term = terms
                .map(|t| {
                    let factors =
                        self.term_offsets[t] as usize..self.term_offsets[t + 1] as usize;
                    factors
                        .map(|f| {
                            let e = self.exps[f];
                            let chain = 2 * (32 - e.leading_zeros()) + 1;
                            let src = self.var_ids[f] as usize;
                            let inherited = if src >= nl {
                                e.saturating_mul(slot_k[src - nl])
                            } else {
                                0
                            };
                            chain.saturating_add(inherited)
                        })
                        .fold(0u32, u32::saturating_add)
                })
                .max()
                .unwrap_or(0);
            (num_terms + 1).saturating_add(worst_term)
        };
        for s in 0..self.num_slots {
            slot_k[s] = row_k(np + s, &slot_k);
        }
        (0..np).map(|p| row_k(p, &slot_k)).collect()
    }
}

/// Result matrix of a batch evaluation: `num_scenarios × num_polys`,
/// scenario-major.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchResults<C> {
    values: Vec<C>,
    num_polys: usize,
    num_scenarios: usize,
}

impl<C> BatchResults<C> {
    /// Number of evaluated scenarios.
    pub fn num_scenarios(&self) -> usize {
        self.num_scenarios
    }

    /// Number of polynomials per scenario.
    pub fn num_polys(&self) -> usize {
        self.num_polys
    }

    /// All results of one scenario, in program (label) order.
    pub fn row(&self, scenario: usize) -> &[C] {
        &self.values[scenario * self.num_polys..(scenario + 1) * self.num_polys]
    }

    /// One result value.
    pub fn get(&self, scenario: usize, poly: usize) -> &C {
        &self.values[scenario * self.num_polys + poly]
    }

    /// Iterates scenario rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[C]> {
        (0..self.num_scenarios).map(|s| self.row(s))
    }

    /// The flat scenario-major value buffer.
    pub fn into_values(self) -> Vec<C> {
        self.values
    }
}

/// Evaluates many scenarios × many polynomials in one call over a compiled
/// [`EvalProgram`], in parallel across scenarios.
///
/// The program is held behind an [`Arc`], so cloning an evaluator (e.g. to
/// cache a session-invariant full-provenance program across compressions)
/// shares the CSR arrays instead of copying them.
#[derive(Clone, Debug)]
pub struct BatchEvaluator<C: Coeff> {
    program: Arc<EvalProgram<C>>,
}

impl<C: Coeff + Send + Sync> BatchEvaluator<C> {
    /// Wraps a compiled program.
    pub fn new(program: EvalProgram<C>) -> BatchEvaluator<C> {
        BatchEvaluator {
            program: Arc::new(program),
        }
    }

    /// Wraps an already-shared program without copying it.
    pub fn from_shared(program: Arc<EvalProgram<C>>) -> BatchEvaluator<C> {
        BatchEvaluator { program }
    }

    /// Compiles and wraps in one step.
    pub fn compile(set: &PolySet<C>) -> BatchEvaluator<C> {
        Self::new(EvalProgram::compile(set))
    }

    /// The underlying program.
    pub fn program(&self) -> &EvalProgram<C> {
        &self.program
    }

    /// The shared handle to the underlying program.
    pub fn shared_program(&self) -> Arc<EvalProgram<C>> {
        Arc::clone(&self.program)
    }

    /// Binds many sparse valuations into scenario rows.
    ///
    /// # Errors
    /// Returns the first uncovered variable of the first offending scenario.
    pub fn bind_all(&self, vals: &[Valuation<C>]) -> Result<Vec<Vec<C>>, Var> {
        vals.iter().map(|v| self.program.bind(v)).collect()
    }

    /// Evaluates every scenario row (generic scalar kernel, parallel across
    /// scenarios). This is the exact path for `Rat` programs.
    ///
    /// # Panics
    /// Panics if any row's width differs from `num_locals()`.
    pub fn eval_batch(&self, scenarios: &[Vec<C>]) -> BatchResults<C> {
        let np = self.program.num_polys();
        let mut values = vec![C::zero(); scenarios.len() * np];
        self.eval_batch_into(scenarios, &mut values);
        BatchResults {
            values,
            num_polys: np,
            num_scenarios: scenarios.len(),
        }
    }

    /// [`eval_batch`](Self::eval_batch) into a caller-provided
    /// scenario-major output buffer (`scenarios.len() × num_polys`) —
    /// the allocation-free path block-streamed sweeps use.
    ///
    /// # Panics
    /// Panics if `out.len() != scenarios.len() * num_polys()` or any row's
    /// width differs from `num_locals()`.
    pub fn eval_batch_into(&self, scenarios: &[Vec<C>], out: &mut [C]) {
        let np = self.program.num_polys();
        assert_eq!(out.len(), scenarios.len() * np, "output buffer size");
        if np > 0 {
            par::par_chunks_mut(out, np, |s, row| {
                self.program.eval_scenario_into(&scenarios[s], row);
            });
        }
    }

    /// [`eval_batch_into`](Self::eval_batch_into) **without** the internal
    /// scenario-parallel dispatch: a plain serial loop over the rows. The
    /// parallel fold engines call this from their own worker threads —
    /// each worker already owns a disjoint scenario span, so spawning
    /// nested threads per block would only oversubscribe the cores.
    ///
    /// # Panics
    /// Panics if `out.len() != scenarios.len() * num_polys()` or any row's
    /// width differs from `num_locals()`.
    pub fn eval_batch_serial_into(&self, scenarios: &[Vec<C>], out: &mut [C]) {
        let np = self.program.num_polys();
        assert_eq!(out.len(), scenarios.len() * np, "output buffer size");
        if np == 0 {
            return;
        }
        for (row, out) in scenarios.iter().zip(out.chunks_exact_mut(np)) {
            self.program.eval_scenario_into(row, out);
        }
    }
}

impl BatchEvaluator<Rat> {
    /// [`eval_batch_into`](Self::eval_batch_into) through the exact-path
    /// kernel dispatch: scenarios whose intermediates fit the
    /// scaled-`i128` fixed-point kernel ([`FixedProgram`]) are evaluated
    /// in pure integer arithmetic, the rest fall back — per scenario,
    /// deterministically — to the generic `Rat` walk. Both kernels
    /// produce the identical canonical rationals, so the split is
    /// unobservable in the results. `COBRA_KERNEL=scalar` (or a scoped
    /// [`cobra_util::kernel::with_target`], resolved on the calling
    /// thread) disables the fixed kernel entirely.
    ///
    /// # Panics
    /// Panics if `out.len() != scenarios.len() * num_polys()` or any row's
    /// width differs from `num_locals()`.
    pub fn eval_batch_exact_into(&self, scenarios: &[Vec<Rat>], out: &mut [Rat]) {
        let np = self.program.num_polys();
        assert_eq!(out.len(), scenarios.len() * np, "output buffer size");
        if np == 0 || scenarios.is_empty() {
            return;
        }
        let use_fixed = cobra_util::kernel::exact_fixed_enabled();
        // One chunk per worker: `par_chunks_mut` hands each thread a
        // contiguous run of chunks anyway, so finer chunking buys no
        // balance — it only multiplies the per-chunk [`FixedScratch`]
        // allocations, which the O(1)-allocation sweep budget forbids.
        let group = scenarios.len().div_ceil(par::num_threads().max(1)).max(1);
        par::par_chunks_mut(out, group * np, |ci, out| {
            let s0 = ci * group;
            let width = (scenarios.len() - s0).min(group);
            let mut scratch = FixedScratch::new();
            self.eval_batch_exact_serial_with(
                use_fixed,
                &scenarios[s0..s0 + width],
                out,
                &mut scratch,
            );
        });
    }

    /// [`eval_batch_exact_into`](Self::eval_batch_exact_into) **without**
    /// the internal scenario-parallel dispatch, reusing a caller-owned
    /// [`FixedScratch`] — the form the parallel fold engines call from
    /// their own worker threads. Resolves the kernel override on the
    /// calling thread; workers that inherited a resolved choice use
    /// [`eval_batch_exact_serial_with`](Self::eval_batch_exact_serial_with).
    ///
    /// # Panics
    /// Panics if `out.len() != scenarios.len() * num_polys()` or any row's
    /// width differs from `num_locals()`.
    pub fn eval_batch_exact_serial_into(
        &self,
        scenarios: &[Vec<Rat>],
        out: &mut [Rat],
        scratch: &mut FixedScratch,
    ) {
        let use_fixed = cobra_util::kernel::exact_fixed_enabled();
        self.eval_batch_exact_serial_with(use_fixed, scenarios, out, scratch);
    }

    /// The exact serial kernel with an explicit, pre-resolved fixed-point
    /// enable flag. Thread-local kernel overrides do not propagate into
    /// spawned workers, so parallel engines resolve
    /// [`cobra_util::kernel::exact_fixed_enabled`] once on the calling
    /// thread and pass the choice down.
    ///
    /// # Panics
    /// Panics if `out.len() != scenarios.len() * num_polys()` or any row's
    /// width differs from `num_locals()`.
    pub fn eval_batch_exact_serial_with(
        &self,
        use_fixed: bool,
        scenarios: &[Vec<Rat>],
        out: &mut [Rat],
        scratch: &mut FixedScratch,
    ) {
        let np = self.program.num_polys();
        assert_eq!(out.len(), scenarios.len() * np, "output buffer size");
        if np == 0 {
            return;
        }
        let fixed = if use_fixed {
            self.program.fixed_program()
        } else {
            None
        };
        for (row, out) in scenarios.iter().zip(out.chunks_exact_mut(np)) {
            if let Some(fp) = fixed {
                if fp.eval_scenario_into(&self.program, row, out, scratch) {
                    continue;
                }
            }
            self.program.eval_scenario_into(row, out);
        }
    }
}

impl BatchEvaluator<f64> {
    /// The `f64` fast path: scenarios are blocked into [`LANES`]-wide
    /// groups; within a block the CSR program is streamed **once** and
    /// every term is applied to all lanes before moving on, so each cache
    /// line of program data is touched once per block. Which lane kernel
    /// runs the block — portable auto-vectorized or explicit AVX2 — is
    /// resolved per call by [`cobra_util::kernel`] (`COBRA_KERNEL`,
    /// runtime CPU detection); every mul+add kernel performs the same
    /// per-scenario multiply/add sequence as the generic scalar walk (and
    /// as `eval_dense`), so results are bit-identical to per-scenario
    /// evaluation regardless of the kernel chosen.
    ///
    /// # Panics
    /// Panics if any row's width differs from `num_locals()`.
    pub fn eval_batch_fast(&self, scenarios: &[Vec<f64>]) -> BatchResults<f64> {
        let mut values = vec![0.0f64; scenarios.len() * self.program.num_polys()];
        self.eval_batch_fast_into(scenarios, &mut values);
        BatchResults {
            values,
            num_polys: self.program.num_polys(),
            num_scenarios: scenarios.len(),
        }
    }

    /// [`eval_batch_fast`](Self::eval_batch_fast) into a caller-provided
    /// scenario-major output buffer (`scenarios.len() × num_polys`) — the
    /// allocation-free path streaming fold-sweeps evaluate their blocks
    /// through.
    ///
    /// # Panics
    /// Panics if `out.len() != scenarios.len() * num_polys()` or any row's
    /// width differs from `num_locals()`.
    pub fn eval_batch_fast_into(&self, scenarios: &[Vec<f64>], out: &mut [f64]) {
        let prog = &self.program;
        let np = prog.num_polys();
        let nl = prog.num_locals();
        assert_eq!(out.len(), scenarios.len() * np, "output buffer size");
        for row in scenarios {
            assert_eq!(row.len(), nl, "scenario row width");
        }
        if np == 0 || scenarios.is_empty() {
            return;
        }
        // Resolve the kernel on the calling thread (scoped overrides are
        // thread-local and would not be visible inside spawned workers).
        let kern = cobra_util::kernel::current();
        // One parallel chunk = one lane block of scenarios.
        par::par_chunks_mut(out, LANES * np, |block, out| {
            let s0 = block * LANES;
            let width = (scenarios.len() - s0).min(LANES);
            let mut scratch = LaneScratch::new();
            kernel::eval_lane_block(kern, prog, &scenarios[s0..s0 + width], out, &mut scratch);
        });
    }

    /// [`eval_batch_fast_into`](Self::eval_batch_fast_into) **without**
    /// the internal lane-block parallel dispatch: the same lane kernel
    /// run serially, reusing a caller-owned [`LaneScratch`] across
    /// blocks. The parallel fold engines call this from their own worker
    /// threads — each worker owns a disjoint scenario span and one
    /// scratch, so a 10⁷-scenario sweep performs O(workers) scratch
    /// allocations instead of O(blocks). Per scenario the multiply/add
    /// sequence is identical to
    /// [`eval_batch_fast_into`](Self::eval_batch_fast_into), so results
    /// are bit-identical regardless of which path (or worker) evaluated a
    /// scenario.
    ///
    /// # Panics
    /// Panics if `out.len() != scenarios.len() * num_polys()` or any row's
    /// width differs from `num_locals()`.
    pub fn eval_batch_fast_serial_into(
        &self,
        scenarios: &[Vec<f64>],
        out: &mut [f64],
        scratch: &mut LaneScratch,
    ) {
        self.eval_batch_fast_serial_with(cobra_util::kernel::current(), scenarios, out, scratch);
    }

    /// The serial lane path with an explicit, pre-resolved kernel choice.
    /// Thread-local kernel overrides do not propagate into spawned
    /// workers, so parallel engines resolve
    /// [`cobra_util::kernel::current`] once on the calling thread and
    /// pass the [`F64Kernel`] down to every worker.
    ///
    /// # Panics
    /// Panics if `out.len() != scenarios.len() * num_polys()` or any row's
    /// width differs from `num_locals()`.
    pub fn eval_batch_fast_serial_with(
        &self,
        kern: F64Kernel,
        scenarios: &[Vec<f64>],
        out: &mut [f64],
        scratch: &mut LaneScratch,
    ) {
        let prog = &self.program;
        let np = prog.num_polys();
        let nl = prog.num_locals();
        assert_eq!(out.len(), scenarios.len() * np, "output buffer size");
        for row in scenarios {
            assert_eq!(row.len(), nl, "scenario row width");
        }
        if np == 0 || scenarios.is_empty() {
            return;
        }
        for (rows, out) in scenarios.chunks(LANES).zip(out.chunks_mut(LANES * np)) {
            kernel::eval_lane_block(kern, prog, rows, out, scratch);
        }
    }
}

/// Compiles the `f64` shadow of an exact set and wraps it for batching —
/// the usual entry point for timing experiments.
pub fn compile_f64(set: &PolySet<Rat>) -> BatchEvaluator<f64> {
    BatchEvaluator::new(EvalProgram::compile(set).to_f64_program())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use crate::poly::Polynomial;
    use crate::var::VarRegistry;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn sample() -> (VarRegistry, PolySet<Rat>) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let z = reg.var("z");
        let mut set = PolySet::new();
        set.push(
            "P1",
            Polynomial::from_terms([
                (Monomial::from_pairs([(x, 2)]), rat("3")),
                (Monomial::from_pairs([(x, 1), (y, 1)]), rat("-1")),
                (Monomial::one(), rat("7")),
            ]),
        );
        set.push("Pzero", Polynomial::zero());
        set.push(
            "P2",
            Polynomial::from_terms([(Monomial::from_pairs([(z, 1)]), rat("2"))]),
        );
        (reg, set)
    }

    #[test]
    fn csr_shape_and_local_remap() {
        let (mut reg, set) = sample();
        // Widen the registry far beyond the program's variables: locals
        // must stay dense regardless.
        for i in 0..100 {
            reg.var(&format!("pad{i}"));
        }
        let prog = EvalProgram::compile(&set);
        assert_eq!(prog.num_polys(), 3);
        assert_eq!(prog.num_terms(), 4);
        assert_eq!(prog.num_locals(), 3);
        assert_eq!(prog.labels(), &["P1", "Pzero", "P2"]);
        let x = reg.lookup("x").unwrap();
        assert_eq!(prog.local_of(x), Some(0));
        assert_eq!(prog.local_of(reg.lookup("pad7").unwrap()), None);
    }

    #[test]
    fn scenario_eval_matches_sparse_eval() {
        let (mut reg, set) = sample();
        let x = reg.var("x");
        let y = reg.var("y");
        let val = Valuation::with_default(Rat::ONE)
            .bind(x, rat("2"))
            .bind(y, rat("5"));
        let prog = EvalProgram::compile(&set);
        let row = prog.bind(&val).unwrap();
        let out = prog.eval_scenario(&row);
        // 3·4 − 10 + 7 = 9; zero poly → 0; 2·1 = 2
        assert_eq!(out, vec![rat("9"), Rat::ZERO, rat("2")]);
        let expected = set.eval(&val).unwrap();
        for ((_, e), o) in expected.iter().zip(&out) {
            assert_eq!(e, o);
        }
    }

    #[test]
    fn bind_reports_missing_var() {
        let (mut reg, set) = sample();
        let x = reg.var("x");
        let y = reg.var("y");
        let prog = EvalProgram::compile(&set);
        let partial = Valuation::new().bind(x, rat("1")).bind(y, rat("1"));
        let z = reg.lookup("z").unwrap();
        assert_eq!(prog.bind(&partial), Err(z));
    }

    #[test]
    fn batch_matches_per_scenario_for_rat() {
        let (mut reg, set) = sample();
        let x = reg.var("x");
        let evaluator = BatchEvaluator::compile(&set);
        let vals: Vec<Valuation<Rat>> = (0..23)
            .map(|i| Valuation::with_default(Rat::ONE).bind(x, Rat::int(i)))
            .collect();
        let rows = evaluator.bind_all(&vals).unwrap();
        let batch = evaluator.eval_batch(&rows);
        assert_eq!(batch.num_scenarios(), 23);
        assert_eq!(batch.num_polys(), 3);
        for (s, val) in vals.iter().enumerate() {
            let expected = set.eval(val).unwrap();
            for (p, (_, e)) in expected.iter().enumerate() {
                assert_eq!(batch.get(s, p), e, "scenario {s} poly {p}");
            }
        }
    }

    #[test]
    fn fast_path_bit_identical_to_scalar() {
        let (mut reg, set) = sample();
        let x = reg.var("x");
        let y = reg.var("y");
        let set64 = set.to_f64_set();
        let evaluator = BatchEvaluator::compile(&set64);
        // 19 scenarios: exercises a full lane block plus a ragged tail.
        let rows: Vec<Vec<f64>> = (0..19)
            .map(|i| {
                let val = Valuation::with_default(1.0)
                    .bind(x, 0.1 + i as f64 * 0.37)
                    .bind(y, 1.7 - i as f64 * 0.11);
                evaluator.program().bind(&val).unwrap()
            })
            .collect();
        let fast = evaluator.eval_batch_fast(&rows);
        let scalar = evaluator.eval_batch(&rows);
        assert_eq!(fast, scalar, "lane kernel must be bit-identical");
        // ... and identical to the original eval_dense walk.
        let dense_reg_len = reg.len();
        for (s, row) in rows.iter().enumerate() {
            let mut dense = DenseValuation::from_valuation(
                &Valuation::with_default(1.0),
                dense_reg_len,
                1.0,
            );
            for (local, &v) in evaluator.program().vars().iter().enumerate() {
                dense.set(v, row[local]);
            }
            for (p, (_, value)) in set64.eval_dense(&dense).iter().enumerate() {
                assert_eq!(fast.get(s, p), value, "scenario {s} poly {p}");
            }
        }
    }

    #[test]
    fn empty_program_and_empty_batch() {
        let set: PolySet<Rat> = PolySet::new();
        let evaluator = BatchEvaluator::compile(&set);
        let batch = evaluator.eval_batch(&[]);
        assert_eq!(batch.num_scenarios(), 0);
        assert_eq!(batch.num_polys(), 0);
        let batch = evaluator.eval_batch(&[vec![], vec![]]);
        assert_eq!(batch.num_polys(), 0);
        let f = compile_f64(&set);
        assert_eq!(f.eval_batch_fast(&[vec![]]).num_polys(), 0);
    }

    #[test]
    fn abs_program_and_rounding_counts() {
        let (mut reg, set) = sample();
        let x = reg.var("x");
        let y = reg.var("y");
        let prog = EvalProgram::compile(&set).to_f64_program();
        let abs = prog.to_abs_program();
        // Same CSR shape, |coefficients|: at a non-negative point the abs
        // program evaluates the term-wise absolute sum.
        assert_eq!(abs.num_polys(), prog.num_polys());
        let val = Valuation::with_default(1.0).bind(x, 2.0).bind(y, 5.0);
        let row = abs.bind(&val).unwrap();
        // P1 = 3x² - xy + 7  →  |3|·4 + |-1|·10 + 7 = 29
        assert_eq!(abs.eval_scenario(&row), vec![29.0, 0.0, 2.0]);

        let k = prog.rounding_op_counts();
        assert_eq!(k.len(), 3);
        // The empty polynomial needs no rounding ops at all.
        assert_eq!(k[1], 0);
        // P1 (3 terms, worst term two factors) strictly dominates the
        // single-term single-factor P2; both are small positive counts.
        assert!(k[0] > k[2] && k[2] > 0);
    }

    #[test]
    fn decompile_round_trips_canonical_set() {
        let (mut reg, set) = sample();
        let prog = EvalProgram::compile(&set);
        let back = prog.decompile();
        // Recompiling the decompiled set reproduces the CSR arrays exactly
        // (canonical iteration order on both sides).
        let prog2 = EvalProgram::compile(&back);
        assert_eq!(prog.labels, prog2.labels);
        assert_eq!(prog.poly_offsets, prog2.poly_offsets);
        assert_eq!(prog.coeffs, prog2.coeffs);
        assert_eq!(prog.term_offsets, prog2.term_offsets);
        assert_eq!(prog.var_ids, prog2.var_ids);
        assert_eq!(prog.exps, prog2.exps);
        assert_eq!(prog.locals, prog2.locals);
        // And the decompiled set evaluates like the original.
        let x = reg.var("x");
        let y = reg.var("y");
        let val = Valuation::with_default(Rat::ONE)
            .bind(x, rat("2"))
            .bind(y, rat("5"));
        assert_eq!(set.eval(&val).unwrap(), back.eval(&val).unwrap());
    }

    #[test]
    fn higher_exponents_agree_between_paths() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let set = PolySet::from_entries([(
            "P".to_owned(),
            Polynomial::from_terms([(Monomial::from_pairs([(x, 4)]), rat("1"))]),
        )]);
        let set64 = set.to_f64_set();
        let evaluator = BatchEvaluator::compile(&set64);
        let rows: Vec<Vec<f64>> = (0..9).map(|i| vec![1.0 + i as f64 * 0.5]).collect();
        let fast = evaluator.eval_batch_fast(&rows);
        let scalar = evaluator.eval_batch(&rows);
        // Both use powi for e > 1, so even non-multilinear programs agree
        // bit-for-bit.
        assert_eq!(fast, scalar);
    }

    #[test]
    fn patched_program_answers_like_a_fresh_compile() {
        use crate::delta::PolyDelta;
        let (mut reg, mut set) = sample();
        let prog = EvalProgram::compile(&set);
        let x = reg.lookup("x").unwrap();
        let y = reg.lookup("y").unwrap();
        let w = reg.var("w"); // brand-new variable, unseen by `prog`
        let mut delta = PolyDelta::new();
        delta.remove(0, Monomial::from_pairs([(x, 2)]));
        delta.add(2, Monomial::from_pairs([(w, 1), (y, 2)]), rat("4.5"));
        delta.add(1, Monomial::var(x), rat("-3")); // Pzero grows a term
        let report = set.apply_delta(&delta).unwrap();
        assert!(report.is_structural());

        let patched = prog.patched(&set, &report.touched());
        let fresh = EvalProgram::compile(&set);
        // Same canonical set on both sides…
        assert_eq!(patched.decompile(), fresh.decompile());
        assert_eq!(patched.labels, fresh.labels);
        assert_eq!(patched.num_terms(), fresh.num_terms());
        // …and bit-identical answers, despite possibly different local
        // numbering (patched appends new locals after existing ones).
        let val = Valuation::with_default(Rat::ONE)
            .bind(x, rat("2"))
            .bind(y, rat("5"))
            .bind(w, rat("-0.25"));
        let row_p = patched.bind(&val).unwrap();
        let row_f = fresh.bind(&val).unwrap();
        assert_eq!(patched.eval_scenario(&row_p), fresh.eval_scenario(&row_f));
        // Original locals keep their slots: the patched program is a
        // superset extension of the old local space.
        for (i, &v) in prog.locals.iter().enumerate() {
            assert_eq!(patched.locals[i], v);
        }
    }

    #[test]
    fn coeff_only_patch_shares_every_shape_array() {
        use crate::delta::PolyDelta;
        let (reg, mut set) = sample();
        let prog = EvalProgram::compile(&set);
        let x = reg.lookup("x").unwrap();
        let y = reg.lookup("y").unwrap();
        let mut delta = PolyDelta::new();
        delta.set(0, Monomial::from_pairs([(x, 1), (y, 1)]), rat("9"));
        let report = set.apply_delta(&delta).unwrap();
        assert!(!report.is_structural());

        let patched = prog.patched_coeffs(&set, &report.touched());
        let fresh = EvalProgram::compile(&set);
        assert_eq!(patched.coeffs, fresh.coeffs);
        assert_eq!(patched.locals, fresh.locals);
        // Shape arrays are shared, not copied.
        assert_eq!(patched.term_offsets.as_ptr(), prog.term_offsets.as_ptr());
        assert_eq!(patched.var_ids.as_ptr(), prog.var_ids.as_ptr());
        let val = Valuation::with_default(Rat::ONE).bind(x, rat("3"));
        let row = patched.bind(&val).unwrap();
        assert_eq!(
            patched.eval_scenario(&row),
            fresh.eval_scenario(&fresh.bind(&val).unwrap())
        );
    }
}
