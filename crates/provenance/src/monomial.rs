//! Canonical monomials: products of variables raised to positive powers.
//!
//! A monomial is the coefficient-free part of a polynomial term, e.g.
//! `p1·m1` or `x²·y`. The representation is a sorted `(Var, exponent)` list
//! with strictly increasing variables and strictly positive exponents, so
//! structural equality coincides with mathematical equality — the property
//! the compression step relies on when merging terms.

use crate::var::{Var, VarRegistry};
use std::cmp::Ordering;
use std::fmt;

/// A product of variables with positive integer exponents, in canonical
/// form (variables strictly increasing, exponents ≥ 1). The empty product
/// is the monomial `1`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Monomial {
    factors: Vec<(Var, u32)>,
}

impl Monomial {
    /// The unit monomial `1`.
    pub fn one() -> Monomial {
        Monomial::default()
    }

    /// The monomial consisting of a single variable.
    pub fn var(v: Var) -> Monomial {
        Monomial {
            factors: vec![(v, 1)],
        }
    }

    /// Builds a monomial from arbitrary `(var, exponent)` pairs,
    /// canonicalizing: pairs are sorted, duplicate variables merge by adding
    /// exponents, zero exponents are dropped.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, u32)>) -> Monomial {
        let mut factors: Vec<(Var, u32)> = pairs.into_iter().filter(|&(_, e)| e > 0).collect();
        factors.sort_unstable_by_key(|&(v, _)| v);
        let mut out: Vec<(Var, u32)> = Vec::with_capacity(factors.len());
        for (v, e) in factors {
            match out.last_mut() {
                Some((last_v, last_e)) if *last_v == v => *last_e += e,
                _ => out.push((v, e)),
            }
        }
        Monomial { factors: out }
    }

    /// True iff this is the unit monomial.
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// Total degree (sum of exponents).
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|&(_, e)| e).sum()
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.factors.len()
    }

    /// Exponent of `v` (0 if absent).
    pub fn exponent_of(&self, v: Var) -> u32 {
        self.factors
            .binary_search_by_key(&v, |&(w, _)| w)
            .map(|i| self.factors[i].1)
            .unwrap_or(0)
    }

    /// True iff `v` occurs.
    pub fn contains(&self, v: Var) -> bool {
        self.exponent_of(v) > 0
    }

    /// Iterates `(var, exponent)` factors in canonical order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (Var, u32)> + '_ {
        self.factors.iter().copied()
    }

    /// Iterates the distinct variables in canonical order.
    pub fn vars(&self) -> impl ExactSizeIterator<Item = Var> + '_ {
        self.factors.iter().map(|&(v, _)| v)
    }

    /// Product of two monomials (exponents add).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        // Merge two sorted factor lists.
        let mut out = Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            let (va, ea) = self.factors[i];
            let (vb, eb) = other.factors[j];
            match va.cmp(&vb) {
                Ordering::Less => {
                    out.push((va, ea));
                    i += 1;
                }
                Ordering::Greater => {
                    out.push((vb, eb));
                    j += 1;
                }
                Ordering::Equal => {
                    out.push((va, ea + eb));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&other.factors[j..]);
        Monomial { factors: out }
    }

    /// Multiplies by a single variable.
    pub fn mul_var(&self, v: Var) -> Monomial {
        self.mul(&Monomial::var(v))
    }

    /// Removes variable `v` entirely, returning the remaining monomial and
    /// the removed exponent. This is the "context extraction" used by the
    /// group analysis of the compression algorithm.
    pub fn without(&self, v: Var) -> (Monomial, u32) {
        match self.factors.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => {
                let mut factors = self.factors.clone();
                let (_, e) = factors.remove(i);
                (Monomial { factors }, e)
            }
            Err(_) => (self.clone(), 0),
        }
    }

    /// Renames variables according to `f` (variables mapped to the same
    /// target merge by adding exponents). This is how a cut's
    /// leaf → meta-variable substitution is applied.
    pub fn rename(&self, mut f: impl FnMut(Var) -> Var) -> Monomial {
        Monomial::from_pairs(self.factors.iter().map(|&(v, e)| (f(v), e)))
    }

    /// Canonical total order: lexicographic on the factor list. Any total
    /// order works for polynomial normalization; this one is cheap and
    /// stable.
    pub fn canonical_cmp(&self, other: &Monomial) -> Ordering {
        self.factors.cmp(&other.factors)
    }

    /// Renders with names from `reg`, e.g. `p1*m1` or `x^2*y`; `1` for the
    /// unit monomial.
    pub fn display<'a>(&'a self, reg: &'a VarRegistry) -> impl fmt::Display + 'a {
        MonomialDisplay { m: self, reg }
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        let parts: Vec<String> = self
            .factors
            .iter()
            .map(|&(v, e)| {
                if e == 1 {
                    format!("x{}", v.0)
                } else {
                    format!("x{}^{}", v.0, e)
                }
            })
            .collect();
        write!(f, "{}", parts.join("*"))
    }
}

struct MonomialDisplay<'a> {
    m: &'a Monomial,
    reg: &'a VarRegistry,
}

impl fmt::Display for MonomialDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.m.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for (v, e) in self.m.iter() {
            if !first {
                write!(f, "*")?;
            }
            first = false;
            write!(f, "{}", self.reg.name(v))?;
            if e > 1 {
                write!(f, "^{}", e)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> (VarRegistry, Var, Var, Var) {
        let mut r = VarRegistry::new();
        let x = r.var("x");
        let y = r.var("y");
        let z = r.var("z");
        (r, x, y, z)
    }

    #[test]
    fn canonicalization() {
        let (_, x, y, _) = reg();
        let m = Monomial::from_pairs([(y, 1), (x, 2), (y, 3), (x, 0)]);
        assert_eq!(m.exponent_of(x), 2);
        assert_eq!(m.exponent_of(y), 4);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.degree(), 6);
        // zero exponents drop entirely
        let unit = Monomial::from_pairs([(x, 0)]);
        assert!(unit.is_one());
    }

    #[test]
    fn multiplication_merges_sorted() {
        let (_, x, y, z) = reg();
        let a = Monomial::from_pairs([(x, 1), (z, 2)]);
        let b = Monomial::from_pairs([(x, 1), (y, 1)]);
        let ab = a.mul(&b);
        assert_eq!(ab, Monomial::from_pairs([(x, 2), (y, 1), (z, 2)]));
        assert_eq!(a.mul(&Monomial::one()), a);
        assert_eq!(Monomial::one().mul(&b), b);
        // commutativity
        assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn without_extracts_context() {
        let (_, x, y, _) = reg();
        let m = Monomial::from_pairs([(x, 2), (y, 1)]);
        let (ctx, e) = m.without(x);
        assert_eq!(ctx, Monomial::var(y));
        assert_eq!(e, 2);
        let (same, zero) = m.without(Var(999));
        assert_eq!(same, m);
        assert_eq!(zero, 0);
    }

    #[test]
    fn rename_merges_targets() {
        let (_, x, y, z) = reg();
        // x,y -> z merges their exponents with the existing z
        let m = Monomial::from_pairs([(x, 1), (y, 2), (z, 1)]);
        let renamed = m.rename(|v| if v == x || v == y { z } else { v });
        assert_eq!(renamed, Monomial::from_pairs([(z, 4)]));
    }

    #[test]
    fn display_with_names() {
        let (r, x, y, _) = reg();
        let m = Monomial::from_pairs([(x, 1), (y, 2)]);
        assert_eq!(m.display(&r).to_string(), "x*y^2");
        assert_eq!(Monomial::one().display(&r).to_string(), "1");
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let (_, x, y, _) = reg();
        let a = Monomial::var(x);
        let b = Monomial::var(y);
        let c = Monomial::from_pairs([(x, 1), (y, 1)]);
        let mut v = [c.clone(), b.clone(), a.clone(), Monomial::one()];
        v.sort();
        assert_eq!(v[0], Monomial::one());
        assert_eq!(v[1], a);
        // equal monomials compare equal
        assert_eq!(a.cmp(&Monomial::var(x)), Ordering::Equal);
        assert_eq!(v[2].cmp(&v[3]), Ordering::Less);
    }
}
