//! Named collections of provenance polynomials.
//!
//! A provenance-aware query result is one polynomial per result tuple
//! (paper Example 2: `P1` for zip 10001, `P2` for zip 10002). [`PolySet`]
//! holds that collection, keyed by a display label (typically the group-by
//! key), and exposes the aggregate size measures the optimization problem
//! is defined over.

use crate::poly::{Coeff, Polynomial};
use crate::valuation::{DenseValuation, Valuation};
use crate::var::{Var, VarRegistry};
use cobra_util::{FxHashSet, Rat};
use std::fmt;

/// An ordered collection of labelled polynomials — the "multiset of
/// polynomials" COBRA takes as input. Labels identify result tuples and
/// need not be unique (a true multiset is allowed).
#[derive(Clone, Debug, PartialEq)]
pub struct PolySet<C: Coeff> {
    entries: Vec<(String, Polynomial<C>)>,
}

impl<C: Coeff> Default for PolySet<C> {
    fn default() -> Self {
        PolySet {
            entries: Vec::new(),
        }
    }
}

impl<C: Coeff> PolySet<C> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a labelled polynomial.
    pub fn push(&mut self, label: impl Into<String>, poly: Polynomial<C>) {
        self.entries.push((label.into(), poly));
    }

    /// Builds from `(label, polynomial)` pairs.
    pub fn from_entries(
        entries: impl IntoIterator<Item = (String, Polynomial<C>)>,
    ) -> Self {
        PolySet {
            entries: entries.into_iter().collect(),
        }
    }

    /// Number of polynomials.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff there are no polynomials.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(label, polynomial)` in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&str, &Polynomial<C>)> {
        self.entries.iter().map(|(l, p)| (l.as_str(), p))
    }

    /// Looks up the first polynomial with the given label.
    pub fn get(&self, label: &str) -> Option<&Polynomial<C>> {
        self.entries.iter().find(|(l, _)| l == label).map(|(_, p)| p)
    }

    /// The polynomial at `idx` (insertion order).
    pub fn poly(&self, idx: usize) -> Option<&Polynomial<C>> {
        self.entries.get(idx).map(|(_, p)| p)
    }

    /// Mutable access to the polynomial at `idx` — the entry point delta
    /// application patches through ([`crate::delta`]).
    pub fn poly_mut(&mut self, idx: usize) -> Option<&mut Polynomial<C>> {
        self.entries.get_mut(idx).map(|(_, p)| p)
    }

    /// Index of the first polynomial with the given label.
    pub fn index_of(&self, label: &str) -> Option<usize> {
        self.entries.iter().position(|(l, _)| l == label)
    }

    /// The label of the polynomial at `idx`.
    pub fn label(&self, idx: usize) -> Option<&str> {
        self.entries.get(idx).map(|(l, _)| l.as_str())
    }

    /// **The paper's provenance-size measure**: total number of monomials
    /// across all polynomials (§2, "the provenance size is measured by the
    /// number of monomials").
    pub fn total_monomials(&self) -> usize {
        self.entries.iter().map(|(_, p)| p.num_terms()).sum()
    }

    /// The set of distinct variables across all polynomials — the paper's
    /// expressiveness measure counts these.
    pub fn distinct_vars(&self) -> FxHashSet<Var> {
        let mut set = FxHashSet::default();
        for (_, p) in &self.entries {
            for (m, _) in p.iter() {
                set.extend(m.vars());
            }
        }
        set
    }

    /// Applies a variable renaming to every polynomial (the compression
    /// substitution), preserving labels.
    pub fn rename_vars(&self, mut f: impl FnMut(Var) -> Var) -> Self {
        PolySet {
            entries: self
                .entries
                .iter()
                .map(|(l, p)| (l.clone(), p.rename_vars(&mut f)))
                .collect(),
        }
    }

    /// Evaluates every polynomial under a sparse valuation.
    ///
    /// # Errors
    /// Returns the first missing variable.
    pub fn eval(&self, val: &Valuation<C>) -> Result<Vec<(String, C)>, Var> {
        self.entries
            .iter()
            .map(|(l, p)| Ok((l.clone(), p.eval(val)?)))
            .collect()
    }

    /// Evaluates every polynomial against a dense valuation (fast path).
    pub fn eval_dense(&self, val: &DenseValuation<C>) -> Vec<(String, C)> {
        self.entries
            .iter()
            .map(|(l, p)| (l.clone(), p.eval_dense(val)))
            .collect()
    }

    /// Maps coefficients into another ring.
    pub fn map_coeff<D: Coeff>(&self, mut f: impl FnMut(&C) -> D) -> PolySet<D> {
        PolySet {
            entries: self
                .entries
                .iter()
                .map(|(l, p)| (l.clone(), p.map_coeff(&mut f)))
                .collect(),
        }
    }

    /// Renders the whole set with variable names, one polynomial per line.
    pub fn display<'a>(&'a self, reg: &'a VarRegistry) -> impl fmt::Display + 'a
    where
        C: fmt::Display,
    {
        PolySetDisplay { set: self, reg }
    }
}

impl PolySet<Rat> {
    /// Exact → `f64` conversion for the timing experiments.
    pub fn to_f64_set(&self) -> PolySet<f64> {
        self.map_coeff(|c| c.to_f64())
    }
}

struct PolySetDisplay<'a, C: Coeff + fmt::Display> {
    set: &'a PolySet<C>,
    reg: &'a VarRegistry,
}

impl<C: Coeff + fmt::Display> fmt::Display for PolySetDisplay<'_, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, poly) in self.set.iter() {
            writeln!(f, "{} = {}", label, poly.display(self.reg))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn sample() -> (VarRegistry, PolySet<Rat>) {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut set = PolySet::new();
        set.push(
            "P1",
            Polynomial::from_terms([
                (Monomial::var(x), rat("2")),
                (Monomial::var(y), rat("3")),
            ]),
        );
        set.push(
            "P2",
            Polynomial::from_terms([(Monomial::from_pairs([(x, 1), (y, 1)]), rat("1"))]),
        );
        (reg, set)
    }

    #[test]
    fn size_measures() {
        let (_, set) = sample();
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_monomials(), 3);
        assert_eq!(set.distinct_vars().len(), 2);
    }

    #[test]
    fn lookup_by_label() {
        let (_, set) = sample();
        assert!(set.get("P1").is_some());
        assert!(set.get("P3").is_none());
    }

    #[test]
    fn eval_all() {
        let (mut reg, set) = sample();
        let x = reg.var("x");
        let y = reg.var("y");
        let val = Valuation::new().bind(x, rat("10")).bind(y, rat("1"));
        let out = set.eval(&val).unwrap();
        assert_eq!(out[0], ("P1".to_owned(), rat("23")));
        assert_eq!(out[1], ("P2".to_owned(), rat("10")));
        let dense = DenseValuation::from_valuation(&val, reg.len(), Rat::ONE);
        assert_eq!(set.eval_dense(&dense), out);
    }

    #[test]
    fn rename_merges_across_each_poly() {
        let (mut reg, set) = sample();
        let x = reg.var("x");
        let y = reg.var("y");
        let merged = set.rename_vars(|v| if v == y { x } else { v });
        // P1: 2x + 3x = 5x (one monomial); P2: x·x = x² (one monomial)
        assert_eq!(merged.total_monomials(), 2);
        assert_eq!(
            merged.get("P1").unwrap().coeff_of(&Monomial::var(x)),
            rat("5")
        );
        assert_eq!(
            merged.get("P2").unwrap().coeff_of(&Monomial::from_pairs([(x, 2)])),
            rat("1")
        );
    }

    #[test]
    fn display_lists_lines() {
        let (reg, set) = sample();
        let s = set.display(&reg).to_string();
        assert!(s.contains("P1 = 2*x + 3*y"));
        assert!(s.lines().count() == 2);
    }
}
