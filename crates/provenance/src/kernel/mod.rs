//! Explicit batch kernels behind runtime dispatch.
//!
//! The lane-blocked `f64` evaluation loop of [`crate::compile`] exists in
//! three explicit flavours, selected per entry point by
//! [`cobra_util::kernel`] (`COBRA_KERNEL`, runtime
//! `is_x86_feature_detected!`):
//!
//! * `scalar` — the portable kernel (LLVM auto-vectorizes its lane
//!   loops); the reference every other kernel is diffed against.
//! * `avx2` — explicit 4-wide AVX2 kernels that keep each term's
//!   running product in registers across a 16-lane tile instead of
//!   round-tripping a term buffer through L1. The mul+add variant
//!   performs the **identical per-lane multiply/add sequence** as the
//!   scalar kernel, so its results are bit-identical; the FMA variant
//!   fuses the last factor into the accumulate (one rounding fewer per
//!   term) and is therefore *not* bit-identical — only certified by the
//!   Higham shadow bound.
//! * [`FixedProgram`] — a scaled-`i128` fixed-point twin of the exact
//!   `Rat` path: one common coefficient scale per program, one common
//!   denominator per scenario, pure integer inner loops, and a
//!   **deterministic per-scenario fallback** to plain `Rat` arithmetic
//!   whenever any intermediate would overflow.
//!
//! Every kernel consumes the same transposed lane block (`vals[v·width +
//! lane]`) prepared here, and every `f64` path shares
//! [`cobra_util::kernel::pow_f64`]'s square-and-multiply chain, which is
//! what makes cross-kernel bit-identity hold by construction rather than
//! by accident (pinned in `tests/kernel_diff.rs`).

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
mod fixed;
pub(crate) mod scalar;

pub use fixed::{FixedProgram, FixedScratch};

use crate::compile::EvalProgram;
use cobra_util::kernel::F64Kernel;

/// Reusable transpose/accumulator buffers for the `f64` lane kernels —
/// per-worker scratch so a streaming sweep evaluates millions of blocks
/// without re-allocating the block-local vectors each time. Sized lazily
/// on first use; a scratch can be shared across programs (it grows to
/// the largest block seen).
#[derive(Debug, Default)]
pub struct LaneScratch {
    vals: Vec<f64>,
    term: Vec<f64>,
    acc: Vec<f64>,
}

impl LaneScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> LaneScratch {
        LaneScratch::default()
    }
}

/// Evaluates one lane block (`rows.len()` scenarios) of `prog` into
/// `out` with the resolved kernel `kern`, reusing `scratch`. Per
/// scenario the mul+add kernels perform the identical multiply/add
/// sequence, so results do not depend on how scenarios were grouped
/// into blocks — nor, for `Scalar`/`Avx2`, on which kernel ran.
pub(crate) fn eval_lane_block(
    kern: F64Kernel,
    prog: &EvalProgram<f64>,
    rows: &[Vec<f64>],
    out: &mut [f64],
    scratch: &mut LaneScratch,
) {
    let np = prog.num_polys();
    let nl = prog.num_locals();
    let ns = prog.num_slots();
    let width = rows.len();
    debug_assert_eq!(out.len(), width * np);
    // Transpose the block: vals[v * width + lane], so one term's factor
    // reads a contiguous lane vector per variable. A DAG program gets
    // `num_slots` extra lane vectors after the scenario variables; the
    // kernels stage each slot row's accumulator there before the rows
    // that reference it run. Every slot is written below (scenario
    // values here, slot vectors inside the kernels), so resizing without
    // zeroing is sound.
    scratch.vals.resize((nl + ns) * width, 0.0);
    scratch.term.resize(width, 0.0);
    scratch.acc.resize(width, 0.0);
    let (vals, term, acc) = (
        &mut scratch.vals[..(nl + ns) * width],
        &mut scratch.term[..width],
        &mut scratch.acc[..width],
    );
    for (lane, row) in rows.iter().enumerate() {
        for (v, &x) in row.iter().enumerate() {
            vals[v * width + lane] = x;
        }
    }
    match kern {
        F64Kernel::Scalar => scalar::eval_block(prog, width, vals, term, acc, out),
        // SAFETY: dispatch only resolves to an AVX2 kernel after
        // `is_x86_feature_detected!` confirmed the CPU supports it
        // (`cobra_util::kernel::KernelTarget::resolve`).
        #[cfg(target_arch = "x86_64")]
        F64Kernel::Avx2 => unsafe { avx2::eval_block(prog, width, vals, acc, out) },
        #[cfg(target_arch = "x86_64")]
        F64Kernel::Avx2Fma => unsafe { avx2::eval_block_fma(prog, width, vals, acc, out) },
        // Non-x86-64 builds can never resolve to an AVX2 kernel
        // (detection returns false), but the arms must still compile.
        #[cfg(not(target_arch = "x86_64"))]
        F64Kernel::Avx2 | F64Kernel::Avx2Fma => {
            scalar::eval_block(prog, width, vals, term, acc, out)
        }
    }
}
