//! The scaled-`i128` fixed-point kernel for the exact path.
//!
//! The PR 5 `Rat` small-integer fast path showed how much skipping gcd
//! normalization buys; this kernel is its logical endpoint. Instead of
//! one rational reduction per ring operation, a whole scenario is
//! evaluated in **pure integer arithmetic** at a common scale:
//!
//! * per *program* (once, cached): `S` = lcm of all coefficient
//!   denominators, so every coefficient becomes the integer `c·S`;
//! * per *scenario*: `D` = lcm of the row's value denominators, so every
//!   value becomes the integer `x·D`; each term of total degree `g` in a
//!   polynomial of max degree `G` is then padded by `D^(G−g)`, making
//!   every addend an integer at the common scale `S·D^G`:
//!
//!   `poly(x) = ( Σ_t (c_t·S) · Π (x_v·D)^e · D^(G−g_t) ) / (S·D^G)`
//!
//!   — one [`Rat::new`] normalization per *polynomial* instead of one
//!   gcd per ring operation.
//!
//! Every multiplication and addition is `checked_*`: the moment any
//! intermediate would overflow `i128`, evaluation of that scenario
//! returns `false` and the caller **deterministically falls back** to
//! the plain `Rat` kernel. Because `Rat` keeps a unique canonical form,
//! both kernels produce *representation-identical* results wherever the
//! fixed path completes, so the fallback is invisible — pinned by the
//! overflow-boundary property tests in `tests/kernel_diff.rs`.

use crate::compile::EvalProgram;
use cobra_util::Rat;

/// Caps on the per-term total degree (sizes the per-scenario `D^k`
/// table) — programs beyond it simply stay on the `Rat` path.
const MAX_DEGREE: u64 = 64;

/// A [`EvalProgram`]`<Rat>` lowered to common-scale integer form.
///
/// Built lazily (and cached) by
/// [`EvalProgram::fixed_program`]; `None` when the program's
/// coefficient scale or degrees do not fit the fixed-point guards.
#[derive(Debug)]
pub struct FixedProgram {
    /// `c·S` per term: exact integer coefficients at the common scale.
    coeff_num: Vec<i128>,
    /// `S`: the lcm of every coefficient denominator.
    coeff_scale: i128,
    /// Total degree `g_t` of each term.
    term_degree: Vec<u32>,
    /// Max term degree `G_p` of each polynomial.
    poly_degree: Vec<u32>,
    /// Max degree over all polynomials (sizes the `D^k` table).
    max_degree: u32,
}

/// Reusable per-scenario buffers for [`FixedProgram::eval_scenario_into`]
/// (scaled values and the `D^k` table) — per-worker scratch, like
/// [`LaneScratch`](super::LaneScratch) for the `f64` kernels.
#[derive(Debug, Default)]
pub struct FixedScratch {
    xs: Vec<i128>,
    dpow: Vec<i128>,
}

impl FixedScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> FixedScratch {
        FixedScratch::default()
    }
}

impl FixedProgram {
    /// Lowers an exact program to fixed-point form, or `None` when the
    /// coefficient scale overflows `i128` or any term's degree exceeds
    /// the table guard.
    pub fn prepare(prog: &EvalProgram<Rat>) -> Option<FixedProgram> {
        let mut coeff_scale: i128 = 1;
        for c in prog.coeffs.iter() {
            coeff_scale = checked_lcm(coeff_scale, c.denom())?;
        }
        let coeff_num: Vec<i128> = prog
            .coeffs
            .iter()
            .map(|c| c.numer().checked_mul(coeff_scale / c.denom()))
            .collect::<Option<_>>()?;
        let num_terms = prog.coeffs.len();
        let mut term_degree = Vec::with_capacity(num_terms);
        for t in 0..num_terms {
            let factors = prog.term_offsets[t] as usize..prog.term_offsets[t + 1] as usize;
            let g: u64 = factors.map(|f| prog.exps[f] as u64).sum();
            if g > MAX_DEGREE {
                return None;
            }
            term_degree.push(g as u32);
        }
        let mut poly_degree = Vec::with_capacity(prog.num_polys());
        for p in 0..prog.num_polys() {
            let terms = prog.poly_offsets[p] as usize..prog.poly_offsets[p + 1] as usize;
            poly_degree.push(terms.map(|t| term_degree[t]).max().unwrap_or(0));
        }
        let max_degree = poly_degree.iter().copied().max().unwrap_or(0);
        Some(FixedProgram {
            coeff_num,
            coeff_scale,
            term_degree,
            poly_degree,
            max_degree,
        })
    }

    /// Evaluates one scenario row entirely in scaled integers, writing
    /// `num_polys` canonical [`Rat`]s into `out`. Returns `false` — with
    /// `out` in an unspecified state — the moment any intermediate would
    /// overflow `i128`; the caller then re-evaluates the scenario through
    /// [`EvalProgram::eval_scenario_into`], which produces the identical
    /// canonical values wherever this kernel completes.
    ///
    /// # Panics
    /// Panics if `row`/`out` widths do not match `prog`, or if `prog` is
    /// not the program this fixed form was prepared from (term counts
    /// differ).
    pub fn eval_scenario_into(
        &self,
        prog: &EvalProgram<Rat>,
        row: &[Rat],
        out: &mut [Rat],
        scratch: &mut FixedScratch,
    ) -> bool {
        assert_eq!(row.len(), prog.num_locals(), "scenario row width");
        assert_eq!(out.len(), prog.num_polys(), "output row width");
        assert_eq!(self.coeff_num.len(), prog.num_terms(), "foreign program");
        self.eval_impl(prog, row, out, scratch).is_some()
    }

    fn eval_impl(
        &self,
        prog: &EvalProgram<Rat>,
        row: &[Rat],
        out: &mut [Rat],
        scratch: &mut FixedScratch,
    ) -> Option<()> {
        // D = lcm of the row denominators; xs = values scaled by D.
        let mut d: i128 = 1;
        for x in row {
            d = checked_lcm(d, x.denom())?;
        }
        scratch.xs.clear();
        for x in row {
            scratch.xs.push(x.numer().checked_mul(d / x.denom())?);
        }
        scratch.dpow.clear();
        scratch.dpow.push(1);
        for k in 1..=self.max_degree as usize {
            let next = scratch.dpow[k - 1].checked_mul(d)?;
            scratch.dpow.push(next);
        }
        let (xs, dpow) = (&scratch.xs[..], &scratch.dpow[..]);
        for (p, slot) in out.iter_mut().enumerate() {
            let g = self.poly_degree[p] as usize;
            let mut acc: i128 = 0;
            let terms = prog.poly_offsets[p] as usize..prog.poly_offsets[p + 1] as usize;
            for t in terms {
                let mut prod = self.coeff_num[t];
                let factors =
                    prog.term_offsets[t] as usize..prog.term_offsets[t + 1] as usize;
                for f in factors {
                    let x = xs[prog.var_ids[f] as usize];
                    prod = prod.checked_mul(checked_pow(x, prog.exps[f])?)?;
                }
                let padded = prod.checked_mul(dpow[g - self.term_degree[t] as usize])?;
                acc = acc.checked_add(padded)?;
            }
            let den = self.coeff_scale.checked_mul(dpow[g])?;
            *slot = Rat::new(acc, den);
        }
        Some(())
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// `lcm` with overflow detection. Inputs are positive here (`Rat`
/// denominators), but the zero guard keeps the helper total.
fn checked_lcm(a: i128, b: i128) -> Option<i128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// `x`ᵉ with overflow detection (LSB-first square-and-multiply).
fn checked_pow(x: i128, e: u32) -> Option<i128> {
    match e {
        0 => Some(1),
        1 => Some(x),
        _ => {
            let mut base = x;
            let mut e = e;
            let mut acc: i128 = 1;
            loop {
                if e & 1 == 1 {
                    acc = acc.checked_mul(base)?;
                }
                e >>= 1;
                if e == 0 {
                    return Some(acc);
                }
                base = base.checked_mul(base)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcm_and_pow_helpers() {
        assert_eq!(checked_lcm(4, 6), Some(12));
        assert_eq!(checked_lcm(1, 100), Some(100));
        assert_eq!(checked_lcm(i128::MAX, 2), None);
        assert_eq!(checked_pow(3, 4), Some(81));
        assert_eq!(checked_pow(-2, 3), Some(-8));
        assert_eq!(checked_pow(i128::MAX, 2), None);
        assert_eq!(checked_pow(7, 0), Some(1));
    }
}
