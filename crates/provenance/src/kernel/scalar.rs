//! The portable lane kernel — the auto-vectorized reference.
//!
//! This is the original `f64` lane kernel: per polynomial, per term, a
//! coefficient-splatted `term` buffer is multiplied by each factor's
//! lane vector and then added into the accumulator. LLVM auto-vectorizes
//! the lane loops at whatever width the build target guarantees (2-wide
//! SSE2 on default `x86-64`). Per lane the operation sequence is
//! `term = c; term *= x_f (factor order); acc += term` with exponents
//! expanded through [`pow_f64`] — the exact sequence the AVX2 kernel and
//! the generic scalar walk ([`EvalProgram::eval_scenario_into`]) also
//! perform, so all mul+add paths are bit-identical.

use crate::compile::EvalProgram;
use cobra_util::kernel::pow_f64;

/// Evaluates one transposed lane block (see
/// [`eval_lane_block`](super::eval_lane_block) for the layout contract).
/// Slot rows of a DAG program run first, each staging its accumulator as
/// the extended lane vector `num_locals + s` of `vals`; the output rows
/// then scatter into `out` exactly as before.
pub(crate) fn eval_block(
    prog: &EvalProgram<f64>,
    width: usize,
    vals: &mut [f64],
    term: &mut [f64],
    acc: &mut [f64],
    out: &mut [f64],
) {
    let np = prog.num_polys();
    let nl = prog.num_locals();
    for s in 0..prog.num_slots() {
        eval_row(prog, np + s, width, vals, term, acc);
        let base = (nl + s) * width;
        vals[base..base + width].copy_from_slice(acc);
    }
    for p in 0..np {
        eval_row(prog, p, width, vals, term, acc);
        for (lane, &a) in acc.iter().enumerate() {
            out[lane * np + p] = a;
        }
    }
}

/// One CSR row over the (possibly slot-extended) lane table: per lane the
/// unchanged `term = c; term *= x_f; acc += term` sequence.
fn eval_row(
    prog: &EvalProgram<f64>,
    row: usize,
    width: usize,
    vals: &[f64],
    term: &mut [f64],
    acc: &mut [f64],
) {
    acc.fill(0.0);
    let terms = prog.poly_offsets[row] as usize..prog.poly_offsets[row + 1] as usize;
    for t in terms {
        term.fill(prog.coeffs[t]);
        let factors = prog.term_offsets[t] as usize..prog.term_offsets[t + 1] as usize;
        for f in factors {
            let base = prog.var_ids[f] as usize * width;
            let xs = &vals[base..base + width];
            let e = prog.exps[f];
            if e == 1 {
                for (t, &x) in term.iter_mut().zip(xs) {
                    *t *= x;
                }
            } else {
                for (t, &x) in term.iter_mut().zip(xs) {
                    *t *= pow_f64(x, e);
                }
            }
        }
        for (a, &t) in acc.iter_mut().zip(&*term) {
            *a += t;
        }
    }
}
