//! Explicit AVX2 lane kernels (x86-64 only, runtime-detected).
//!
//! Default `x86-64` builds guarantee only SSE2, so the auto-vectorized
//! [`scalar`](super::scalar) kernel runs 2-wide and round-trips its term
//! buffer through L1 on every factor. These kernels run 4-wide with lane
//! tiles **outer** and terms inner: both each term's running product and
//! the row accumulator live in `ymm` registers across the whole row, so
//! per term the only memory traffic is the factor lane vectors (plus the
//! L1-hot CSR metadata, re-streamed once per 16-lane tile) and `acc` is
//! stored once per tile instead of per term.
//!
//! Per lane, [`eval_block`] performs the identical
//! `term = c; term *= x_f; acc += term` sequence as the scalar kernel
//! (exponents through the shared [`pow_f64`] chain), so its results are
//! **bit-identical** — how lanes are grouped into tiles cannot matter,
//! because lanes never interact. [`eval_block_fma`] instead fuses the
//! last factor into the accumulate (`acc = fma(term, x_last, acc)`), one
//! rounding fewer per term: *not* bit-identical to scalar, but strictly
//! within the Higham shadow bound (which counts the unfused roundings).

use crate::compile::EvalProgram;
use cobra_util::kernel::pow_f64;
use std::arch::x86_64::*;

/// Lanes per register tile: four 4-wide `ymm` term accumulators.
const TILE: usize = 16;

/// The mul+add AVX2 kernel — bit-identical to the scalar kernel.
///
/// # Safety
/// The CPU must support AVX2 (`cobra_util::kernel::avx2_available`).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn eval_block(
    prog: &EvalProgram<f64>,
    width: usize,
    vals: &mut [f64],
    acc: &mut [f64],
    out: &mut [f64],
) {
    eval_block_impl::<false>(prog, width, vals, acc, out);
}

/// The AVX2+FMA kernel — fused accumulate, certified by the Higham
/// shadow bound rather than bit-identity.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn eval_block_fma(
    prog: &EvalProgram<f64>,
    width: usize,
    vals: &mut [f64],
    acc: &mut [f64],
    out: &mut [f64],
) {
    eval_block_impl::<true>(prog, width, vals, acc, out);
}

#[inline(always)]
unsafe fn eval_block_impl<const FMA: bool>(
    prog: &EvalProgram<f64>,
    width: usize,
    vals: &mut [f64],
    acc: &mut [f64],
    out: &mut [f64],
) {
    let np = prog.num_polys();
    let nl = prog.num_locals();
    // Slot rows of a DAG program run first, each staging its accumulator
    // as the extended lane vector `nl + s`. A slot row only references
    // strictly earlier lane vectors, so the raw-pointer reads below never
    // alias the one vector being written.
    let vp = vals.as_mut_ptr();
    for s in 0..prog.num_slots() {
        eval_row::<FMA>(prog, np + s, width, vp, acc);
        std::ptr::copy_nonoverlapping(acc.as_ptr(), vp.add((nl + s) * width), width);
    }
    for p in 0..np {
        eval_row::<FMA>(prog, p, width, vp, acc);
        for (lane, &a) in acc.iter().enumerate() {
            out[lane * np + p] = a;
        }
    }
}

/// One CSR row over the (possibly slot-extended) lane table, accumulated
/// into `acc` — lane tiles outer, terms inner, so the four `ymm`
/// accumulators live in registers across the **whole row** and `acc` is
/// written once per tile instead of round-tripped through L1 per term.
/// For a lane the terms still run in CSR order with the identical
/// `term = c; term *= x_f; acc += term` chain, so the interchange cannot
/// change a single rounding: bit-identity with the scalar kernel is
/// preserved. The payoff is largest for single-factor rows (DAG programs
/// after CSE: one coefficient×slot multiply per term), where the
/// accumulator traffic used to cost more than the term itself.
#[inline(always)]
unsafe fn eval_row<const FMA: bool>(
    prog: &EvalProgram<f64>,
    row: usize,
    width: usize,
    vp: *const f64,
    acc: &mut [f64],
) {
    let terms = prog.poly_offsets[row] as usize..prog.poly_offsets[row + 1] as usize;
    // A *linear* row — every term exactly one factor, every exponent 1 —
    // is a dot product `Σ c_t · x_{v_t}`, the shape CSE leaves behind:
    // after the pair miner hoists shared products into slots, each DAG
    // output term is a single coefficient×slot multiply. Detecting it
    // here is one O(row) metadata scan per block (amortized over every
    // lane), and the specialized loop skips the per-term offset reads,
    // factor-loop control and exponent branches while performing the
    // identical per-lane multiply/add sequence — bit-identity holds.
    let linear = prog.term_offsets[terms.start..=terms.end]
        .windows(2)
        .all(|w| w[1] == w[0] + 1)
        && prog.exps[prog.term_offsets[terms.start] as usize
            ..prog.term_offsets[terms.end] as usize]
            .iter()
            .all(|&e| e == 1);
    if linear {
        return eval_row_linear::<FMA>(prog, terms, width, vp, acc);
    }
    let mut lane = 0;
    while lane + TILE <= width {
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = a0;
        let mut a2 = a0;
        let mut a3 = a0;
        for t in terms.clone() {
            let c = prog.coeffs[t];
            let f0 = prog.term_offsets[t] as usize;
            let f1 = prog.term_offsets[t + 1] as usize;
            // Constant terms have no factor to fuse into the accumulate.
            let fused = FMA && f1 > f0;
            let f_mul_end = if fused { f1 - 1 } else { f1 };
            let mut t0 = _mm256_set1_pd(c);
            let mut t1 = t0;
            let mut t2 = t0;
            let mut t3 = t0;
            for f in f0..f_mul_end {
                let base = prog.var_ids[f] as usize * width + lane;
                let (x0, x1, x2, x3) = load_tile(vp.add(base), prog.exps[f]);
                t0 = _mm256_mul_pd(t0, x0);
                t1 = _mm256_mul_pd(t1, x1);
                t2 = _mm256_mul_pd(t2, x2);
                t3 = _mm256_mul_pd(t3, x3);
            }
            if fused {
                let base = prog.var_ids[f1 - 1] as usize * width + lane;
                let (x0, x1, x2, x3) = load_tile(vp.add(base), prog.exps[f1 - 1]);
                a0 = _mm256_fmadd_pd(t0, x0, a0);
                a1 = _mm256_fmadd_pd(t1, x1, a1);
                a2 = _mm256_fmadd_pd(t2, x2, a2);
                a3 = _mm256_fmadd_pd(t3, x3, a3);
            } else {
                a0 = _mm256_add_pd(a0, t0);
                a1 = _mm256_add_pd(a1, t1);
                a2 = _mm256_add_pd(a2, t2);
                a3 = _mm256_add_pd(a3, t3);
            }
        }
        let ap = acc.as_mut_ptr().add(lane);
        _mm256_storeu_pd(ap, a0);
        _mm256_storeu_pd(ap.add(4), a1);
        _mm256_storeu_pd(ap.add(8), a2);
        _mm256_storeu_pd(ap.add(12), a3);
        lane += TILE;
    }
    // Ragged lanes, 4-wide first: a lone `ymm` accumulator covers all
    // but at most 3 lanes of a partial tile, so a 62-lane block
    // (1055-polynomial programs hit exactly this before the stream
    // rounding) is not mostly lane-at-a-time.
    while lane + 4 <= width {
        let mut a = _mm256_setzero_pd();
        for t in terms.clone() {
            let c = prog.coeffs[t];
            let f0 = prog.term_offsets[t] as usize;
            let f1 = prog.term_offsets[t + 1] as usize;
            let fused = FMA && f1 > f0;
            let f_mul_end = if fused { f1 - 1 } else { f1 };
            let mut tv = _mm256_set1_pd(c);
            for f in f0..f_mul_end {
                let base = prog.var_ids[f] as usize * width + lane;
                let x = load4(vp.add(base), prog.exps[f]);
                tv = _mm256_mul_pd(tv, x);
            }
            if fused {
                let base = prog.var_ids[f1 - 1] as usize * width + lane;
                let x = load4(vp.add(base), prog.exps[f1 - 1]);
                a = _mm256_fmadd_pd(tv, x, a);
            } else {
                a = _mm256_add_pd(a, tv);
            }
        }
        _mm256_storeu_pd(acc.as_mut_ptr().add(lane), a);
        lane += 4;
    }
    // Last <4 lanes: the identical per-lane chain in scalar form
    // (`mul_add` is a fused op exactly like `_mm256_fmadd_pd`,
    // so the FMA variant stays deterministic across blockings).
    for (off, slot) in acc[lane..width].iter_mut().enumerate() {
        let l = lane + off;
        let mut a = 0.0f64;
        for t in terms.clone() {
            let c = prog.coeffs[t];
            let f0 = prog.term_offsets[t] as usize;
            let f1 = prog.term_offsets[t + 1] as usize;
            let fused = FMA && f1 > f0;
            let f_mul_end = if fused { f1 - 1 } else { f1 };
            let mut tv = c;
            for f in f0..f_mul_end {
                let x = *vp.add(prog.var_ids[f] as usize * width + l);
                let e = prog.exps[f];
                tv *= if e == 1 { x } else { pow_f64(x, e) };
            }
            if fused {
                let x = *vp.add(prog.var_ids[f1 - 1] as usize * width + l);
                let e = prog.exps[f1 - 1];
                let xl = if e == 1 { x } else { pow_f64(x, e) };
                a = tv.mul_add(xl, a);
            } else {
                a += tv;
            }
        }
        *slot = a;
    }
}

/// The dot-product specialization of [`eval_row`] for linear rows
/// (`Σ c_t · x_{v_t}`): term `t`'s lone factor sits at CSR position
/// `term_offsets[terms.start] + (t - terms.start)`, so the loop streams
/// `coeffs` and `var_ids` in lockstep with no per-term offset reads, no
/// factor-loop control and no exponent dispatch. Per lane the operation
/// chain is exactly the generic one — `term = c; term *= x; acc += term`,
/// or the fused `acc = fma(c·x + acc)` in the FMA variant — so both
/// variants stay bit-identical to their generic selves.
#[inline(always)]
unsafe fn eval_row_linear<const FMA: bool>(
    prog: &EvalProgram<f64>,
    terms: std::ops::Range<usize>,
    width: usize,
    vp: *const f64,
    acc: &mut [f64],
) {
    let fbase = prog.term_offsets[terms.start] as usize;
    let vars = &prog.var_ids[fbase..fbase + terms.len()];
    let coeffs = &prog.coeffs[terms];
    let mut lane = 0;
    while lane + TILE <= width {
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = a0;
        let mut a2 = a0;
        let mut a3 = a0;
        for (&c, &v) in coeffs.iter().zip(vars) {
            let p = vp.add(v as usize * width + lane);
            let x0 = _mm256_loadu_pd(p);
            let x1 = _mm256_loadu_pd(p.add(4));
            let x2 = _mm256_loadu_pd(p.add(8));
            let x3 = _mm256_loadu_pd(p.add(12));
            let cv = _mm256_set1_pd(c);
            if FMA {
                a0 = _mm256_fmadd_pd(cv, x0, a0);
                a1 = _mm256_fmadd_pd(cv, x1, a1);
                a2 = _mm256_fmadd_pd(cv, x2, a2);
                a3 = _mm256_fmadd_pd(cv, x3, a3);
            } else {
                a0 = _mm256_add_pd(a0, _mm256_mul_pd(cv, x0));
                a1 = _mm256_add_pd(a1, _mm256_mul_pd(cv, x1));
                a2 = _mm256_add_pd(a2, _mm256_mul_pd(cv, x2));
                a3 = _mm256_add_pd(a3, _mm256_mul_pd(cv, x3));
            }
        }
        let ap = acc.as_mut_ptr().add(lane);
        _mm256_storeu_pd(ap, a0);
        _mm256_storeu_pd(ap.add(4), a1);
        _mm256_storeu_pd(ap.add(8), a2);
        _mm256_storeu_pd(ap.add(12), a3);
        lane += TILE;
    }
    while lane + 4 <= width {
        let mut a = _mm256_setzero_pd();
        for (&c, &v) in coeffs.iter().zip(vars) {
            let x = _mm256_loadu_pd(vp.add(v as usize * width + lane));
            let cv = _mm256_set1_pd(c);
            a = if FMA {
                _mm256_fmadd_pd(cv, x, a)
            } else {
                _mm256_add_pd(a, _mm256_mul_pd(cv, x))
            };
        }
        _mm256_storeu_pd(acc.as_mut_ptr().add(lane), a);
        lane += 4;
    }
    for (off, slot) in acc[lane..width].iter_mut().enumerate() {
        let l = lane + off;
        let mut a = 0.0f64;
        for (&c, &v) in coeffs.iter().zip(vars) {
            let x = *vp.add(v as usize * width + l);
            if FMA {
                a = c.mul_add(x, a);
            } else {
                a += c * x;
            }
        }
        *slot = a;
    }
}

/// Loads one 16-lane tile of a factor's lane vector, applying the
/// exponent through the register form of the shared [`pow_f64`] chain.
#[inline(always)]
unsafe fn load_tile(p: *const f64, e: u32) -> (__m256d, __m256d, __m256d, __m256d) {
    let x0 = _mm256_loadu_pd(p);
    let x1 = _mm256_loadu_pd(p.add(4));
    let x2 = _mm256_loadu_pd(p.add(8));
    let x3 = _mm256_loadu_pd(p.add(12));
    if e == 1 {
        (x0, x1, x2, x3)
    } else {
        (pow4(x0, e), pow4(x1, e), pow4(x2, e), pow4(x3, e))
    }
}

/// Loads one 4-lane vector of a factor's lane vector, applying the
/// exponent through the register form of the shared [`pow_f64`] chain.
#[inline(always)]
unsafe fn load4(p: *const f64, e: u32) -> __m256d {
    let x = _mm256_loadu_pd(p);
    if e == 1 {
        x
    } else {
        pow4(x, e)
    }
}

/// 4-wide [`pow_f64`]: the same LSB-first square-and-multiply chain per
/// lane, so exponentiation cannot break cross-kernel bit-identity.
#[inline(always)]
unsafe fn pow4(x: __m256d, e: u32) -> __m256d {
    let mut base = x;
    let mut e = e;
    let mut acc = _mm256_set1_pd(1.0);
    loop {
        if e & 1 == 1 {
            acc = _mm256_mul_pd(acc, base);
        }
        e >>= 1;
        if e == 0 {
            break;
        }
        base = _mm256_mul_pd(base, base);
    }
    acc
}
