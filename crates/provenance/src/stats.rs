//! Summary statistics for provenance sets.
//!
//! The demonstration UI (paper §3) reports "the resulting provenance size";
//! these statistics back that read-out and the experiment tables.

use crate::poly::Coeff;
use crate::polyset::PolySet;
use std::fmt;

/// Aggregate size/shape statistics of a [`PolySet`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvenanceStats {
    /// Number of polynomials (result tuples).
    pub num_polynomials: usize,
    /// Total monomials across all polynomials — the paper's size measure.
    pub total_monomials: usize,
    /// Number of distinct variables — the paper's expressiveness measure.
    pub distinct_vars: usize,
    /// Largest single polynomial (in monomials).
    pub max_poly_monomials: usize,
    /// Maximum total degree of any monomial.
    pub max_degree: u32,
}

impl ProvenanceStats {
    /// Computes statistics for `set`.
    pub fn compute<C: Coeff>(set: &PolySet<C>) -> ProvenanceStats {
        let mut max_poly = 0usize;
        let mut max_degree = 0u32;
        for (_, p) in set.iter() {
            max_poly = max_poly.max(p.num_terms());
            max_degree = max_degree.max(p.degree());
        }
        ProvenanceStats {
            num_polynomials: set.len(),
            total_monomials: set.total_monomials(),
            distinct_vars: set.distinct_vars().len(),
            max_poly_monomials: max_poly,
            max_degree,
        }
    }

    /// Mean monomials per polynomial.
    pub fn mean_monomials(&self) -> f64 {
        if self.num_polynomials == 0 {
            0.0
        } else {
            self.total_monomials as f64 / self.num_polynomials as f64
        }
    }
}

impl fmt::Display for ProvenanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} polynomials, {} monomials ({} distinct vars, max poly {}, max degree {})",
            self.num_polynomials,
            cobra_util::table::thousands(self.total_monomials as u64),
            self.distinct_vars,
            self.max_poly_monomials,
            self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use crate::poly::Polynomial;
    use crate::var::VarRegistry;
    use cobra_util::Rat;

    #[test]
    fn computes_all_measures() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut set = PolySet::new();
        set.push(
            "a",
            Polynomial::from_terms([
                (Monomial::from_pairs([(x, 2), (y, 1)]), Rat::ONE),
                (Monomial::var(y), Rat::int(2)),
            ]),
        );
        set.push("b", Polynomial::constant(Rat::int(5)));
        let stats = ProvenanceStats::compute(&set);
        assert_eq!(stats.num_polynomials, 2);
        assert_eq!(stats.total_monomials, 3);
        assert_eq!(stats.distinct_vars, 2);
        assert_eq!(stats.max_poly_monomials, 2);
        assert_eq!(stats.max_degree, 3);
        assert!((stats.mean_monomials() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_set() {
        let set: PolySet<Rat> = PolySet::new();
        let stats = ProvenanceStats::compute(&set);
        assert_eq!(stats.total_monomials, 0);
        assert_eq!(stats.mean_monomials(), 0.0);
        let s = stats.to_string();
        assert!(s.contains("0 polynomials"));
    }
}
