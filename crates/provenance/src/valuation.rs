//! Valuations: assignments of values to provenance variables.
//!
//! Hypothetical reasoning = pick a valuation, evaluate the provenance
//! polynomial (paper §1). Two representations are provided:
//!
//! * [`Valuation`] — sparse map with an optional default, the user-facing
//!   form ("set `m3 = 0.8`, everything else 1").
//! * [`DenseValuation`] — a flat slice indexed by variable id, the compiled
//!   fast path whose lookup is one bounds-checked index. The paper's
//!   "assignment speedup" experiments time this path.

use crate::poly::Coeff;
use crate::var::Var;
use cobra_util::FxHashMap;

/// A sparse variable assignment with an optional default value for
/// unmentioned variables.
#[derive(Clone, Debug, PartialEq)]
pub struct Valuation<C> {
    map: FxHashMap<Var, C>,
    default: Option<C>,
}

impl<C: Coeff> Default for Valuation<C> {
    fn default() -> Self {
        Valuation {
            map: FxHashMap::default(),
            default: None,
        }
    }
}

impl<C: Coeff> Valuation<C> {
    /// An empty valuation with no default: evaluation fails on any variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty valuation where unmentioned variables evaluate to `default`.
    /// `Valuation::with_default(C::one())` is the identity scenario: nothing
    /// changes, the query result equals the original.
    pub fn with_default(default: C) -> Self {
        Valuation {
            map: FxHashMap::default(),
            default: Some(default),
        }
    }

    /// Binds `v` to `value`, returning any previous binding.
    pub fn set(&mut self, v: Var, value: C) -> Option<C> {
        self.map.insert(v, value)
    }

    /// Builder-style [`set`](Self::set).
    pub fn bind(mut self, v: Var, value: C) -> Self {
        self.set(v, value);
        self
    }

    /// The value of `v`: its binding, or the default.
    pub fn get(&self, v: Var) -> Option<C> {
        self.map.get(&v).cloned().or_else(|| self.default.clone())
    }

    /// The explicit binding of `v` (ignores the default).
    pub fn get_explicit(&self, v: Var) -> Option<&C> {
        self.map.get(&v)
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff there are no explicit bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The default value, if any.
    pub fn default_value(&self) -> Option<&C> {
        self.default.as_ref()
    }

    /// Iterates explicit `(var, value)` bindings (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (Var, &C)> {
        self.map.iter().map(|(&v, c)| (v, c))
    }

    /// Maps all values (and the default) into another coefficient ring —
    /// e.g. exact `Rat` → `f64` for the timing fast path.
    pub fn map<D: Coeff>(&self, mut f: impl FnMut(&C) -> D) -> Valuation<D> {
        let mut out = Valuation {
            map: FxHashMap::default(),
            default: self.default.as_ref().map(&mut f),
        };
        for (v, c) in self.iter() {
            out.set(v, f(c));
        }
        out
    }

    /// Merges `other`'s explicit bindings over this valuation (right bias).
    pub fn overridden_by(&self, other: &Valuation<C>) -> Valuation<C> {
        let mut out = self.clone();
        for (v, c) in other.iter() {
            out.set(v, c.clone());
        }
        if let Some(d) = &other.default {
            out.default = Some(d.clone());
        }
        out
    }
}

/// A dense variable assignment: `values[var.index()]`.
///
/// Compiled once per scenario from a sparse [`Valuation`]; evaluation of a
/// large polynomial set then performs no hashing at all.
#[derive(Clone, Debug)]
pub struct DenseValuation<C> {
    values: Vec<C>,
}

impl<C: Coeff> DenseValuation<C> {
    /// Compiles a sparse valuation into a dense table covering variables
    /// `0..num_vars`, using the valuation's default (or `fallback`) for
    /// unbound variables.
    pub fn from_valuation(val: &Valuation<C>, num_vars: usize, fallback: C) -> Self {
        let default = val.default_value().cloned().unwrap_or(fallback);
        let mut values = vec![default; num_vars];
        for (v, c) in val.iter() {
            if v.index() < values.len() {
                values[v.index()] = c.clone();
            }
        }
        DenseValuation { values }
    }

    /// Builds directly from a value table.
    pub fn from_values(values: Vec<C>) -> Self {
        DenseValuation { values }
    }

    /// The value of `v`.
    ///
    /// # Panics
    /// Panics if `v` is outside the compiled range.
    #[inline]
    pub fn get(&self, v: Var) -> &C {
        &self.values[v.index()]
    }

    /// Number of covered variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mutable access (used by scenario sweeps that perturb one variable).
    pub fn set(&mut self, v: Var, value: C) {
        self.values[v.index()] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_util::Rat;

    #[test]
    fn sparse_lookup_and_default() {
        let mut val: Valuation<Rat> = Valuation::with_default(Rat::ONE);
        assert_eq!(val.get(Var(5)), Some(Rat::ONE));
        val.set(Var(5), Rat::int(3));
        assert_eq!(val.get(Var(5)), Some(Rat::int(3)));
        assert_eq!(val.get_explicit(Var(4)), None);
        assert_eq!(val.len(), 1);
    }

    #[test]
    fn no_default_means_none() {
        let val: Valuation<Rat> = Valuation::new();
        assert_eq!(val.get(Var(0)), None);
    }

    #[test]
    fn override_merge() {
        let base: Valuation<Rat> = Valuation::with_default(Rat::ONE)
            .bind(Var(0), Rat::int(2))
            .bind(Var(1), Rat::int(3));
        let scenario = Valuation::new().bind(Var(1), Rat::int(9));
        let merged = base.overridden_by(&scenario);
        assert_eq!(merged.get(Var(0)), Some(Rat::int(2)));
        assert_eq!(merged.get(Var(1)), Some(Rat::int(9)));
        assert_eq!(merged.get(Var(7)), Some(Rat::ONE)); // default kept
    }

    #[test]
    fn dense_compilation() {
        let val: Valuation<Rat> = Valuation::with_default(Rat::ONE).bind(Var(2), Rat::int(5));
        let dense = DenseValuation::from_valuation(&val, 4, Rat::ZERO);
        assert_eq!(*dense.get(Var(2)), Rat::int(5));
        assert_eq!(*dense.get(Var(0)), Rat::ONE); // valuation default wins over fallback
        assert_eq!(dense.len(), 4);
    }

    #[test]
    fn dense_fallback_when_no_default() {
        let val: Valuation<Rat> = Valuation::new().bind(Var(0), Rat::int(2));
        let dense = DenseValuation::from_valuation(&val, 3, Rat::int(7));
        assert_eq!(*dense.get(Var(1)), Rat::int(7));
    }
}
