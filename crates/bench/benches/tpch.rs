//! Benchmark for experiment E7: the TPC-H phase — query evaluation with
//! provenance and compression against the geography tree.

use cobra_core::{dp, GroupAnalysis};
use cobra_datagen::tpch::{
    geography_tree, InstrumentedTpch, TpchConfig, TpchDatabase, TPCH_QUERIES,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_tpch(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let instrumented =
        InstrumentedTpch::new(TpchDatabase::generate(TpchConfig::sf(0.005)));

    for query in &TPCH_QUERIES {
        group.bench_with_input(
            BenchmarkId::new("query", query.name),
            &(&instrumented, query),
            |b, (instrumented, query)| {
                b.iter(|| {
                    let set = instrumented.run(query).expect("query runs");
                    std::hint::black_box(set.total_monomials())
                });
            },
        );
    }

    // compression of the Q1 provenance
    let polys = instrumented.run(&TPCH_QUERIES[0]).expect("Q1");
    let mut reg = instrumented.reg.clone();
    let geo = geography_tree(&mut reg);
    group.bench_function("q1_analyze_and_optimize", |b| {
        b.iter(|| {
            let analysis = GroupAnalysis::analyze(&polys, &geo).expect("one nation var");
            let bound = analysis.total_monomials() / 3;
            std::hint::black_box(dp::optimize(&geo, &analysis, bound).ok())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_tpch);
criterion_main!(benches);
