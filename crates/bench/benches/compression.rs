//! Benchmarks for experiments E2/E3: the compression pipeline — group
//! analysis, DP optimization, and cut application — at telephony scales,
//! plus the session's frontier re-selection path (E12).

use cobra_bench::{scale_bound, telephony_workload};
use cobra_core::{apply_cut, dp, CobraSession, GroupAnalysis};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for customers in [10_000usize, 100_000] {
        let w = telephony_workload(customers);
        group.bench_with_input(
            BenchmarkId::new("group_analysis", customers),
            &w,
            |b, w| {
                b.iter(|| GroupAnalysis::analyze(&w.polys, &w.tree).expect("telephony"));
            },
        );
        let analysis = GroupAnalysis::analyze(&w.polys, &w.tree).expect("telephony");
        let bound = scale_bound(38_600, w.config.zips);
        group.bench_with_input(
            BenchmarkId::new("dp_optimize", customers),
            &(&w, &analysis),
            |b, (w, analysis)| {
                b.iter(|| dp::optimize(&w.tree, analysis, bound).expect("feasible"));
            },
        );
        let sol = dp::optimize(&w.tree, &analysis, bound).expect("feasible");
        group.bench_with_input(
            BenchmarkId::new("apply_cut", customers),
            &(&w, &sol),
            |b, (w, sol)| {
                b.iter_batched(
                    || w.reg.clone(),
                    |mut reg| apply_cut(&w.polys, &w.tree, &sol.cut, &mut reg),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }

    // Session bound-change paths at 100k customers: a fresh compress()
    // per bound vs frontier re-selection (lazy polynomials + engines).
    let w = telephony_workload(100_000);
    let bound_a = scale_bound(94_600, w.config.zips);
    let bound_b = scale_bound(38_600, w.config.zips);
    let mut session = CobraSession::new(w.reg.clone(), w.polys.clone());
    session.add_tree(w.tree.clone());
    session.compress_frontier().expect("single tree");
    group.bench_function("session_select_bound", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            session
                .select_bound(if flip { bound_a } else { bound_b })
                .expect("feasible")
        });
    });
    let mut session = CobraSession::new(w.reg.clone(), w.polys.clone());
    session.add_tree(w.tree.clone());
    group.bench_function("session_compress", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            session.set_bound(if flip { bound_a } else { bound_b });
            session.compress().expect("feasible")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
