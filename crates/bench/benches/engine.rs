//! Benchmark for ablation A2: provenance generation throughput — the
//! instrumented SQL path vs. the verified direct path, plus raw engine
//! operator costs.

use cobra_datagen::telephony::{Telephony, TelephonyConfig};
use cobra_provenance::VarRegistry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for customers in [1_000usize, 5_000] {
        let config = TelephonyConfig {
            customers,
            zips: 50,
            months: 6,
            seed: 4,
        };
        // end-to-end: tables + parameterization + 3-way join + aggregate
        group.bench_with_input(
            BenchmarkId::new("sql_provenance", customers),
            &config,
            |b, &config| {
                b.iter(|| {
                    let t = Telephony::generate(config);
                    std::hint::black_box(t.revenue_polyset().total_monomials())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("direct_provenance", customers),
            &config,
            |b, &config| {
                b.iter(|| {
                    let mut reg = VarRegistry::new();
                    let (set, _, _) = Telephony::direct_polyset(config, &mut reg);
                    std::hint::black_box(set.total_monomials())
                });
            },
        );
        // query-only cost (tables pre-built)
        let t = Telephony::generate(config);
        group.bench_with_input(
            BenchmarkId::new("query_only", customers),
            &t,
            |b, t| {
                b.iter(|| std::hint::black_box(t.revenue_polyset().total_monomials()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
