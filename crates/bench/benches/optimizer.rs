//! Benchmark for ablation A1: the exact DP against the brute-force
//! enumeration on small trees, DP scaling with tree size (the PTIME
//! claim of §2), and the unified planner's frontier path (one pass for
//! the whole bound axis vs per-bound re-planning).

use cobra_core::planner::{CutPlanner, ExactDp, PlanContext};
use cobra_core::{dp, enumerate_cuts, GroupAnalysis};
use cobra_datagen::synthetic::{generate, SyntheticConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // DP vs brute force on an enumerable tree.
    let small = generate(SyntheticConfig {
        leaves: 12,
        max_children: 3,
        polynomials: 4,
        contexts: 3,
        density: 0.5,
        seed: 12,
    });
    let analysis = GroupAnalysis::analyze(&small.set, &small.tree).expect("synthetic");
    let bound = analysis.total_monomials() / 2;
    group.bench_function("dp_12_leaves", |b| {
        b.iter(|| dp::optimize(&small.tree, &analysis, bound).expect("feasible"));
    });
    group.bench_function("brute_force_12_leaves", |b| {
        let cuts = enumerate_cuts(&small.tree, 1_000_000).expect("enumerable");
        b.iter(|| {
            cuts.iter()
                .map(|c| (c.len(), analysis.compressed_size(c.nodes())))
                .filter(|&(_, s)| s <= bound)
                .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
        });
    });

    // The frontier path: one PlanContext + plan_frontier answers every
    // bound, vs re-deriving the context per bound (the pre-planner shape
    // of a bound sweep). 8 bounds evenly spaced over the size range.
    let full = analysis.total_monomials();
    let bounds: Vec<u64> = (0..8u64).map(|i| full / 4 + (full - full / 4) * i / 7).collect();
    group.bench_function("frontier_once_12_leaves", |b| {
        b.iter(|| {
            let ctx = PlanContext::new(&small.tree, &analysis);
            let frontier = ExactDp.plan_frontier(&ctx).expect("DP frontier");
            bounds
                .iter()
                .filter_map(|&bound| frontier.select(bound))
                .count()
        });
    });
    group.bench_function("replan_per_bound_12_leaves", |b| {
        b.iter(|| {
            bounds
                .iter()
                .filter(|&&bound| dp::optimize(&small.tree, &analysis, bound).is_ok())
                .count()
        });
    });

    // DP scaling in the number of leaves.
    for leaves in [128usize, 512, 2048] {
        let synthetic = generate(SyntheticConfig {
            leaves,
            max_children: 4,
            polynomials: 8,
            contexts: 4,
            density: 0.3,
            seed: 7,
        });
        let analysis =
            GroupAnalysis::analyze(&synthetic.set, &synthetic.tree).expect("synthetic");
        let bound = analysis.total_monomials() / 2;
        group.bench_with_input(
            BenchmarkId::new("dp_scaling", leaves),
            &(&synthetic, &analysis),
            |b, (synthetic, analysis)| {
                b.iter(|| dp::optimize(&synthetic.tree, analysis, bound).expect("feasible"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
