//! Benchmarks for the sweep surfaces: experiment E5's bound sweep (the
//! full expressiveness/size Pareto frontier and optimization at a range
//! of bounds — the interactive loop of the demonstration) and experiment
//! E10's streaming fold-sweeps (exact vs approximate `f64` aggregation
//! over a 10⁵-scenario grid in O(1) output memory).

use cobra_bench::telephony_workload;
use cobra_core::folds::{self, ArgmaxImpact, MaxAbsError};
use cobra_core::{dp, pareto_frontier, CobraSession, GroupAnalysis};
use cobra_datagen::scenarios;
use cobra_datagen::telephony::Telephony;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for customers in [10_000usize, 100_000] {
        let w = telephony_workload(customers);
        let analysis = GroupAnalysis::analyze(&w.polys, &w.tree).expect("telephony");
        group.bench_with_input(
            BenchmarkId::new("pareto_frontier", customers),
            &(&w, &analysis),
            |b, (w, analysis)| {
                b.iter(|| pareto_frontier(&w.tree, analysis));
            },
        );
        let full = analysis.total_monomials();
        group.bench_with_input(
            BenchmarkId::new("optimize_8_bounds", customers),
            &(&w, &analysis),
            |b, (w, analysis)| {
                b.iter(|| {
                    for divisor in [1u64, 2, 3, 4, 6, 8, 12, 24] {
                        let bound = (full / divisor).max(1);
                        std::hint::black_box(dp::optimize(&w.tree, analysis, bound).ok());
                    }
                });
            },
        );
    }
    group.finish();
}

/// E10: streaming fold-sweeps over the paper example's 47³-scenario grid
/// — the exact `Rat` fold vs the approximate `f64` lane-kernel fold, both
/// aggregating max-error + argmax-impact without a result matrix.
fn bench_fold_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fold_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(5));

    let t = Telephony::paper_example();
    let polys = t.revenue_polyset();
    let mut session = CobraSession::new(t.reg, polys);
    session
        .add_tree_text(
            "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))",
        )
        .expect("Fig. 2 tree");
    session.set_bound(6);
    session.compress().expect("feasible");
    let grid = scenarios::telephony_grid(session.registry_mut(), 47);
    let base = session.baseline_results().expect("compressed");

    group.bench_with_input(
        BenchmarkId::new("exact_rat", grid.len()),
        &(&session, &grid),
        |b, (session, grid)| {
            b.iter(|| {
                session
                    .sweep_fold(*grid, MaxAbsError::new(), folds::step)
                    .expect("compressed")
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("f64_lane_kernel", grid.len()),
        &(&session, &grid, &base),
        |b, (session, grid, base)| {
            b.iter(|| {
                session
                    .sweep_fold_f64(
                        *grid,
                        (MaxAbsError::new(), ArgmaxImpact::against((*base).clone())),
                        |(w, a), item| (folds::step(w, item), folds::step(a, item)),
                    )
                    .expect("compressed")
            });
        },
    );
    // The parallel fold-combine engines (MergeFold replicas fanned across
    // workers, merged in span order). On a single-core container these
    // measure the fan-out overhead (≈1×); on multi-core hardware the
    // scaling curve via COBRA_THREADS — see experiment E11.
    let threads = cobra_util::par::num_threads();
    group.bench_with_input(
        BenchmarkId::new(format!("exact_rat_par_t{threads}"), grid.len()),
        &(&session, &grid),
        |b, (session, grid)| {
            b.iter(|| {
                session
                    .sweep_fold_par(*grid, MaxAbsError::new())
                    .expect("compressed")
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new(format!("f64_lane_kernel_par_t{threads}"), grid.len()),
        &(&session, &grid, &base),
        |b, (session, grid, base)| {
            b.iter(|| {
                session
                    .sweep_fold_f64_par(
                        *grid,
                        (MaxAbsError::new(), ArgmaxImpact::against((*base).clone())),
                    )
                    .expect("compressed")
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_fold_sweep);
criterion_main!(benches);
