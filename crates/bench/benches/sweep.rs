//! Benchmark for experiment E5: the bound sweep — computing the full
//! expressiveness/size Pareto frontier, and optimizing at a range of
//! bounds (the interactive loop of the demonstration).

use cobra_bench::telephony_workload;
use cobra_core::{dp, pareto_frontier, GroupAnalysis};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for customers in [10_000usize, 100_000] {
        let w = telephony_workload(customers);
        let analysis = GroupAnalysis::analyze(&w.polys, &w.tree).expect("telephony");
        group.bench_with_input(
            BenchmarkId::new("pareto_frontier", customers),
            &(&w, &analysis),
            |b, (w, analysis)| {
                b.iter(|| pareto_frontier(&w.tree, analysis));
            },
        );
        let full = analysis.total_monomials();
        group.bench_with_input(
            BenchmarkId::new("optimize_8_bounds", customers),
            &(&w, &analysis),
            |b, (w, analysis)| {
                b.iter(|| {
                    for divisor in [1u64, 2, 3, 4, 6, 8, 12, 24] {
                        let bound = (full / divisor).max(1);
                        std::hint::black_box(dp::optimize(&w.tree, analysis, bound).ok());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
