//! Ablation benches (A1/A4): greedy vs exact DP, and the three
//! valuation-evaluation paths (dense f64 / sparse f64 / exact rational).

use cobra_bench::{scale_bound, telephony_workload};
use cobra_core::{dp, optimize_greedy, GroupAnalysis};
use cobra_datagen::scenarios;
use cobra_provenance::DenseValuation;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let mut w = telephony_workload(100_000);
    let analysis = GroupAnalysis::analyze(&w.polys, &w.tree).expect("telephony");
    let bound = scale_bound(38_600, w.config.zips);

    group.bench_function("optimizer/dp", |b| {
        b.iter(|| dp::optimize(&w.tree, &analysis, bound).expect("feasible"));
    });
    group.bench_function("optimizer/greedy", |b| {
        b.iter(|| optimize_greedy(&w.tree, &analysis, bound).expect("feasible"));
    });

    let scenario_rat = scenarios::march_discount().valuation(&mut w.reg);
    let scenario_f64 = scenario_rat.map(|c| c.to_f64());
    let full64 = w.polys.to_f64_set();
    let dense = DenseValuation::from_valuation(&scenario_f64, w.reg.len(), 1.0);
    group.bench_function("valuation/dense_f64", |b| {
        b.iter(|| std::hint::black_box(full64.eval_dense(&dense).len()));
    });
    group.bench_function("valuation/sparse_f64", |b| {
        b.iter(|| std::hint::black_box(full64.eval(&scenario_f64).expect("total").len()));
    });
    group.bench_function("valuation/exact_rational", |b| {
        b.iter(|| std::hint::black_box(w.polys.eval(&scenario_rat).expect("total").len()));
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
