//! Benchmark for experiment E4: assignment (valuation) time on the full
//! vs. compressed provenance — the kernel behind the paper's 47%/79%
//! speedup figures.

use cobra_bench::{scale_bound, telephony_workload, PAPER_BOUNDS};
use cobra_core::{apply_cut, dp, GroupAnalysis};
use cobra_datagen::scenarios;
use cobra_provenance::DenseValuation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let customers = 100_000usize;
    let mut w = telephony_workload(customers);
    let analysis = GroupAnalysis::analyze(&w.polys, &w.tree).expect("telephony");
    let scenario = scenarios::march_discount()
        .valuation(&mut w.reg)
        .map(|c| c.to_f64());

    let full64 = w.polys.to_f64_set();
    let dense = DenseValuation::from_valuation(&scenario, w.reg.len(), 1.0);
    group.bench_function(BenchmarkId::new("full", full64.total_monomials()), |b| {
        b.iter(|| std::hint::black_box(full64.eval_dense(&dense).len()));
    });

    for (bound, _, _) in PAPER_BOUNDS {
        let scaled = scale_bound(bound, w.config.zips);
        let sol = dp::optimize(&w.tree, &analysis, scaled).expect("feasible");
        let applied = apply_cut(&w.polys, &w.tree, &sol.cut, &mut w.reg);
        let comp64 = applied.compressed.to_f64_set();
        let dense = DenseValuation::from_valuation(&scenario, w.reg.len(), 1.0);
        group.bench_function(
            BenchmarkId::new("compressed", comp64.total_monomials()),
            |b| {
                b.iter(|| std::hint::black_box(comp64.eval_dense(&dense).len()));
            },
        );
    }

    // exact-rational evaluation for reference (the correctness path)
    let rat_val = scenarios::march_discount().valuation(&mut w.reg);
    group.sample_size(10);
    group.bench_function("full_exact_rational", |b| {
        b.iter(|| w.polys.eval(&rat_val).expect("total"));
    });
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
