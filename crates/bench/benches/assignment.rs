//! Benchmark for experiment E4: assignment (valuation) time on the full
//! vs. compressed provenance — the kernel behind the paper's 47%/79%
//! speedup figures — plus the compiled batch engine: one CSR program
//! evaluated for a 64-scenario sweep, against the per-scenario
//! `eval_dense` walk it replaces.

use cobra_bench::{scale_bound, telephony_workload, PAPER_BOUNDS};
use cobra_core::{apply_cut, dp, GroupAnalysis};
use cobra_datagen::scenarios;
use cobra_provenance::{BatchEvaluator, DenseValuation, Valuation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Scenario batch size for the sweep benches (the acceptance bar is ≥ 64).
const SWEEP: usize = 64;

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let customers = 100_000usize;
    let mut w = telephony_workload(customers);
    let analysis = GroupAnalysis::analyze(&w.polys, &w.tree).expect("telephony");
    let scenario = scenarios::march_discount()
        .valuation(&mut w.reg)
        .map(|c| c.to_f64());

    let full64 = w.polys.to_f64_set();
    let dense = DenseValuation::from_valuation(&scenario, w.reg.len(), 1.0);
    group.bench_function(BenchmarkId::new("full", full64.total_monomials()), |b| {
        b.iter(|| std::hint::black_box(full64.eval_dense(&dense).len()));
    });

    // The compiled engine on the same single scenario: amortizes lowering
    // across calls, so even a one-scenario assignment skips the
    // monomial-pointer walk.
    let full_engine = BatchEvaluator::compile(&full64);
    let row = full_engine.program().bind_dense(&dense);
    group.bench_function(
        BenchmarkId::new("full_compiled", full64.total_monomials()),
        |b| {
            b.iter(|| {
                std::hint::black_box(full_engine.program().eval_scenario(&row).len())
            });
        },
    );

    // ---- the batched sweep: SWEEP scenarios at once --------------------
    // Distinct discount factors so no two scenario rows are equal. One
    // shared scenario list feeds both the full and the compressed sweeps.
    let m3 = w.reg.lookup("m3").expect("telephony month var");
    let sweep_scenarios: Vec<Valuation<f64>> = (0..SWEEP)
        .map(|i| {
            let mut v = scenario.clone();
            v.set(m3, 0.5 + i as f64 / SWEEP as f64);
            v
        })
        .collect();
    let sweep_vals: Vec<DenseValuation<f64>> = sweep_scenarios
        .iter()
        .map(|v| DenseValuation::from_valuation(v, w.reg.len(), 1.0))
        .collect();
    let sweep_rows: Vec<Vec<f64>> = sweep_vals
        .iter()
        .map(|d| full_engine.program().bind_dense(d))
        .collect();
    group.bench_function(
        BenchmarkId::new("sweep64_dense_scalar", full64.total_monomials()),
        |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for dense in &sweep_vals {
                    acc += full64.eval_dense(dense).len();
                }
                std::hint::black_box(acc)
            });
        },
    );
    group.bench_function(
        BenchmarkId::new("sweep64_compiled_batch", full64.total_monomials()),
        |b| {
            b.iter(|| {
                std::hint::black_box(full_engine.eval_batch_fast(&sweep_rows).num_scenarios())
            });
        },
    );

    for (bound, _, _) in PAPER_BOUNDS {
        let scaled = scale_bound(bound, w.config.zips);
        let sol = dp::optimize(&w.tree, &analysis, scaled).expect("feasible");
        let applied = apply_cut(&w.polys, &w.tree, &sol.cut, &mut w.reg);
        let comp64 = applied.compressed.to_f64_set();
        let dense = DenseValuation::from_valuation(&scenario, w.reg.len(), 1.0);
        group.bench_function(
            BenchmarkId::new("compressed", comp64.total_monomials()),
            |b| {
                b.iter(|| std::hint::black_box(comp64.eval_dense(&dense).len()));
            },
        );
        // Compressed side through the same batched engine (the sweep the
        // paper's interactive exploration performs after compression), over
        // the same shared scenario list. Rebuild the dense tables at the
        // *current* registry width: the cut application just registered the
        // meta-variables (they take the scenario default, 1.0 — the march
        // discount lies outside the tree).
        let comp_engine = BatchEvaluator::compile(&comp64);
        let comp_rows: Vec<Vec<f64>> = sweep_scenarios
            .iter()
            .map(|v| {
                let dense = DenseValuation::from_valuation(v, w.reg.len(), 1.0);
                comp_engine.program().bind_dense(&dense)
            })
            .collect();
        group.bench_function(
            BenchmarkId::new("sweep64_compressed_batch", comp64.total_monomials()),
            |b| {
                b.iter(|| {
                    std::hint::black_box(
                        comp_engine.eval_batch_fast(&comp_rows).num_scenarios(),
                    )
                });
            },
        );
    }

    // exact-rational evaluation for reference (the correctness path)
    let rat_val = scenarios::march_discount().valuation(&mut w.reg);
    group.sample_size(10);
    group.bench_function("full_exact_rational", |b| {
        b.iter(|| w.polys.eval(&rat_val).expect("total"));
    });
    let exact_engine = BatchEvaluator::compile(&w.polys);
    let exact_row = exact_engine
        .program()
        .bind(&rat_val)
        .expect("total valuation");
    group.bench_function("full_exact_rational_compiled", |b| {
        b.iter(|| {
            std::hint::black_box(exact_engine.program().eval_scenario(&exact_row).len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
