//! Shared harness for the experiment reproduction.
//!
//! Each experiment in DESIGN.md's index (E1–E8, A1–A3) has a function in
//! the `experiments` binary; this library holds the workload builders and
//! formatting helpers they share with the criterion benches.

use cobra_core::tree::AbstractionTree;
use cobra_datagen::telephony::{Telephony, TelephonyConfig};
use cobra_provenance::{PolySet, VarRegistry};
use cobra_util::Rat;

/// The bounds §4 of the paper reports, with the sizes it states.
pub const PAPER_FULL_SIZE: u64 = 139_260;
/// (bound, expected compressed size, reported speedup %)
pub const PAPER_BOUNDS: [(u64, u64, f64); 2] = [(94_600, 88_620, 47.0), (38_600, 37_980, 79.0)];

/// A telephony workload ready for compression experiments.
pub struct TelephonyWorkload {
    pub reg: VarRegistry,
    pub polys: PolySet<Rat>,
    pub tree: AbstractionTree,
    pub config: TelephonyConfig,
}

/// Builds the telephony workload at a given customer count via the
/// verified direct path (identical to the engine output; see
/// `tests/paper_example.rs` and the datagen equality test).
pub fn telephony_workload(customers: usize) -> TelephonyWorkload {
    let config = TelephonyConfig::with_customers(customers);
    let mut reg = VarRegistry::new();
    let (polys, _, _) = Telephony::direct_polyset(config, &mut reg);
    let tree = Telephony::plans_tree(&mut reg);
    TelephonyWorkload {
        reg,
        polys,
        tree,
        config,
    }
}

/// Scales one of the paper's 1M-customer bounds to a smaller zip count
/// (the bounds are per-zip budgets in disguise; see DESIGN.md).
pub fn scale_bound(bound_at_paper_scale: u64, zips: usize) -> u64 {
    bound_at_paper_scale * zips as u64 / 1055
}

/// Formats a measured-vs-paper pair with the deviation.
pub fn versus(measured: f64, paper: f64, unit: &str) -> String {
    format!("{measured:.0}{unit} (paper: {paper:.0}{unit})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builder_produces_fig2_tree() {
        let w = telephony_workload(1_000);
        assert_eq!(w.tree.num_leaves(), 11);
        assert!(w.polys.total_monomials() > 0);
        assert_eq!(w.config.zips, 1055);
    }

    #[test]
    fn bound_scaling_round_trips_at_paper_scale() {
        assert_eq!(scale_bound(94_600, 1055), 94_600);
        assert_eq!(scale_bound(38_600, 211), 7_720);
    }
}
