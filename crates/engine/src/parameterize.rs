//! Cell-level parameterization: instrumenting data with provenance
//! variables.
//!
//! This is the paper's instrumentation step (§1: "instrument the data with
//! symbolic variables, either at the cell or tuple level"). A numeric cell
//! holding value `v` becomes the symbolic value `v · x₁·…·xₖ` where the
//! monomial `x₁·…·xₖ` is chosen per row — in the running example the
//! `Price` cell of plan `A` in month 1 becomes `0.4 · p1 · m1`, so that a
//! later valuation `p1 ↦ 1.1` models "plan A's price +10%".

use crate::error::{EngineError, Result};
use crate::relation::{Relation, Row};
use crate::value::Value;
use cobra_provenance::{Monomial, Polynomial};

/// Multiplies the numeric cells of `column` by a per-row monomial.
///
/// `tagger` inspects the full row and returns the monomial of provenance
/// variables for that cell, or `None` to leave the cell concrete. Returns
/// the number of parameterized cells.
///
/// # Errors
/// `TypeError` if a tagged cell is not numeric/symbolic.
pub fn parameterize(
    rel: &mut Relation,
    column: &str,
    mut tagger: impl FnMut(&Row) -> Option<Monomial>,
) -> Result<usize> {
    let idx = rel.schema().resolve(column)?;
    let mut count = 0usize;
    for row in rel.rows_mut() {
        let Some(monomial) = tagger(row) else {
            continue;
        };
        if monomial.is_one() {
            continue;
        }
        let cell = &row[idx];
        let poly = match cell {
            Value::Poly(p) => p.mul_monomial(&monomial),
            other => {
                let c = other.as_rat().ok_or_else(|| {
                    EngineError::TypeError(format!(
                        "cannot parameterize {} cell in column {column}",
                        other.type_name()
                    ))
                })?;
                Polynomial::term(monomial, c)
            }
        };
        row[idx] = Value::Poly(poly);
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_provenance::VarRegistry;
    use cobra_util::Rat;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    #[test]
    fn paper_style_price_parameterization() {
        // Plans(Plan, Mo, Price): annotate Price with plan-var × month-var.
        let mut reg = VarRegistry::new();
        let p1 = reg.var("p1");
        let f1 = reg.var("f1");
        let m1 = reg.var("m1");
        let mut rel = Relation::from_rows(
            ["Plan", "Mo", "Price"],
            vec![
                vec![Value::str("A"), Value::Int(1), Value::Num(rat("0.4"))],
                vec![Value::str("F1"), Value::Int(1), Value::Num(rat("0.35"))],
            ],
        )
        .unwrap();
        let n = parameterize(&mut rel, "Price", |row| {
            let plan_var = match &row[0] {
                Value::Str(s) if &**s == "A" => p1,
                _ => f1,
            };
            Some(Monomial::from_pairs([(plan_var, 1), (m1, 1)]))
        })
        .unwrap();
        assert_eq!(n, 2);
        match &rel.rows()[0][2] {
            Value::Poly(p) => {
                assert_eq!(
                    p.coeff_of(&Monomial::from_pairs([(p1, 1), (m1, 1)])),
                    rat("0.4")
                );
            }
            other => panic!("expected poly, got {other:?}"),
        }
    }

    #[test]
    fn selective_and_repeat_tagging() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut rel = Relation::from_rows(
            ["k", "v"],
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        // tag only k=1
        let n = parameterize(&mut rel, "v", |row| {
            (row[0] == Value::Int(1)).then(|| Monomial::var(x))
        })
        .unwrap();
        assert_eq!(n, 1);
        assert!(matches!(rel.rows()[0][1], Value::Poly(_)));
        assert_eq!(rel.rows()[1][1], Value::Int(20));
        // second parameterization multiplies into the existing polynomial
        parameterize(&mut rel, "v", |row| {
            (row[0] == Value::Int(1)).then(|| Monomial::var(y))
        })
        .unwrap();
        match &rel.rows()[0][1] {
            Value::Poly(p) => assert_eq!(
                p.coeff_of(&Monomial::from_pairs([(x, 1), (y, 1)])),
                rat("10")
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unit_monomial_is_a_no_op() {
        let mut rel =
            Relation::from_rows(["v"], vec![vec![Value::Int(1)]]).unwrap();
        let n = parameterize(&mut rel, "v", |_| Some(Monomial::one())).unwrap();
        assert_eq!(n, 0);
        assert_eq!(rel.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn non_numeric_cell_errors() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let mut rel =
            Relation::from_rows(["v"], vec![vec![Value::str("oops")]]).unwrap();
        assert!(parameterize(&mut rel, "v", |_| Some(Monomial::var(x))).is_err());
        assert!(parameterize(&mut rel, "missing", |_| None).is_err());
    }
}
