//! Engine error type.

use std::fmt;

/// Errors raised while planning or executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A column name did not resolve against the schema.
    UnknownColumn(String),
    /// A column name matched more than one column.
    AmbiguousColumn(String),
    /// A table name did not resolve against the catalog.
    UnknownTable(String),
    /// An operation was applied to values of unsupported types.
    TypeError(String),
    /// Division by a zero scalar.
    DivisionByZero,
    /// A symbolic (polynomial) value reached a position that requires a
    /// concrete scalar (group key, comparison, MIN/MAX).
    SymbolicValue(String),
    /// SQL lexing/parsing failure.
    Sql { offset: usize, message: String },
    /// Plan shape error (e.g. non-aggregated column outside GROUP BY).
    Plan(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::TypeError(m) => write!(f, "type error: {m}"),
            EngineError::DivisionByZero => write!(f, "division by zero"),
            EngineError::SymbolicValue(m) => {
                write!(f, "symbolic value where a scalar is required: {m}")
            }
            EngineError::Sql { offset, message } => {
                write!(f, "SQL error at byte {offset}: {message}")
            }
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
