//! The database catalog: named relations and query entry points.

use crate::error::Result;
use crate::query::Plan;
use crate::relation::Relation;
use std::collections::BTreeMap;

/// A named collection of in-memory relations.
///
/// `BTreeMap` keeps table iteration deterministic for display and tests.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts (or replaces) a table.
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.tables.insert(name.into(), rel);
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Option<&Relation> {
        self.tables.get(name)
    }

    /// Mutable access to a table (for in-place parameterization).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.tables.get_mut(name)
    }

    /// Iterates `(name, relation)` in name order.
    pub fn tables(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.tables.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff there are no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Executes a logical plan.
    pub fn execute(&self, plan: &Plan) -> Result<Relation> {
        crate::exec::execute(self, plan)
    }

    /// Parses and executes a SQL query.
    pub fn sql(&self, query: &str) -> Result<Relation> {
        let plan = crate::sql::compile(query, self)?;
        self.execute(&plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn insert_lookup_iterate() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.insert("b", Relation::empty(Schema::new(["x"])));
        db.insert("a", Relation::empty(Schema::new(["y"])));
        assert_eq!(db.len(), 2);
        assert!(db.table("a").is_some());
        assert!(db.table("c").is_none());
        let names: Vec<&str> = db.tables().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]); // deterministic order
        db.table_mut("a").unwrap();
    }
}
