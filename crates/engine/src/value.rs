//! Dynamically typed cell values, including symbolic polynomials.
//!
//! Once a cell is parameterized with provenance variables its value is no
//! longer a number but a polynomial; every arithmetic operator therefore
//! works over the numeric tower `Int ⊂ Num(Rat) ⊂ Poly`, promoting as
//! needed. Comparisons and group-by keys require concrete scalars and fail
//! loudly on symbolic values (the paper's queries never compare symbolic
//! cells — parameterized columns only flow into the aggregated expression).

use crate::error::{EngineError, Result};
use cobra_provenance::{Polynomial, Valuation};
use cobra_util::Rat;
use std::fmt;
use std::sync::Arc;

/// A cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// SQL NULL (only produced by outer operations / absent optionals).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Exact rational numeric.
    Num(Rat),
    /// String (shared; relations clone rows freely).
    Str(Arc<str>),
    /// Symbolic numeric value: a provenance polynomial over ℚ.
    Poly(Polynomial<Rat>),
}

impl Value {
    /// Convenience string constructor.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// True iff the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True iff the value is symbolic (a polynomial).
    pub fn is_symbolic(&self) -> bool {
        matches!(self, Value::Poly(_))
    }

    /// Numeric view as an exact rational, if the value is a concrete number.
    pub fn as_rat(&self) -> Option<Rat> {
        match self {
            Value::Int(i) => Some(Rat::int(*i)),
            Value::Num(r) => Some(*r),
            _ => None,
        }
    }

    /// Numeric view as a polynomial (constants lift; `Poly` passes through).
    pub fn as_poly(&self) -> Option<Polynomial<Rat>> {
        match self {
            Value::Poly(p) => Some(p.clone()),
            _ => self.as_rat().map(Polynomial::constant),
        }
    }

    /// The type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Num(_) => "num",
            Value::Str(_) => "str",
            Value::Poly(_) => "poly",
        }
    }

    fn numeric_pair(&self, other: &Value, op: &str) -> Result<NumPair> {
        // Symbolic wins; otherwise exact rational; ints stay ints for +,-,*.
        match (self, other) {
            (Value::Poly(a), b) => Ok(NumPair::Poly(
                a.clone(),
                b.as_poly()
                    .ok_or_else(|| type_err(op, self, other))?,
            )),
            (a, Value::Poly(b)) => Ok(NumPair::Poly(
                a.as_poly().ok_or_else(|| type_err(op, self, other))?,
                b.clone(),
            )),
            (Value::Int(a), Value::Int(b)) => Ok(NumPair::Int(*a, *b)),
            (a, b) => {
                let ra = a.as_rat().ok_or_else(|| type_err(op, self, other))?;
                let rb = b.as_rat().ok_or_else(|| type_err(op, self, other))?;
                Ok(NumPair::Rat(ra, rb))
            }
        }
    }

    /// Numeric addition with promotion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        Ok(match self.numeric_pair(other, "+")? {
            NumPair::Int(a, b) => Value::Int(a + b),
            NumPair::Rat(a, b) => Value::Num(a + b),
            NumPair::Poly(a, b) => Value::Poly(a.add(&b)),
        })
    }

    /// Numeric subtraction with promotion.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        Ok(match self.numeric_pair(other, "-")? {
            NumPair::Int(a, b) => Value::Int(a - b),
            NumPair::Rat(a, b) => Value::Num(a - b),
            NumPair::Poly(a, b) => Value::Poly(a.sub(&b)),
        })
    }

    /// Numeric multiplication with promotion.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        Ok(match self.numeric_pair(other, "*")? {
            NumPair::Int(a, b) => Value::Int(a * b),
            NumPair::Rat(a, b) => Value::Num(a * b),
            NumPair::Poly(a, b) => Value::Poly(a.mul(&b)),
        })
    }

    /// Numeric division. The divisor must be a non-zero concrete scalar
    /// (dividing by a symbolic value has no polynomial representation).
    pub fn div(&self, other: &Value) -> Result<Value> {
        let d = other
            .as_rat()
            .ok_or_else(|| match other {
                Value::Poly(_) => {
                    EngineError::SymbolicValue("divisor must be a concrete scalar".into())
                }
                _ => type_err("/", self, other),
            })?;
        if d.is_zero() {
            return Err(EngineError::DivisionByZero);
        }
        Ok(match self {
            Value::Poly(p) => Value::Poly(p.scale(&d.recip())),
            _ => {
                let n = self.as_rat().ok_or_else(|| type_err("/", self, other))?;
                Value::Num(n / d)
            }
        })
    }

    /// Numeric negation.
    pub fn neg(&self) -> Result<Value> {
        Ok(match self {
            Value::Int(a) => Value::Int(-a),
            Value::Num(a) => Value::Num(-*a),
            Value::Poly(p) => Value::Poly(p.neg()),
            _ => return Err(EngineError::TypeError(format!("cannot negate {}", self.type_name()))),
        })
    }

    /// Three-way comparison of concrete values. Numeric types compare
    /// across `Int`/`Num`; strings and bools compare within their type.
    ///
    /// # Errors
    /// `SymbolicValue` for polynomials, `TypeError` for mixed
    /// non-comparable types or NULLs.
    pub fn compare(&self, other: &Value) -> Result<std::cmp::Ordering> {
        match (self, other) {
            (Value::Poly(_), _) | (_, Value::Poly(_)) => Err(EngineError::SymbolicValue(
                "comparison on symbolic value".into(),
            )),
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            _ => {
                let a = self.as_rat().ok_or_else(|| type_err("compare", self, other))?;
                let b = other.as_rat().ok_or_else(|| type_err("compare", self, other))?;
                Ok(a.cmp(&b))
            }
        }
    }

    /// A hashable key for group-by / join on concrete values.
    ///
    /// Numeric values normalize (`Int(2)` and `Num(2)` share a key) so that
    /// joins across the numeric tower behave like SQL.
    pub fn key(&self) -> Result<ScalarKey> {
        Ok(match self {
            Value::Null => ScalarKey::Null,
            Value::Bool(b) => ScalarKey::Bool(*b),
            Value::Int(i) => ScalarKey::Num(Rat::int(*i)),
            Value::Num(r) => ScalarKey::Num(*r),
            Value::Str(s) => ScalarKey::Str(s.clone()),
            Value::Poly(_) => {
                return Err(EngineError::SymbolicValue(
                    "group/join key cannot be symbolic".into(),
                ))
            }
        })
    }

    /// Evaluates a symbolic value under a valuation; concrete values pass
    /// through. Used to check the commutation property in tests.
    pub fn eval_poly(&self, val: &Valuation<Rat>) -> Result<Value> {
        match self {
            Value::Poly(p) => p
                .eval(val)
                .map(Value::Num)
                .map_err(|v| EngineError::Plan(format!("unbound variable Var({})", v.0))),
            other => Ok(other.clone()),
        }
    }
}

enum NumPair {
    Int(i64, i64),
    Rat(Rat, Rat),
    Poly(Polynomial<Rat>, Polynomial<Rat>),
}

fn type_err(op: &str, a: &Value, b: &Value) -> EngineError {
    EngineError::TypeError(format!(
        "operator {op} not defined for {} and {}",
        a.type_name(),
        b.type_name()
    ))
}

/// Hashable projection of a concrete [`Value`] for join/group keys.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarKey {
    Null,
    Bool(bool),
    Num(Rat),
    Str(Arc<str>),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Num(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Poly(p) => write!(f, "<poly:{} terms>", p.num_terms()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<Rat> for Value {
    fn from(v: Rat) -> Self {
        Value::Num(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Polynomial<Rat>> for Value {
    fn from(v: Polynomial<Rat>) -> Self {
        Value::Poly(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_provenance::{Var, VarRegistry};

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let a = Value::Int(6);
        let b = Value::Int(4);
        assert_eq!(a.add(&b).unwrap(), Value::Int(10));
        assert_eq!(a.sub(&b).unwrap(), Value::Int(2));
        assert_eq!(a.mul(&b).unwrap(), Value::Int(24));
        // division always produces exact rationals
        assert_eq!(a.div(&b).unwrap(), Value::Num(rat("1.5")));
    }

    #[test]
    fn mixed_numeric_promotes_to_rat() {
        let a = Value::Int(522);
        let b = Value::Num(rat("0.4"));
        assert_eq!(a.mul(&b).unwrap(), Value::Num(rat("208.8")));
    }

    #[test]
    fn symbolic_promotes_to_poly() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let px = Value::Poly(Polynomial::var(x));
        let out = Value::Int(3).mul(&px).unwrap().add(&Value::Int(1)).unwrap();
        match out {
            Value::Poly(p) => {
                assert_eq!(p.num_terms(), 2);
                assert_eq!(p.coeff_of(&cobra_provenance::Monomial::var(x)), rat("3"));
            }
            other => panic!("expected poly, got {other:?}"),
        }
    }

    #[test]
    fn division_rules() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let px = Value::Poly(Polynomial::var(x));
        // poly / scalar scales coefficients
        let half = px.div(&Value::Int(2)).unwrap();
        match half {
            Value::Poly(p) => assert_eq!(
                p.coeff_of(&cobra_provenance::Monomial::var(x)),
                rat("0.5")
            ),
            other => panic!("{other:?}"),
        }
        // anything / poly is an error
        assert!(matches!(
            Value::Int(1).div(&px),
            Err(EngineError::SymbolicValue(_))
        ));
        assert_eq!(Value::Int(1).div(&Value::Int(0)), Err(EngineError::DivisionByZero));
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            Value::Int(2).compare(&Value::Num(rat("2.5"))).unwrap(),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            Value::str("abc").compare(&Value::str("abd")).unwrap(),
            std::cmp::Ordering::Less
        );
        assert!(Value::str("a").compare(&Value::Int(1)).is_err());
        let p = Value::Poly(Polynomial::var(Var(0)));
        assert!(matches!(
            p.compare(&Value::Int(1)),
            Err(EngineError::SymbolicValue(_))
        ));
    }

    #[test]
    fn keys_normalize_numerics() {
        assert_eq!(
            Value::Int(2).key().unwrap(),
            Value::Num(rat("2")).key().unwrap()
        );
        assert_ne!(
            Value::Int(2).key().unwrap(),
            Value::str("2").key().unwrap()
        );
        assert!(Value::Poly(Polynomial::var(Var(0))).key().is_err());
    }

    #[test]
    fn type_errors_carry_names() {
        let err = Value::str("x").add(&Value::Int(1)).unwrap_err();
        match err {
            EngineError::TypeError(m) => assert!(m.contains("str") && m.contains("int")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eval_poly_passthrough_and_substitution() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let val = Valuation::with_default(Rat::ONE).bind(x, rat("2"));
        let p = Value::Poly(Polynomial::var(x).scale(&rat("3")));
        assert_eq!(p.eval_poly(&val).unwrap(), Value::Num(rat("6")));
        assert_eq!(Value::Int(7).eval_poly(&val).unwrap(), Value::Int(7));
    }
}
