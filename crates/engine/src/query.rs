//! Logical query plans.
//!
//! The plan algebra covers exactly what the paper's workloads need: scans,
//! filters, projections, equi-joins and group-by aggregation with SUM /
//! COUNT / MIN / MAX / AVG. Plans are built either directly (builder API)
//! or from SQL ([`crate::sql`]).

use crate::expr::Expr;
use crate::predicate::Pred;
use std::fmt;

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum — propagates symbolic values, producing provenance polynomials.
    Sum,
    /// Count of rows in the group.
    Count,
    /// Minimum (concrete scalars only).
    Min,
    /// Maximum (concrete scalars only).
    Max,
    /// Average = Sum / Count (exact rational; symbolic sums allowed).
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        write!(f, "{s}")
    }
}

/// One aggregate output: `func(expr) AS name`.
#[derive(Clone, Debug, PartialEq)]
pub struct Aggregate {
    pub func: AggFunc,
    pub expr: Expr,
    pub name: String,
}

/// A logical query plan.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Scan a named base relation. Column references become qualified by
    /// `alias` (or the table name if `alias` is `None`).
    Scan {
        table: String,
        alias: Option<String>,
    },
    /// Keep rows satisfying `pred`.
    Filter { input: Box<Plan>, pred: Pred },
    /// Compute `exprs` (with output names) per row.
    Project {
        input: Box<Plan>,
        exprs: Vec<(Expr, String)>,
    },
    /// Hash equi-join on pairs of (left column, right column).
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        on: Vec<(String, String)>,
    },
    /// Group by columns and compute aggregates. Output schema: group
    /// columns (unqualified output names) followed by aggregate names.
    AggregateBy {
        input: Box<Plan>,
        group_by: Vec<String>,
        aggs: Vec<Aggregate>,
    },
    /// Sort by concrete-valued columns (`(column, descending)`), keeping
    /// at most `limit` rows if set. Symbolic (polynomial) sort keys error.
    Sort {
        input: Box<Plan>,
        keys: Vec<(String, bool)>,
        limit: Option<usize>,
    },
    /// Remove duplicate rows (SELECT DISTINCT). All columns must be
    /// concrete; keeps the first occurrence of each row.
    Distinct { input: Box<Plan> },
}

impl Plan {
    /// Scans a table.
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
            alias: None,
        }
    }

    /// Scans a table under an alias.
    pub fn scan_as(table: impl Into<String>, alias: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// Filters by a predicate.
    pub fn filter(self, pred: Pred) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            pred,
        }
    }

    /// Projects expressions with explicit names.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Projects columns by name.
    pub fn project_cols<S: Into<String> + Copy>(self, cols: &[S]) -> Plan {
        self.project(
            cols.iter()
                .map(|&c| {
                    let name: String = c.into();
                    (Expr::col(name.clone()), Expr::col(name).default_name())
                })
                .collect(),
        )
    }

    /// Equi-joins with another plan.
    pub fn join(self, right: Plan, on: Vec<(&str, &str)>) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on
                .into_iter()
                .map(|(a, b)| (a.to_owned(), b.to_owned()))
                .collect(),
        }
    }

    /// Removes duplicate rows.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// Sorts by columns (`(name, descending)`), optionally limiting the
    /// row count.
    pub fn sort(self, keys: Vec<(&str, bool)>, limit: Option<usize>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys: keys
                .into_iter()
                .map(|(c, d)| (c.to_owned(), d))
                .collect(),
            limit,
        }
    }

    /// Groups and aggregates.
    pub fn aggregate(self, group_by: Vec<&str>, aggs: Vec<(AggFunc, Expr, &str)>) -> Plan {
        Plan::AggregateBy {
            input: Box::new(self),
            group_by: group_by.into_iter().map(str::to_owned).collect(),
            aggs: aggs
                .into_iter()
                .map(|(func, expr, name)| Aggregate {
                    func,
                    expr,
                    name: name.to_owned(),
                })
                .collect(),
        }
    }

    /// Pretty-prints the plan tree with indentation (for the "under the
    /// hood" demonstration step).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { table, alias } => {
                out.push_str(&pad);
                match alias {
                    Some(a) => out.push_str(&format!("Scan {table} AS {a}\n")),
                    None => out.push_str(&format!("Scan {table}\n")),
                }
            }
            Plan::Filter { input, pred } => {
                out.push_str(&format!("{pad}Filter {pred}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, exprs } => {
                let cols: Vec<String> =
                    exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                out.push_str(&format!("{pad}Project {}\n", cols.join(", ")));
                input.explain_into(out, depth + 1);
            }
            Plan::Join { left, right, on } => {
                let keys: Vec<String> = on.iter().map(|(a, b)| format!("{a} = {b}")).collect();
                out.push_str(&format!("{pad}HashJoin on {}\n", keys.join(" AND ")));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::AggregateBy {
                input,
                group_by,
                aggs,
            } => {
                let aggs: Vec<String> = aggs
                    .iter()
                    .map(|a| format!("{}({}) AS {}", a.func, a.expr, a.name))
                    .collect();
                out.push_str(&format!(
                    "{pad}Aggregate group by [{}] compute [{}]\n",
                    group_by.join(", "),
                    aggs.join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            Plan::Sort { input, keys, limit } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|(c, desc)| format!("{c}{}", if *desc { " DESC" } else { "" }))
                    .collect();
                match limit {
                    Some(n) => out.push_str(&format!(
                        "{pad}Sort by [{}] limit {n}\n",
                        keys.join(", ")
                    )),
                    None => out.push_str(&format!("{pad}Sort by [{}]\n", keys.join(", "))),
                }
                input.explain_into(out, depth + 1);
            }
            Plan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_tree() {
        let plan = Plan::scan("Calls")
            .join(Plan::scan("Cust"), vec![("Calls.CID", "Cust.ID")])
            .filter(Pred::eq(Expr::col("Zip"), Expr::lit(10001)))
            .aggregate(
                vec!["Zip"],
                vec![(AggFunc::Sum, Expr::col("Dur"), "total")],
            );
        match &plan {
            Plan::AggregateBy { group_by, aggs, .. } => {
                assert_eq!(group_by, &vec!["Zip".to_owned()]);
                assert_eq!(aggs[0].name, "total");
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::scan_as("Plans", "p")
            .filter(Pred::eq(Expr::col("Mo"), Expr::lit(1)))
            .project(vec![(Expr::col("p.Price"), "Price".into())]);
        let text = plan.explain();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Project"));
        assert!(lines[1].trim_start().starts_with("Filter"));
        assert!(lines[2].trim_start().starts_with("Scan Plans AS p"));
    }
}
