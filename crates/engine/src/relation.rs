//! In-memory relations (tables).

use crate::error::{EngineError, Result};
use crate::schema::Schema;
use crate::value::Value;
use cobra_provenance::{Coeff, PolySet, Polynomial};
use cobra_util::Rat;
use std::fmt;

/// A row of values.
pub type Row = Vec<Value>;

/// An in-memory relation: a schema plus rows (bag semantics — duplicates
/// are meaningful, matching the provenance model's ℕ-relations).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Row>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Relation {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a relation, checking row arity.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Result<Relation> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != schema.len() {
                return Err(EngineError::Plan(format!(
                    "row {i} has arity {}, schema has {}",
                    r.len(),
                    schema.len()
                )));
            }
        }
        Ok(Relation { schema, rows })
    }

    /// Builds a relation from unqualified column names and rows.
    pub fn from_rows<S: Into<String>>(
        names: impl IntoIterator<Item = S>,
        rows: Vec<Row>,
    ) -> Result<Relation> {
        Relation::new(Schema::new(names), rows)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Errors
    /// `Plan` error on arity mismatch.
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(EngineError::Plan(format!(
                "row arity {} != schema arity {}",
                row.len(),
                self.schema.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Consumes into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Mutable row access (used by [`crate::parameterize`]).
    pub(crate) fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Sorts rows by their display strings — a deterministic order for
    /// tests and golden output (result relations are small).
    pub fn sorted_for_display(mut self) -> Relation {
        self.rows.sort_by_key(|r| {
            r.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\u{1}")
        });
        self
    }

    /// Extracts a [`PolySet`] from a result relation: for each row, the
    /// polynomial in column `poly_col`, labelled by the values of
    /// `label_cols` joined with `:`. Concrete numeric cells lift to
    /// constant polynomials, so the extraction is total on SUM results.
    ///
    /// This is the bridge from the engine to COBRA (Fig. 4: "Provenance
    /// Engine → Provenance Polynomials").
    pub fn extract_polyset(&self, label_cols: &[&str], poly_col: &str) -> Result<PolySet<Rat>> {
        let label_idx: Vec<usize> = label_cols
            .iter()
            .map(|c| self.schema.resolve(c))
            .collect::<Result<_>>()?;
        let poly_idx = self.schema.resolve(poly_col)?;
        let mut set = PolySet::new();
        for row in &self.rows {
            let label = label_idx
                .iter()
                .map(|&i| row[i].to_string())
                .collect::<Vec<_>>()
                .join(":");
            let poly: Polynomial<Rat> = row[poly_idx].as_poly().ok_or_else(|| {
                EngineError::TypeError(format!(
                    "column {poly_col} is not numeric/symbolic: {}",
                    row[poly_idx].type_name()
                ))
            })?;
            set.push(label, poly);
        }
        Ok(set)
    }
}

impl fmt::Display for Relation {
    /// Renders as an aligned text table (small relations only).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = cobra_util::Table::new(
            self.schema.columns().iter().map(|c| c.to_string()),
        );
        for row in &self.rows {
            t.row(row.iter().map(|v| v.to_string()));
        }
        write!(f, "{t}")
    }
}

/// Lifts evaluated `(label, value)` pairs into a two-column relation —
/// used to display scenario results next to the original query output.
pub fn relation_from_values<C: Coeff + fmt::Display>(
    values: &[(String, C)],
    label_name: &str,
    value_name: &str,
) -> Relation {
    let schema = Schema::new([label_name.to_owned(), value_name.to_owned()]);
    let rows: Vec<Row> = values
        .iter()
        .map(|(l, c)| vec![Value::str(l), Value::str(&c.to_string())])
        .collect();
    Relation { schema, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_provenance::{Monomial, VarRegistry};

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    #[test]
    fn arity_checked() {
        let mut r = Relation::empty(Schema::new(["a", "b"]));
        assert!(r.push(vec![Value::Int(1), Value::Int(2)]).is_ok());
        assert!(r.push(vec![Value::Int(1)]).is_err());
        assert!(Relation::from_rows(["a"], vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
    }

    #[test]
    fn display_renders_table() {
        let r = Relation::from_rows(
            ["Zip", "Rev"],
            vec![
                vec![Value::Int(10001), Value::Num(rat("651.25"))],
                vec![Value::Int(10002), Value::Num(rat("437.45"))],
            ],
        )
        .unwrap();
        let s = r.to_string();
        assert!(s.contains("Zip"));
        assert!(s.contains("651.25"));
    }

    #[test]
    fn extract_polyset_lifts_constants() {
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let r = Relation::from_rows(
            ["Zip", "Rev"],
            vec![
                vec![
                    Value::Int(10001),
                    Value::Poly(Polynomial::term(Monomial::var(x), rat("2"))),
                ],
                vec![Value::Int(10002), Value::Num(rat("5"))],
            ],
        )
        .unwrap();
        let set = r.extract_polyset(&["Zip"], "Rev").unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("10001").unwrap().num_terms(), 1);
        assert_eq!(
            set.get("10002").unwrap().coeff_of(&Monomial::one()),
            rat("5")
        );
        assert!(r.extract_polyset(&["Zip"], "nope").is_err());
    }

    #[test]
    fn sorted_for_display_is_deterministic() {
        let r = Relation::from_rows(
            ["k"],
            vec![
                vec![Value::str("b")],
                vec![Value::str("a")],
            ],
        )
        .unwrap()
        .sorted_for_display();
        assert_eq!(r.rows()[0][0], Value::str("a"));
    }
}
