//! Plan executor: filters, projections, hash joins, hash aggregation.
//!
//! Execution is straightforwardly eager (each operator materializes its
//! output), which is the right trade-off for this workload: COBRA runs the
//! query **once** to obtain provenance, then all hypothetical reasoning
//! happens on the polynomials. Joins and grouping are hash-based; group
//! output preserves first-seen order so results are deterministic.

use crate::catalog::Database;
use crate::error::{EngineError, Result};
use crate::query::{AggFunc, Aggregate, Plan};
use crate::relation::{Relation, Row};
use crate::schema::{Column, Schema};
use crate::value::{ScalarKey, Value};
use cobra_util::FxHashMap;

/// Executes `plan` against `db`, materializing the result.
pub fn execute(db: &Database, plan: &Plan) -> Result<Relation> {
    match plan {
        Plan::Scan { table, alias } => {
            let rel = db
                .table(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?;
            let qualifier = alias.as_deref().unwrap_or(table);
            Relation::new(
                rel.schema().with_qualifier(qualifier),
                rel.rows().to_vec(),
            )
        }
        Plan::Filter { input, pred } => {
            let rel = execute(db, input)?;
            let bound = pred.bind(rel.schema())?;
            let schema = rel.schema().clone();
            let mut rows = Vec::new();
            for row in rel.into_rows() {
                if bound.eval(&row)? {
                    rows.push(row);
                }
            }
            Relation::new(schema, rows)
        }
        Plan::Project { input, exprs } => {
            let rel = execute(db, input)?;
            let bound: Vec<_> = exprs
                .iter()
                .map(|(e, _)| e.bind(rel.schema()))
                .collect::<Result<_>>()?;
            let schema = Schema::from_columns(
                exprs
                    .iter()
                    .map(|(_, name)| Column::new(name.clone()))
                    .collect(),
            );
            let mut rows = Vec::with_capacity(rel.len());
            for row in rel.rows() {
                let out: Row = bound.iter().map(|b| b.eval(row)).collect::<Result<_>>()?;
                rows.push(out);
            }
            Relation::new(schema, rows)
        }
        Plan::Join { left, right, on } => {
            let l = execute(db, left)?;
            let r = execute(db, right)?;
            hash_join(l, r, on)
        }
        Plan::AggregateBy {
            input,
            group_by,
            aggs,
        } => {
            let rel = execute(db, input)?;
            aggregate(rel, group_by, aggs)
        }
        Plan::Sort { input, keys, limit } => {
            let rel = execute(db, input)?;
            sort_limit(rel, keys, *limit)
        }
        Plan::Distinct { input } => {
            let rel = execute(db, input)?;
            let schema = rel.schema().clone();
            let mut seen: FxHashMap<Vec<ScalarKey>, ()> = FxHashMap::default();
            let mut rows = Vec::new();
            for row in rel.into_rows() {
                let key = row
                    .iter()
                    .map(Value::key)
                    .collect::<Result<Vec<_>>>()?;
                if seen.insert(key, ()).is_none() {
                    rows.push(row);
                }
            }
            Relation::new(schema, rows)
        }
    }
}

/// Stable multi-key sort with optional LIMIT. Keys must be concrete —
/// `ScalarKey`'s total order handles NULLs (smallest) and cross-numeric
/// comparison; symbolic values error.
fn sort_limit(rel: Relation, keys: &[(String, bool)], limit: Option<usize>) -> Result<Relation> {
    let key_idx: Vec<(usize, bool)> = keys
        .iter()
        .map(|(c, desc)| Ok((rel.schema().resolve(c)?, *desc)))
        .collect::<Result<_>>()?;
    let schema = rel.schema().clone();
    let mut decorated: Vec<(Vec<ScalarKey>, Row)> = rel
        .into_rows()
        .into_iter()
        .map(|row| {
            let key = key_idx
                .iter()
                .map(|&(i, _)| row[i].key())
                .collect::<Result<Vec<_>>>()?;
            Ok((key, row))
        })
        .collect::<Result<_>>()?;
    decorated.sort_by(|(a, _), (b, _)| {
        for ((ka, kb), &(_, desc)) in a.iter().zip(b.iter()).zip(&key_idx) {
            let ord = ka.cmp(kb);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut rows: Vec<Row> = decorated.into_iter().map(|(_, r)| r).collect();
    if let Some(n) = limit {
        rows.truncate(n);
    }
    Relation::new(schema, rows)
}

/// Hash equi-join. Key columns are resolved against their own side; if a
/// pair is written in the wrong order (`right_col, left_col`) it is
/// swapped automatically, matching how SQL `WHERE a.x = b.y` is agnostic
/// to operand order.
fn hash_join(left: Relation, right: Relation, on: &[(String, String)]) -> Result<Relation> {
    if on.is_empty() {
        return Err(EngineError::Plan(
            "join requires at least one key pair (cross joins must go through SQL lowering)"
                .into(),
        ));
    }
    let mut left_keys = Vec::with_capacity(on.len());
    let mut right_keys = Vec::with_capacity(on.len());
    for (a, b) in on {
        match (left.schema().resolve(a), right.schema().resolve(b)) {
            (Ok(ia), Ok(ib)) => {
                left_keys.push(ia);
                right_keys.push(ib);
            }
            _ => {
                // try swapped orientation
                let ia = left.schema().resolve(b)?;
                let ib = right.schema().resolve(a)?;
                left_keys.push(ia);
                right_keys.push(ib);
            }
        }
    }

    // Build on the smaller side by convention: right.
    let mut index: FxHashMap<Vec<ScalarKey>, Vec<usize>> = FxHashMap::default();
    for (i, row) in right.rows().iter().enumerate() {
        let key = right_keys
            .iter()
            .map(|&k| row[k].key())
            .collect::<Result<Vec<_>>>()?;
        index.entry(key).or_default().push(i);
    }

    let schema = left.schema().concat(right.schema());
    let mut rows = Vec::new();
    for lrow in left.rows() {
        let key = left_keys
            .iter()
            .map(|&k| lrow[k].key())
            .collect::<Result<Vec<_>>>()?;
        if let Some(matches) = index.get(&key) {
            for &ri in matches {
                let mut out = lrow.clone();
                out.extend(right.rows()[ri].iter().cloned());
                rows.push(out);
            }
        }
    }
    Relation::new(schema, rows)
}

enum Acc {
    Sum(Option<Value>),
    Count(u64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(Option<Value>, u64),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Sum => Acc::Sum(None),
            AggFunc::Count => Acc::Count(0),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg(None, 0),
        }
    }

    fn update(&mut self, v: Value) -> Result<()> {
        match self {
            Acc::Sum(acc) => {
                *acc = Some(match acc.take() {
                    None => v,
                    Some(prev) => prev.add(&v)?,
                });
            }
            Acc::Count(n) => *n += 1,
            Acc::Min(acc) => {
                let replace = match acc {
                    None => true,
                    Some(prev) => v.compare(prev)? == std::cmp::Ordering::Less,
                };
                if replace {
                    *acc = Some(v);
                }
            }
            Acc::Max(acc) => {
                let replace = match acc {
                    None => true,
                    Some(prev) => v.compare(prev)? == std::cmp::Ordering::Greater,
                };
                if replace {
                    *acc = Some(v);
                }
            }
            Acc::Avg(acc, n) => {
                *acc = Some(match acc.take() {
                    None => v,
                    Some(prev) => prev.add(&v)?,
                });
                *n += 1;
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<Value> {
        Ok(match self {
            Acc::Sum(acc) => acc.unwrap_or(Value::Null),
            Acc::Count(n) => Value::Int(n as i64),
            Acc::Min(acc) | Acc::Max(acc) => acc.unwrap_or(Value::Null),
            Acc::Avg(None, _) => Value::Null,
            Acc::Avg(Some(sum), n) => sum.div(&Value::Int(n as i64))?,
        })
    }
}

fn aggregate(rel: Relation, group_by: &[String], aggs: &[Aggregate]) -> Result<Relation> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|c| rel.schema().resolve(c))
        .collect::<Result<_>>()?;
    let bound: Vec<_> = aggs
        .iter()
        .map(|a| a.expr.bind(rel.schema()))
        .collect::<Result<_>>()?;

    // Output schema: group columns (by output name) then aggregate names.
    let mut columns = Vec::with_capacity(group_by.len() + aggs.len());
    for g in group_by {
        columns.push(Column::new(
            g.rsplit_once('.').map(|(_, c)| c.to_owned()).unwrap_or_else(|| g.clone()),
        ));
    }
    for a in aggs {
        columns.push(Column::new(a.name.clone()));
    }
    let schema = Schema::from_columns(columns);

    // Group in first-seen order for deterministic output.
    let mut order: Vec<Vec<ScalarKey>> = Vec::new();
    let mut groups: FxHashMap<Vec<ScalarKey>, (Row, Vec<Acc>)> = FxHashMap::default();
    for row in rel.rows() {
        let key = group_idx
            .iter()
            .map(|&i| row[i].key())
            .collect::<Result<Vec<_>>>()?;
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (
                group_idx.iter().map(|&i| row[i].clone()).collect(),
                aggs.iter().map(|a| Acc::new(a.func)).collect(),
            )
        });
        for (acc, b) in entry.1.iter_mut().zip(&bound) {
            // COUNT doesn't need the value; everything else does.
            match acc {
                Acc::Count(_) => acc.update(Value::Null)?,
                _ => acc.update(b.eval(row)?)?,
            }
        }
    }

    let mut rows = Vec::with_capacity(order.len());
    if order.is_empty() && group_by.is_empty() {
        // Global aggregate over an empty input: one row of neutral values.
        let out: Row = aggs
            .iter()
            .map(|a| Acc::new(a.func).finish())
            .collect::<Result<_>>()?;
        rows.push(out);
    }
    for key in order {
        // Every key in `order` was inserted into `groups` above; a miss
        // would be an executor bug, surfaced as a typed error rather than
        // a panic so a malformed plan can never take the process down.
        let (mut head, accs) = groups.remove(&key).ok_or_else(|| {
            EngineError::Plan("aggregation invariant violated: grouped key lost before output".into())
        })?;
        for acc in accs {
            head.push(acc.finish()?);
        }
        rows.push(head);
    }
    Relation::new(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::predicate::{CmpOp, Pred};
    use cobra_util::Rat;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(
            "t",
            Relation::from_rows(
                ["k", "v"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(20)],
                    vec![Value::Int(1), Value::Int(30)],
                ],
            )
            .unwrap(),
        );
        db.insert(
            "names",
            Relation::from_rows(
                ["id", "name"],
                vec![
                    vec![Value::Int(1), Value::str("one")],
                    vec![Value::Int(2), Value::str("two")],
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn scan_qualifies_columns() {
        let db = db();
        let rel = execute(&db, &Plan::scan("t")).unwrap();
        assert_eq!(rel.schema().resolve("t.k").unwrap(), 0);
        let aliased = execute(&db, &Plan::scan_as("t", "x")).unwrap();
        assert!(aliased.schema().resolve("x.k").is_ok());
        assert!(execute(&db, &Plan::scan("missing")).is_err());
    }

    #[test]
    fn filter_and_project() {
        let db = db();
        let plan = Plan::scan("t")
            .filter(Pred::cmp(Expr::col("v"), CmpOp::Gt, Expr::lit(15)))
            .project(vec![(Expr::col("v").mul(Expr::lit(2)), "dbl".into())]);
        let rel = execute(&db, &plan).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows()[0][0], Value::Int(40));
        assert_eq!(rel.schema().resolve("dbl").unwrap(), 0);
    }

    #[test]
    fn hash_join_matches_and_concatenates() {
        let db = db();
        let plan = Plan::scan("t").join(Plan::scan("names"), vec![("t.k", "names.id")]);
        let rel = execute(&db, &plan).unwrap();
        assert_eq!(rel.len(), 3);
        // every output row satisfies k == id
        let k = rel.schema().resolve("t.k").unwrap();
        let id = rel.schema().resolve("names.id").unwrap();
        for row in rel.rows() {
            assert_eq!(row[k], row[id]);
        }
    }

    #[test]
    fn join_key_orientation_is_flexible() {
        let db = db();
        // keys given as (right, left) still work
        let plan = Plan::scan("t").join(Plan::scan("names"), vec![("names.id", "t.k")]);
        assert_eq!(execute(&db, &plan).unwrap().len(), 3);
    }

    #[test]
    fn aggregate_sum_count_min_max_avg() {
        let db = db();
        let plan = Plan::scan("t").aggregate(
            vec!["k"],
            vec![
                (AggFunc::Sum, Expr::col("v"), "s"),
                (AggFunc::Count, Expr::col("v"), "c"),
                (AggFunc::Min, Expr::col("v"), "lo"),
                (AggFunc::Max, Expr::col("v"), "hi"),
                (AggFunc::Avg, Expr::col("v"), "avg"),
            ],
        );
        let rel = execute(&db, &plan).unwrap();
        assert_eq!(rel.len(), 2);
        // group k=1 appears first (first-seen order)
        let row = &rel.rows()[0];
        assert_eq!(row[0], Value::Int(1));
        assert_eq!(row[1], Value::Int(40));
        assert_eq!(row[2], Value::Int(2));
        assert_eq!(row[3], Value::Int(10));
        assert_eq!(row[4], Value::Int(30));
        assert_eq!(row[5], Value::Num(rat("20")));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let mut db = Database::new();
        db.insert("e", Relation::empty(Schema::new(["x"])));
        let plan = Plan::scan("e").aggregate(
            vec![],
            vec![
                (AggFunc::Count, Expr::col("x"), "c"),
                (AggFunc::Sum, Expr::col("x"), "s"),
            ],
        );
        let rel = execute(&db, &plan).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows()[0][0], Value::Int(0));
        assert_eq!(rel.rows()[0][1], Value::Null);
    }

    #[test]
    fn symbolic_sum_produces_polynomial() {
        use cobra_provenance::{Monomial, Polynomial, VarRegistry};
        let mut reg = VarRegistry::new();
        let x = reg.var("x");
        let y = reg.var("y");
        let mut db = Database::new();
        db.insert(
            "p",
            Relation::from_rows(
                ["g", "val"],
                vec![
                    vec![
                        Value::Int(1),
                        Value::Poly(Polynomial::term(Monomial::var(x), rat("2"))),
                    ],
                    vec![
                        Value::Int(1),
                        Value::Poly(Polynomial::term(Monomial::var(y), rat("3"))),
                    ],
                    vec![Value::Int(2), Value::Num(rat("5"))],
                ],
            )
            .unwrap(),
        );
        let plan = Plan::scan("p").aggregate(
            vec!["g"],
            vec![(AggFunc::Sum, Expr::col("val"), "total")],
        );
        let rel = execute(&db, &plan).unwrap();
        match &rel.rows()[0][1] {
            Value::Poly(p) => {
                assert_eq!(p.num_terms(), 2);
                assert_eq!(p.coeff_of(&Monomial::var(y)), rat("3"));
            }
            other => panic!("expected poly, got {other:?}"),
        }
        assert_eq!(rel.rows()[1][1], Value::Num(rat("5")));
    }

    #[test]
    fn sort_orders_and_limits() {
        let db = db();
        let plan = Plan::scan("t").sort(vec![("v", true)], Some(2));
        let rel = execute(&db, &plan).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows()[0][1], Value::Int(30));
        assert_eq!(rel.rows()[1][1], Value::Int(20));
        // ascending multi-key: k asc, then v desc breaks the k=1 tie
        let plan = Plan::scan("t").sort(vec![("k", false), ("v", true)], None);
        let rel = execute(&db, &plan).unwrap();
        let vs: Vec<&Value> = rel.rows().iter().map(|r| &r[1]).collect();
        assert_eq!(vs, vec![&Value::Int(30), &Value::Int(10), &Value::Int(20)]);
        // explain mentions the sort
        assert!(plan.explain().contains("Sort by [k, v DESC]"));
    }

    #[test]
    fn sort_is_stable_and_handles_nulls() {
        let mut db = Database::new();
        db.insert(
            "t",
            Relation::from_rows(
                ["k", "tag"],
                vec![
                    vec![Value::Int(1), Value::str("first")],
                    vec![Value::Null, Value::str("null-row")],
                    vec![Value::Int(1), Value::str("second")],
                ],
            )
            .unwrap(),
        );
        let rel = execute(&db, &Plan::scan("t").sort(vec![("k", false)], None)).unwrap();
        // NULL sorts first; equal keys keep input order (stable)
        assert_eq!(rel.rows()[0][1], Value::str("null-row"));
        assert_eq!(rel.rows()[1][1], Value::str("first"));
        assert_eq!(rel.rows()[2][1], Value::str("second"));
    }

    #[test]
    fn group_key_cannot_be_symbolic() {
        use cobra_provenance::Polynomial;
        let mut db = Database::new();
        db.insert(
            "p",
            Relation::from_rows(
                ["g"],
                vec![vec![Value::Poly(Polynomial::var(cobra_provenance::Var(0)))]],
            )
            .unwrap(),
        );
        let plan = Plan::scan("p").aggregate(vec!["g"], vec![]);
        assert!(matches!(
            execute(&db, &plan),
            Err(EngineError::SymbolicValue(_))
        ));
    }
}
