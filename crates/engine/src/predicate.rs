//! Boolean predicates over rows (WHERE clauses).

use crate::error::Result;
use crate::expr::{BoundExpr, Expr};
use crate::relation::Row;
use crate::schema::Schema;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Applies the operator to a three-way comparison result.
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum Pred {
    /// Comparison between two scalar expressions.
    Cmp(Expr, CmpOp, Expr),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `lhs op rhs`.
    pub fn cmp(lhs: Expr, op: CmpOp, rhs: Expr) -> Pred {
        Pred::Cmp(lhs, op, rhs)
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Pred {
        Pred::Cmp(lhs, CmpOp::Eq, rhs)
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(rhs))
    }

    /// `NOT self`.
    pub fn negate(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// Resolves column references against `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPred> {
        Ok(match self {
            Pred::Cmp(a, op, b) => BoundPred::Cmp(a.bind(schema)?, *op, b.bind(schema)?),
            Pred::And(a, b) => BoundPred::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Pred::Or(a, b) => BoundPred::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Pred::Not(a) => BoundPred::Not(Box::new(a.bind(schema)?)),
        })
    }

    /// Splits a conjunction into its flat list of conjuncts.
    pub fn conjuncts(&self) -> Vec<&Pred> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a Pred, out: &mut Vec<&'a Pred>) {
            match p {
                Pred::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuilds a conjunction from conjuncts (`None` if empty).
    pub fn from_conjuncts(preds: Vec<Pred>) -> Option<Pred> {
        preds.into_iter().reduce(|a, b| a.and(b))
    }

    /// If this predicate is `col = col` between two plain column
    /// references, returns them — the shape the planner turns into
    /// hash-join keys.
    pub fn as_column_equality(&self) -> Option<(&str, &str)> {
        match self {
            Pred::Cmp(Expr::Col(a), CmpOp::Eq, Expr::Col(b)) => Some((a, b)),
            _ => None,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Pred::And(a, b) => write!(f, "({a} AND {b})"),
            Pred::Or(a, b) => write!(f, "({a} OR {b})"),
            Pred::Not(a) => write!(f, "(NOT {a})"),
        }
    }
}

/// A predicate with column references resolved.
#[derive(Clone, Debug)]
pub enum BoundPred {
    Cmp(BoundExpr, CmpOp, BoundExpr),
    And(Box<BoundPred>, Box<BoundPred>),
    Or(Box<BoundPred>, Box<BoundPred>),
    Not(Box<BoundPred>),
}

impl BoundPred {
    /// Evaluates against a row.
    pub fn eval(&self, row: &Row) -> Result<bool> {
        Ok(match self {
            BoundPred::Cmp(a, op, b) => {
                let va = a.eval(row)?;
                let vb = b.eval(row)?;
                op.test(va.compare(&vb)?)
            }
            BoundPred::And(a, b) => a.eval(row)? && b.eval(row)?,
            BoundPred::Or(a, b) => a.eval(row)? || b.eval(row)?,
            BoundPred::Not(a) => !a.eval(row)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn comparison_ops() {
        use Ordering::*;
        assert!(CmpOp::Eq.test(Equal) && !CmpOp::Eq.test(Less));
        assert!(CmpOp::Ne.test(Less) && !CmpOp::Ne.test(Equal));
        assert!(CmpOp::Le.test(Equal) && CmpOp::Le.test(Less) && !CmpOp::Le.test(Greater));
        assert!(CmpOp::Ge.test(Greater) && CmpOp::Ge.test(Equal));
    }

    #[test]
    fn eval_logical_tree() {
        let schema = Schema::new(["a", "b"]);
        let p = Pred::cmp(Expr::col("a"), CmpOp::Lt, Expr::col("b"))
            .and(Pred::cmp(Expr::col("a"), CmpOp::Gt, Expr::lit(0)))
            .or(Pred::eq(Expr::col("b"), Expr::lit(-1)).negate().negate());
        let bound = p.bind(&schema).unwrap();
        assert!(bound.eval(&vec![Value::Int(1), Value::Int(2)]).unwrap());
        assert!(!bound.eval(&vec![Value::Int(3), Value::Int(2)]).unwrap());
        assert!(bound.eval(&vec![Value::Int(3), Value::Int(-1)]).unwrap());
    }

    #[test]
    fn conjunct_splitting() {
        let p = Pred::eq(Expr::col("a"), Expr::col("b"))
            .and(Pred::eq(Expr::col("c"), Expr::lit(1)).and(Pred::eq(
                Expr::col("d"),
                Expr::col("e"),
            )));
        let cs = p.conjuncts();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].as_column_equality(), Some(("a", "b")));
        assert_eq!(cs[1].as_column_equality(), None); // rhs is a literal
        assert_eq!(cs[2].as_column_equality(), Some(("d", "e")));
        let rebuilt = Pred::from_conjuncts(cs.into_iter().cloned().collect()).unwrap();
        assert_eq!(rebuilt.conjuncts().len(), 3);
    }
}
