//! Column schemas with optional table qualifiers.
//!
//! Name resolution supports both bare (`Dur`) and qualified (`Calls.Dur`)
//! references, with ambiguity detection — needed because the paper's
//! running example joins three tables sharing column names (`Plan`, `Mo`).

use crate::error::{EngineError, Result};
use std::fmt;

/// A named column, optionally qualified by the table (or alias) it came
/// from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Table or alias qualifier, if any.
    pub table: Option<String>,
    /// Column name.
    pub name: String,
}

impl Column {
    /// An unqualified column.
    pub fn new(name: impl Into<String>) -> Column {
        Column {
            table: None,
            name: name.into(),
        }
    }

    /// A table-qualified column.
    pub fn qualified(table: impl Into<String>, name: impl Into<String>) -> Column {
        Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    /// True iff this column answers to `reference` (either `name` or
    /// `table.name`).
    pub fn matches(&self, reference: &str) -> bool {
        match reference.split_once('.') {
            Some((t, n)) => self.table.as_deref() == Some(t) && self.name == n,
            None => self.name == reference,
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// An ordered list of columns.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema of unqualified columns.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Schema {
        Schema {
            columns: names.into_iter().map(|n| Column::new(n)).collect(),
        }
    }

    /// Builds a schema where every column is qualified by `table`.
    pub fn qualified<S: Into<String>>(
        table: &str,
        names: impl IntoIterator<Item = S>,
    ) -> Schema {
        Schema {
            columns: names
                .into_iter()
                .map(|n| Column::qualified(table, n))
                .collect(),
        }
    }

    /// Builds from explicit columns.
    pub fn from_columns(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Resolves a (possibly qualified) column reference to its index.
    ///
    /// # Errors
    /// `UnknownColumn` if nothing matches, `AmbiguousColumn` if several do.
    pub fn resolve(&self, reference: &str) -> Result<usize> {
        let mut found = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.matches(reference) {
                if found.is_some() {
                    return Err(EngineError::AmbiguousColumn(reference.to_owned()));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| EngineError::UnknownColumn(reference.to_owned()))
    }

    /// Concatenates two schemas (for joins).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Re-qualifies every column with a new table alias.
    pub fn with_qualifier(&self, table: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column::qualified(table, c.name.clone()))
                .collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.columns.iter().map(|c| c.to_string()).collect();
        write!(f, "({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_bare_and_qualified() {
        let s = Schema::from_columns(vec![
            Column::qualified("Cust", "ID"),
            Column::qualified("Cust", "Plan"),
            Column::qualified("Plans", "Plan"),
        ]);
        assert_eq!(s.resolve("ID").unwrap(), 0);
        assert_eq!(s.resolve("Cust.Plan").unwrap(), 1);
        assert_eq!(s.resolve("Plans.Plan").unwrap(), 2);
        assert_eq!(
            s.resolve("Plan"),
            Err(EngineError::AmbiguousColumn("Plan".into()))
        );
        assert_eq!(
            s.resolve("nope"),
            Err(EngineError::UnknownColumn("nope".into()))
        );
    }

    #[test]
    fn concat_and_requalify() {
        let a = Schema::qualified("t", ["x"]);
        let b = Schema::qualified("u", ["y"]);
        let ab = a.concat(&b);
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.resolve("t.x").unwrap(), 0);
        let re = ab.with_qualifier("v");
        assert_eq!(re.resolve("v.y").unwrap(), 1);
        assert!(re.resolve("t.x").is_err());
    }

    #[test]
    fn display_formats() {
        let s = Schema::from_columns(vec![
            Column::qualified("t", "a"),
            Column::new("b"),
        ]);
        assert_eq!(s.to_string(), "(t.a, b)");
    }
}
