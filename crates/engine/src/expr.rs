//! Scalar expressions over rows.
//!
//! Expressions are built with column *names* and bound to column *indices*
//! against a concrete input schema at plan time ([`Expr::bind`]), so row
//! evaluation performs no name lookups — the hot path when the telephony
//! workload multiplies `Calls.Dur * Plans.Price` across millions of rows.

use crate::error::Result;
use crate::relation::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column reference by (possibly qualified) name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

// The builder methods deliberately mirror the operator names (`add`, `mul`,
// …) without implementing the operator traits: `Expr` construction moves
// its operands into boxes, and plan-building code reads better with
// explicit method chains than with overloaded operators.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// Unary minus.
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// Resolves all column references against `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Col(name) => BoundExpr::Col(schema.resolve(name)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Add(a, b) => BoundExpr::Add(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Sub(a, b) => BoundExpr::Sub(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Mul(a, b) => BoundExpr::Mul(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Div(a, b) => BoundExpr::Div(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Neg(a) => BoundExpr::Neg(Box::new(a.bind(schema)?)),
        })
    }

    /// All column names referenced by the expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(n) => out.push(n),
            Expr::Lit(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Neg(a) => a.collect_columns(out),
        }
    }

    /// A default output name: the column name for plain references,
    /// `expr` otherwise.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Col(n) => n
                .rsplit_once('.')
                .map(|(_, c)| c.to_owned())
                .unwrap_or_else(|| n.clone()),
            other => format!("{other}"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => write!(f, "{n}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// An expression with column references resolved to row indices.
#[derive(Clone, Debug)]
pub enum BoundExpr {
    Col(usize),
    Lit(Value),
    Add(Box<BoundExpr>, Box<BoundExpr>),
    Sub(Box<BoundExpr>, Box<BoundExpr>),
    Mul(Box<BoundExpr>, Box<BoundExpr>),
    Div(Box<BoundExpr>, Box<BoundExpr>),
    Neg(Box<BoundExpr>),
}

impl BoundExpr {
    /// Evaluates against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        Ok(match self {
            BoundExpr::Col(i) => row[*i].clone(),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Add(a, b) => a.eval(row)?.add(&b.eval(row)?)?,
            BoundExpr::Sub(a, b) => a.eval(row)?.sub(&b.eval(row)?)?,
            BoundExpr::Mul(a, b) => a.eval(row)?.mul(&b.eval(row)?)?,
            BoundExpr::Div(a, b) => a.eval(row)?.div(&b.eval(row)?)?,
            BoundExpr::Neg(a) => a.eval(row)?.neg()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_util::Rat;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    #[test]
    fn bind_and_eval() {
        let schema = Schema::qualified("Calls", ["CID", "Dur"]);
        let e = Expr::col("Dur").mul(Expr::lit(rat("0.4")));
        let bound = e.bind(&schema).unwrap();
        let row = vec![Value::Int(1), Value::Int(522)];
        assert_eq!(bound.eval(&row).unwrap(), Value::Num(rat("208.8")));
    }

    #[test]
    fn qualified_references() {
        let schema = Schema::qualified("t", ["x"]).concat(&Schema::qualified("u", ["x"]));
        let e = Expr::col("u.x").sub(Expr::col("t.x"));
        let bound = e.bind(&schema).unwrap();
        let row = vec![Value::Int(3), Value::Int(10)];
        assert_eq!(bound.eval(&row).unwrap(), Value::Int(7));
        assert!(Expr::col("x").bind(&schema).is_err()); // ambiguous
    }

    #[test]
    fn arithmetic_tree() {
        let schema = Schema::new(["a", "b"]);
        let e = Expr::col("a")
            .add(Expr::col("b"))
            .mul(Expr::lit(2))
            .div(Expr::lit(4))
            .neg();
        let bound = e.bind(&schema).unwrap();
        let row = vec![Value::Int(1), Value::Int(3)];
        assert_eq!(bound.eval(&row).unwrap(), Value::Num(rat("-2")));
    }

    #[test]
    fn columns_and_names() {
        let e = Expr::col("Calls.Dur").mul(Expr::col("Price"));
        assert_eq!(e.columns(), vec!["Calls.Dur", "Price"]);
        assert_eq!(Expr::col("Calls.Dur").default_name(), "Dur");
        assert_eq!(
            e.default_name(),
            "(Calls.Dur * Price)"
        );
    }
}
