//! # cobra-engine
//!
//! A provenance-aware in-memory SPJA (select / project / join / aggregate)
//! query engine — the "provenance engine" box of the paper's architecture
//! (Fig. 4) that produces the polynomials COBRA compresses.
//!
//! The engine implements the aggregate-provenance semantics of Amsterdamer,
//! Deutch & Tannen (PODS 2011, the paper’s \[2\]) in the specialized form the
//! paper uses: selected input **cells** are parameterized by multiplying
//! them with provenance variables ([`parameterize()`]); arithmetic and `SUM`
//! aggregation then propagate symbolic values, so an aggregate query result
//! is a [`cobra_provenance::Polynomial`] per output tuple (paper Example 2).
//!
//! Modules:
//! * [`value`] — dynamically typed cell values, including symbolic
//!   polynomial values, with numeric promotion rules.
//! * [`schema`] / [`relation`] — named columns and in-memory tables.
//! * [`expr`] / [`predicate`] — scalar expressions and boolean predicates.
//! * [`query`] — logical plans (scan, filter, project, equi-join,
//!   group-by aggregate) with a builder API.
//! * [`exec`] — the executor: hash joins, hash aggregation, symbolic SUM.
//! * [`parameterize()`] — cell-level instrumentation with provenance
//!   variables (the paper's "instrument the data with symbolic variables").
//! * [`sql`] — a SQL subset (SELECT/FROM/WHERE/GROUP BY) compiled to plans,
//!   sufficient for the paper's running example and the TPC-H queries.
//! * [`catalog`] — the [`Database`]: named relations + query entry points.
//! * [`krelation`] — K-relations over arbitrary provenance semirings
//!   (Green et al., PODS 2007) with the homomorphism commutation property.

pub mod catalog;
pub mod error;
pub mod exec;
pub mod expr;
pub mod krelation;
pub mod parameterize;
pub mod predicate;
pub mod query;
pub mod relation;
pub mod schema;
pub mod sql;
pub mod value;

pub use catalog::Database;
pub use error::EngineError;
pub use expr::Expr;
pub use parameterize::parameterize;
pub use predicate::{CmpOp, Pred};
pub use query::{AggFunc, Plan};
pub use relation::{Relation, Row};
pub use schema::{Column, Schema};
pub use value::Value;
