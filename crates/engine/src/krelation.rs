//! K-relations: relations annotated with elements of an arbitrary
//! commutative semiring (Green et al., PODS 2007 — the paper’s \[5\]).
//!
//! This is the tuple-level provenance model that provenance polynomials
//! instantiate (take `K = ℕ[X]`, i.e. `Polynomial`). The module provides
//! the positive relational algebra (selection, projection, join, union)
//! over annotated tuples, and is used by the tests to verify the
//! **commutation theorem**: evaluating a query and then applying a semiring
//! homomorphism to the annotations equals applying the homomorphism to the
//! input annotations and then evaluating the query. COBRA's "assign values
//! to the polynomial instead of re-running the query" rests exactly on this
//! property.

use crate::error::{EngineError, Result};
use crate::relation::Row;
use crate::schema::Schema;
use crate::value::{ScalarKey, Value};
use cobra_provenance::Semiring;
use cobra_util::FxHashMap;

/// A relation whose tuples carry semiring annotations.
///
/// Tuples are kept in a canonical map keyed by their scalar values;
/// inserting an existing tuple combines annotations with `⊕` (so a
/// K-relation is a function `tuples → K` with finite support, as in the
/// paper).
#[derive(Clone, Debug)]
pub struct KRelation<K: Semiring> {
    schema: Schema,
    rows: Vec<(Row, K)>,
    index: FxHashMap<Vec<ScalarKey>, usize>,
}

impl<K: Semiring> KRelation<K> {
    /// Creates an empty K-relation.
    pub fn new(schema: Schema) -> Self {
        KRelation {
            schema,
            rows: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Iterates `(tuple, annotation)` pairs with non-zero annotations.
    pub fn iter(&self) -> impl Iterator<Item = (&Row, &K)> {
        self.rows
            .iter()
            .filter(|(_, k)| !k.is_zero())
            .map(|(r, k)| (r, k))
    }

    /// Number of tuples with non-zero annotation.
    pub fn support(&self) -> usize {
        self.rows.iter().filter(|(_, k)| !k.is_zero()).count()
    }

    fn key_of(row: &Row) -> Result<Vec<ScalarKey>> {
        row.iter().map(Value::key).collect()
    }

    /// Adds `annotation` to the tuple's current annotation (⊕-insert).
    pub fn insert(&mut self, row: Row, annotation: K) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(EngineError::Plan(format!(
                "tuple arity {} != schema arity {}",
                row.len(),
                self.schema.len()
            )));
        }
        let key = Self::key_of(&row)?;
        match self.index.get(&key) {
            Some(&i) => {
                let cur = &self.rows[i].1;
                self.rows[i].1 = cur.plus(&annotation);
            }
            None => {
                self.index.insert(key, self.rows.len());
                self.rows.push((row, annotation));
            }
        }
        Ok(())
    }

    /// The annotation of a tuple (`K::zero()` if absent).
    pub fn annotation(&self, row: &Row) -> Result<K> {
        let key = Self::key_of(row)?;
        Ok(match self.index.get(&key) {
            Some(&i) => self.rows[i].1.clone(),
            None => K::zero(),
        })
    }

    /// Selection σ: keeps tuples satisfying `pred` (annotations unchanged).
    pub fn select(&self, mut pred: impl FnMut(&Row) -> bool) -> Self {
        let mut out = KRelation::new(self.schema.clone());
        for (row, k) in self.iter() {
            if pred(row) {
                out.insert(row.clone(), k.clone()).expect("same arity");
            }
        }
        out
    }

    /// Projection π onto the given columns; tuples that collapse combine
    /// their annotations with `⊕`.
    pub fn project(&self, columns: &[&str]) -> Result<Self> {
        let idx: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.resolve(c))
            .collect::<Result<_>>()?;
        let schema = Schema::from_columns(
            idx.iter().map(|&i| self.schema.column(i).clone()).collect(),
        );
        let mut out = KRelation::new(schema);
        for (row, k) in self.iter() {
            let projected: Row = idx.iter().map(|&i| row[i].clone()).collect();
            out.insert(projected, k.clone())?;
        }
        Ok(out)
    }

    /// Natural-style equi-join ⋈ on `(left column, right column)` pairs;
    /// matched annotations combine with `⊗`.
    pub fn join(&self, other: &Self, on: &[(&str, &str)]) -> Result<Self> {
        let left_idx: Vec<usize> = on
            .iter()
            .map(|(a, _)| self.schema.resolve(a))
            .collect::<Result<_>>()?;
        let right_idx: Vec<usize> = on
            .iter()
            .map(|(_, b)| other.schema.resolve(b))
            .collect::<Result<_>>()?;
        let mut index: FxHashMap<Vec<ScalarKey>, Vec<usize>> = FxHashMap::default();
        for (i, (row, k)) in other.rows.iter().enumerate() {
            if k.is_zero() {
                continue;
            }
            let key: Vec<ScalarKey> = right_idx
                .iter()
                .map(|&j| row[j].key())
                .collect::<Result<_>>()?;
            index.entry(key).or_default().push(i);
        }
        let mut out = KRelation::new(self.schema.concat(&other.schema));
        for (row, k) in self.iter() {
            let key: Vec<ScalarKey> = left_idx
                .iter()
                .map(|&j| row[j].key())
                .collect::<Result<_>>()?;
            if let Some(matches) = index.get(&key) {
                for &ri in matches {
                    let (rrow, rk) = &other.rows[ri];
                    let mut joined = row.clone();
                    joined.extend(rrow.iter().cloned());
                    out.insert(joined, k.times(rk))?;
                }
            }
        }
        Ok(out)
    }

    /// Union ∪ (schemas must agree); annotations of equal tuples combine
    /// with `⊕`.
    pub fn union(&self, other: &Self) -> Result<Self> {
        if self.schema.len() != other.schema.len() {
            return Err(EngineError::Plan("union arity mismatch".into()));
        }
        let mut out = KRelation::new(self.schema.clone());
        for (row, k) in self.iter().chain(other.iter()) {
            out.insert(row.clone(), k.clone())?;
        }
        Ok(out)
    }

    /// Applies a function to every annotation — in particular a semiring
    /// homomorphism, for the commutation theorem.
    pub fn map_annotations<K2: Semiring>(&self, mut f: impl FnMut(&K) -> K2) -> KRelation<K2> {
        let mut out = KRelation::new(self.schema.clone());
        for (row, k) in self.iter() {
            out.insert(row.clone(), f(k)).expect("same arity");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_provenance::semiring::Why;
    use cobra_provenance::{Monomial, Polynomial, Var};
    use cobra_util::Rat;

    fn schema(names: &[&str]) -> Schema {
        Schema::new(names.iter().map(|s| s.to_string()))
    }

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_combines_with_plus() {
        let mut r: KRelation<u64> = KRelation::new(schema(&["x"]));
        r.insert(row(&[1]), 2).unwrap();
        r.insert(row(&[1]), 3).unwrap();
        r.insert(row(&[2]), 1).unwrap();
        assert_eq!(r.annotation(&row(&[1])).unwrap(), 5);
        assert_eq!(r.annotation(&row(&[3])).unwrap(), 0);
        assert_eq!(r.support(), 2);
    }

    #[test]
    fn positive_algebra_counting() {
        // R(x) = {1↦2, 2↦1}; S(x,y) = {(1,7)↦3}
        let mut r: KRelation<u64> = KRelation::new(schema(&["x"]));
        r.insert(row(&[1]), 2).unwrap();
        r.insert(row(&[2]), 1).unwrap();
        let mut s: KRelation<u64> = KRelation::new(schema(&["x2", "y"]));
        s.insert(row(&[1, 7]), 3).unwrap();
        // join multiplies: (1,1,7) ↦ 6
        let j = r.join(&s, &[("x", "x2")]).unwrap();
        assert_eq!(j.annotation(&row(&[1, 1, 7])).unwrap(), 6);
        // project onto y keeps 6
        let p = j.project(&["y"]).unwrap();
        assert_eq!(p.annotation(&row(&[7])).unwrap(), 6);
        // union adds
        let u = r.union(&r).unwrap();
        assert_eq!(u.annotation(&row(&[2])).unwrap(), 2);
        // select filters without touching annotations
        let sel = r.select(|t| t[0] == Value::Int(1));
        assert_eq!(sel.support(), 1);
    }

    #[test]
    fn why_provenance_tracks_witnesses() {
        let mut r: KRelation<Why> = KRelation::new(schema(&["x"]));
        r.insert(row(&[1]), Why::tuple(Var(10))).unwrap();
        let mut s: KRelation<Why> = KRelation::new(schema(&["x2"]));
        s.insert(row(&[1]), Why::tuple(Var(20))).unwrap();
        let j = r.join(&s, &[("x", "x2")]).unwrap();
        let w = j.annotation(&row(&[1, 1])).unwrap();
        // single witness containing both source tuples
        assert_eq!(w.0.len(), 1);
        assert!(w.0.iter().next().unwrap().contains(&Var(10)));
        assert!(w.0.iter().next().unwrap().contains(&Var(20)));
    }

    /// The commutation theorem on a concrete query:
    /// `hom(eval(Q, R)) == eval(Q, hom(R))` for the evaluation
    /// homomorphism ℚ[X] → ℚ.
    #[test]
    fn homomorphism_commutes_with_queries() {
        use cobra_provenance::Valuation;
        let x1 = Var(1);
        let x2 = Var(2);
        let x3 = Var(3);
        let poly = |v: Var| Polynomial::<Rat>::term(Monomial::var(v), Rat::ONE);

        let mut r: KRelation<Polynomial<Rat>> = KRelation::new(schema(&["a", "b"]));
        r.insert(row(&[1, 10]), poly(x1)).unwrap();
        r.insert(row(&[2, 10]), poly(x2)).unwrap();
        let mut s: KRelation<Polynomial<Rat>> = KRelation::new(schema(&["b2", "c"]));
        s.insert(row(&[10, 5]), poly(x3)).unwrap();

        let query = |r: &KRelation<Polynomial<Rat>>, s: &KRelation<Polynomial<Rat>>| {
            r.join(s, &[("b", "b2")]).unwrap().project(&["c"]).unwrap()
        };
        let query_num = |r: &KRelation<Rat>, s: &KRelation<Rat>| {
            r.join(s, &[("b", "b2")]).unwrap().project(&["c"]).unwrap()
        };

        let val = Valuation::with_default(Rat::ONE)
            .bind(x1, Rat::int(3))
            .bind(x2, Rat::int(0)) // hypothetically delete tuple 2
            .bind(x3, Rat::int(2));
        let hom = |p: &Polynomial<Rat>| p.eval(&val).unwrap();

        // eval-then-hom
        let symbolic_result = query(&r, &s).map_annotations(hom);
        // hom-then-eval
        let concrete_result = query_num(&r.map_annotations(hom), &s.map_annotations(hom));

        // (c=5) is derived as x1·x3 + x2·x3 = 3·2 + 0·2 = 6 both ways
        assert_eq!(
            symbolic_result.annotation(&row(&[5])).unwrap(),
            Rat::int(6)
        );
        assert_eq!(
            concrete_result.annotation(&row(&[5])).unwrap(),
            Rat::int(6)
        );
    }

    #[test]
    fn arity_errors() {
        let mut r: KRelation<u64> = KRelation::new(schema(&["x"]));
        assert!(r.insert(row(&[1, 2]), 1).is_err());
        let s: KRelation<u64> = KRelation::new(schema(&["a", "b"]));
        assert!(r.union(&s).is_err());
        assert!(r.project(&["nope"]).is_err());
    }
}
