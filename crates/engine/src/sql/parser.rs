//! SQL parser: token stream → [`SelectStmt`] AST.
//!
//! Precedence (loosest to tightest): `OR`, `AND`, `NOT`, comparisons,
//! `+`/`-`, `*`/`/`, unary minus, atoms.

use super::lexer::{tokenize, Keyword, SqlToken};
use crate::error::{EngineError, Result};
use crate::predicate::CmpOp;
use crate::query::AggFunc;
use crate::value::Value;

/// A scalar or aggregate SQL expression (aggregates are only legal in the
/// SELECT list; the lowering step enforces this).
#[derive(Clone, Debug, PartialEq)]
pub enum SqlExpr {
    /// Possibly-qualified column reference (`Zip`, `Cust.Zip`).
    Column(String),
    /// Literal.
    Lit(Value),
    /// Binary arithmetic.
    Add(Box<SqlExpr>, Box<SqlExpr>),
    Sub(Box<SqlExpr>, Box<SqlExpr>),
    Mul(Box<SqlExpr>, Box<SqlExpr>),
    Div(Box<SqlExpr>, Box<SqlExpr>),
    /// Unary minus.
    Neg(Box<SqlExpr>),
    /// Aggregate call `SUM(expr)`, `MIN(expr)`, …
    Agg(AggFunc, Box<SqlExpr>),
    /// `COUNT(*)`.
    CountStar,
    /// Comparison (produces a boolean; only valid inside WHERE).
    Cmp(Box<SqlExpr>, CmpOp, Box<SqlExpr>),
    /// Boolean connectives (only valid inside WHERE).
    And(Box<SqlExpr>, Box<SqlExpr>),
    Or(Box<SqlExpr>, Box<SqlExpr>),
    Not(Box<SqlExpr>),
}

/// One item of the SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `SELECT *`.
    Star,
    /// `expr [AS alias]`.
    Expr {
        expr: SqlExpr,
        alias: Option<String>,
    },
}

/// A table reference `name [AS alias]`.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name columns of this table are qualified with.
    pub fn qualifier(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// One ORDER BY key: column name and direction.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderKey {
    pub column: String,
    pub descending: bool,
}

/// A parsed `SELECT` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<SqlExpr>,
    pub group_by: Vec<String>,
    pub having: Option<SqlExpr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
}

/// Parses a single SELECT statement.
pub fn parse_select(src: &str) -> Result<SelectStmt> {
    let tokens = tokenize(src)?;
    let mut p = P {
        tokens,
        pos: 0,
        len: src.len(),
    };
    let stmt = p.select()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after statement"));
    }
    Ok(stmt)
}

struct P {
    tokens: Vec<(usize, SqlToken)>,
    pos: usize,
    len: usize,
}

impl P {
    fn peek(&self) -> Option<&SqlToken> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<SqlToken> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map(|(o, _)| *o).unwrap_or(self.len)
    }

    fn err(&self, message: impl Into<String>) -> EngineError {
        EngineError::Sql {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        match self.bump() {
            Some(SqlToken::Kw(k)) if k == kw => Ok(()),
            other => Err(self.err(format!("expected {kw:?}, found {other:?}"))),
        }
    }

    fn eat(&mut self, tok: &SqlToken) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(&SqlToken::Kw(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(SqlToken::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Possibly-qualified column name: `a` or `a.b`.
    fn column_name(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.eat(&SqlToken::Dot) {
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut items = vec![self.select_item()?];
        while self.eat(&SqlToken::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw(Keyword::From)?;
        let mut from = vec![self.table_ref()?];
        while self.eat(&SqlToken::Comma) {
            from.push(self.table_ref()?);
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr_or()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.column_name()?);
            while self.eat(&SqlToken::Comma) {
                group_by.push(self.column_name()?);
            }
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.expr_or()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            order_by.push(self.order_key()?);
            while self.eat(&SqlToken::Comma) {
                order_by.push(self.order_key()?);
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) {
            match self.bump() {
                Some(SqlToken::Number { value, is_integer: true }) if value.numer() >= 0 => {
                    Some(usize::try_from(value.numer()).map_err(|_| self.err("LIMIT too large"))?)
                }
                other => return Err(self.err(format!("expected integer after LIMIT, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn order_key(&mut self) -> Result<OrderKey> {
        let column = self.column_name()?;
        let descending = if self.eat_kw(Keyword::Desc) {
            true
        } else {
            self.eat_kw(Keyword::Asc);
            false
        };
        Ok(OrderKey { column, descending })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&SqlToken::Star) {
            return Ok(SelectItem::Star);
        }
        let expr = self.expr_add()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else if let Some(SqlToken::Ident(_)) = self.peek() {
            // implicit alias: FROM Plans p
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    // WHERE expression grammar.
    fn expr_or(&mut self) -> Result<SqlExpr> {
        let mut acc = self.expr_and()?;
        while self.eat_kw(Keyword::Or) {
            let rhs = self.expr_and()?;
            acc = SqlExpr::Or(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn expr_and(&mut self) -> Result<SqlExpr> {
        let mut acc = self.expr_not()?;
        while self.eat_kw(Keyword::And) {
            let rhs = self.expr_not()?;
            acc = SqlExpr::And(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn expr_not(&mut self) -> Result<SqlExpr> {
        if self.eat_kw(Keyword::Not) {
            let inner = self.expr_not()?;
            return Ok(SqlExpr::Not(Box::new(inner)));
        }
        self.expr_cmp()
    }

    fn expr_cmp(&mut self) -> Result<SqlExpr> {
        let lhs = self.expr_add()?;
        let op = match self.peek() {
            Some(SqlToken::Eq) => CmpOp::Eq,
            Some(SqlToken::Ne) => CmpOp::Ne,
            Some(SqlToken::Lt) => CmpOp::Lt,
            Some(SqlToken::Le) => CmpOp::Le,
            Some(SqlToken::Gt) => CmpOp::Gt,
            Some(SqlToken::Ge) => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.expr_add()?;
        Ok(SqlExpr::Cmp(Box::new(lhs), op, Box::new(rhs)))
    }

    fn expr_add(&mut self) -> Result<SqlExpr> {
        let mut acc = self.expr_mul()?;
        loop {
            if self.eat(&SqlToken::Plus) {
                let rhs = self.expr_mul()?;
                acc = SqlExpr::Add(Box::new(acc), Box::new(rhs));
            } else if self.eat(&SqlToken::Minus) {
                let rhs = self.expr_mul()?;
                acc = SqlExpr::Sub(Box::new(acc), Box::new(rhs));
            } else {
                return Ok(acc);
            }
        }
    }

    fn expr_mul(&mut self) -> Result<SqlExpr> {
        let mut acc = self.expr_unary()?;
        loop {
            if self.eat(&SqlToken::Star) {
                let rhs = self.expr_unary()?;
                acc = SqlExpr::Mul(Box::new(acc), Box::new(rhs));
            } else if self.eat(&SqlToken::Slash) {
                let rhs = self.expr_unary()?;
                acc = SqlExpr::Div(Box::new(acc), Box::new(rhs));
            } else {
                return Ok(acc);
            }
        }
    }

    fn expr_unary(&mut self) -> Result<SqlExpr> {
        if self.eat(&SqlToken::Minus) {
            let inner = self.expr_unary()?;
            return Ok(SqlExpr::Neg(Box::new(inner)));
        }
        self.expr_atom()
    }

    fn agg_func(kw: Keyword) -> Option<AggFunc> {
        Some(match kw {
            Keyword::Sum => AggFunc::Sum,
            Keyword::Count => AggFunc::Count,
            Keyword::Min => AggFunc::Min,
            Keyword::Max => AggFunc::Max,
            Keyword::Avg => AggFunc::Avg,
            _ => return None,
        })
    }

    fn expr_atom(&mut self) -> Result<SqlExpr> {
        match self.bump() {
            Some(SqlToken::Number { value, is_integer }) => Ok(SqlExpr::Lit(if is_integer {
                Value::Int(i64::try_from(value.numer()).map_err(|_| self.err("integer literal out of range"))?)
            } else {
                Value::Num(value)
            })),
            Some(SqlToken::Str(s)) => Ok(SqlExpr::Lit(Value::str(&s))),
            Some(SqlToken::LParen) => {
                let inner = self.expr_add()?;
                if !self.eat(&SqlToken::RParen) {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            Some(SqlToken::Kw(kw)) => {
                let func =
                    Self::agg_func(kw).ok_or_else(|| self.err(format!("unexpected {kw:?}")))?;
                if !self.eat(&SqlToken::LParen) {
                    return Err(self.err("expected '(' after aggregate"));
                }
                if func == AggFunc::Count && self.eat(&SqlToken::Star) {
                    if !self.eat(&SqlToken::RParen) {
                        return Err(self.err("expected ')' after COUNT(*)"));
                    }
                    return Ok(SqlExpr::CountStar);
                }
                let inner = self.expr_add()?;
                if !self.eat(&SqlToken::RParen) {
                    return Err(self.err("expected ')'"));
                }
                Ok(SqlExpr::Agg(func, Box::new(inner)))
            }
            Some(SqlToken::Ident(first)) => {
                if self.eat(&SqlToken::Dot) {
                    let second = self.ident()?;
                    Ok(SqlExpr::Column(format!("{first}.{second}")))
                } else {
                    Ok(SqlExpr::Column(first))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_util::Rat;

    #[test]
    fn parses_paper_query() {
        let stmt = parse_select(
            "SELECT Zip, SUM(Calls.Dur * Plans.Price) \
             FROM Calls, Cust, Plans \
             WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID AND Calls.Mo = Plans.Mo \
             GROUP BY Cust.Zip",
        )
        .unwrap();
        assert_eq!(stmt.items.len(), 2);
        assert_eq!(stmt.from.len(), 3);
        assert_eq!(stmt.group_by, vec!["Cust.Zip"]);
        match &stmt.items[1] {
            SelectItem::Expr {
                expr: SqlExpr::Agg(AggFunc::Sum, inner),
                alias: None,
            } => match &**inner {
                SqlExpr::Mul(a, b) => {
                    assert_eq!(**a, SqlExpr::Column("Calls.Dur".into()));
                    assert_eq!(**b, SqlExpr::Column("Plans.Price".into()));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // WHERE is a 3-way AND
        match stmt.where_clause.unwrap() {
            SqlExpr::And(..) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aliases_and_star() {
        let stmt = parse_select("SELECT *, v AS val FROM t x, u AS y").unwrap();
        assert_eq!(stmt.items[0], SelectItem::Star);
        match &stmt.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("val")),
            other => panic!("{other:?}"),
        }
        assert_eq!(stmt.from[0].qualifier(), "x");
        assert_eq!(stmt.from[1].qualifier(), "y");
    }

    #[test]
    fn precedence_arithmetic_vs_comparison() {
        let stmt = parse_select("SELECT a FROM t WHERE a + 1 * 2 < b OR NOT a = b AND b = 1")
            .unwrap();
        // OR( <(a + (1*2), b), AND(NOT(a=b), b=1) )
        match stmt.where_clause.unwrap() {
            SqlExpr::Or(l, r) => {
                match *l {
                    SqlExpr::Cmp(lhs, CmpOp::Lt, _) => match *lhs {
                        SqlExpr::Add(_, mul) => {
                            assert!(matches!(*mul, SqlExpr::Mul(..)))
                        }
                        other => panic!("{other:?}"),
                    },
                    other => panic!("{other:?}"),
                }
                assert!(matches!(*r, SqlExpr::And(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star_and_literals() {
        let stmt =
            parse_select("SELECT COUNT(*), SUM(price * 0.9), MIN(name) FROM t WHERE name = 'x'")
                .unwrap();
        assert!(matches!(
            stmt.items[0],
            SelectItem::Expr {
                expr: SqlExpr::CountStar,
                ..
            }
        ));
        match &stmt.items[1] {
            SelectItem::Expr {
                expr: SqlExpr::Agg(AggFunc::Sum, inner),
                ..
            } => match &**inner {
                SqlExpr::Mul(_, rhs) => {
                    assert_eq!(**rhs, SqlExpr::Lit(Value::Num(Rat::parse("0.9").unwrap())))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        for q in [
            "FROM t",
            "SELECT",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP a",
            "SELECT SUM( FROM t",
            "SELECT a FROM t extra garbage",
        ] {
            assert!(parse_select(q).is_err(), "should reject {q:?}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_select("SELECT a FROM t WHERE ,").unwrap_err();
        match err {
            EngineError::Sql { offset, .. } => assert_eq!(offset, 23),
            other => panic!("{other:?}"),
        }
    }
}
