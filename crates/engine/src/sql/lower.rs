//! Lowering: [`SelectStmt`] AST → logical [`Plan`].
//!
//! The FROM list plus WHERE equalities become a left-deep hash-join tree;
//! single-table predicates are pushed below the joins; aggregate SELECT
//! lists become an `AggregateBy` followed by a reordering projection.

use super::parser::{SelectItem, SelectStmt, SqlExpr};
use crate::catalog::Database;
use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::predicate::Pred;
use crate::query::{AggFunc, Plan};
use crate::schema::Schema;

/// Lowers a parsed statement into a plan, consulting `db` for schemas.
pub fn lower(stmt: &SelectStmt, db: &Database) -> Result<Plan> {
    if stmt.from.is_empty() {
        return Err(EngineError::Plan("FROM list is empty".into()));
    }
    // Qualified schema of every FROM table.
    let mut schemas: Vec<Schema> = Vec::with_capacity(stmt.from.len());
    for tref in &stmt.from {
        let rel = db
            .table(&tref.table)
            .ok_or_else(|| EngineError::UnknownTable(tref.table.clone()))?;
        schemas.push(rel.schema().with_qualifier(tref.qualifier()));
    }

    // Classify WHERE conjuncts.
    let mut join_conds: Vec<(usize, usize, String, String)> = Vec::new();
    let mut pushed: Vec<Vec<Pred>> = vec![Vec::new(); stmt.from.len()];
    let mut residual: Vec<Pred> = Vec::new();
    if let Some(where_clause) = &stmt.where_clause {
        let pred = to_pred(where_clause)?;
        for conjunct in pred.conjuncts() {
            classify_conjunct(conjunct, &schemas, &mut join_conds, &mut pushed, &mut residual)?;
        }
    }

    // Scans with pushed-down filters.
    let mut nodes: Vec<Option<Plan>> = stmt
        .from
        .iter()
        .zip(pushed)
        .map(|(tref, preds)| {
            let scan = match &tref.alias {
                Some(a) => Plan::scan_as(&tref.table, a),
                None => Plan::scan(&tref.table),
            };
            Some(match Pred::from_conjuncts(preds) {
                Some(p) => scan.filter(p),
                None => scan,
            })
        })
        .collect();

    // Left-deep join tree: start from table 0, repeatedly attach any table
    // connected to the joined set by at least one equality.
    let mut plan = nodes[0].take().expect("table 0 present");
    let mut joined = vec![false; stmt.from.len()];
    joined[0] = true;
    let mut remaining = stmt.from.len() - 1;
    while remaining > 0 {
        let next = (0..stmt.from.len()).find(|&t| {
            !joined[t]
                && join_conds
                    .iter()
                    .any(|(a, b, _, _)| (joined[*a] && *b == t) || (joined[*b] && *a == t))
        });
        let Some(t) = next else {
            return Err(EngineError::Plan(
                "tables are not connected by join equalities (cross joins unsupported)".into(),
            ));
        };
        let mut on: Vec<(String, String)> = Vec::new();
        join_conds.retain(|(a, b, ca, cb)| {
            if joined[*a] && *b == t {
                on.push((ca.clone(), cb.clone()));
                false
            } else if joined[*b] && *a == t {
                on.push((cb.clone(), ca.clone()));
                false
            } else {
                true
            }
        });
        plan = Plan::Join {
            left: Box::new(plan),
            right: Box::new(nodes[t].take().expect("unjoined table present")),
            on,
        };
        joined[t] = true;
        remaining -= 1;
    }
    // Equalities between already-joined tables (e.g. cyclic conditions)
    // remain as residual filters.
    for (_, _, a, b) in join_conds {
        residual.push(Pred::eq(Expr::col(a), Expr::col(b)));
    }
    if let Some(p) = Pred::from_conjuncts(residual) {
        plan = plan.filter(p);
    }

    // SELECT list.
    let is_aggregate = !stmt.group_by.is_empty()
        || stmt.items.iter().any(|item| {
            matches!(
                item,
                SelectItem::Expr { expr, .. } if contains_agg(expr)
            )
        });
    let mut plan = if is_aggregate {
        lower_aggregate(stmt, plan, &schemas)?
    } else {
        if stmt.having.is_some() {
            return Err(EngineError::Plan(
                "HAVING requires GROUP BY / aggregates".into(),
            ));
        }
        lower_projection(stmt, plan, &schemas)?
    };
    if stmt.distinct {
        plan = plan.distinct();
    }

    // ORDER BY / LIMIT sit on top of the final projection and reference
    // its output names (unqualified for aggregate queries).
    if stmt.order_by.is_empty() && stmt.limit.is_none() {
        return Ok(plan);
    }
    let keys: Vec<(String, bool)> = stmt
        .order_by
        .iter()
        .map(|k| {
            let name = if is_aggregate {
                unqualified(&k.column).to_owned()
            } else {
                k.column.clone()
            };
            (name, k.descending)
        })
        .collect();
    Ok(Plan::Sort {
        input: Box::new(plan),
        keys,
        limit: stmt.limit,
    })
}

/// Does the expression contain an aggregate call?
fn contains_agg(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::Agg(..) | SqlExpr::CountStar => true,
        SqlExpr::Column(_) | SqlExpr::Lit(_) => false,
        SqlExpr::Add(a, b)
        | SqlExpr::Sub(a, b)
        | SqlExpr::Mul(a, b)
        | SqlExpr::Div(a, b)
        | SqlExpr::Cmp(a, _, b)
        | SqlExpr::And(a, b)
        | SqlExpr::Or(a, b) => contains_agg(a) || contains_agg(b),
        SqlExpr::Neg(a) | SqlExpr::Not(a) => contains_agg(a),
    }
}

/// Converts a WHERE expression to a predicate.
fn to_pred(e: &SqlExpr) -> Result<Pred> {
    Ok(match e {
        SqlExpr::Cmp(a, op, b) => Pred::Cmp(to_expr(a)?, *op, to_expr(b)?),
        SqlExpr::And(a, b) => to_pred(a)?.and(to_pred(b)?),
        SqlExpr::Or(a, b) => to_pred(a)?.or(to_pred(b)?),
        SqlExpr::Not(a) => to_pred(a)?.negate(),
        other => {
            return Err(EngineError::Plan(format!(
                "expected boolean condition, found {other:?}"
            )))
        }
    })
}

/// Converts a scalar expression (no aggregates, no booleans).
fn to_expr(e: &SqlExpr) -> Result<Expr> {
    Ok(match e {
        SqlExpr::Column(c) => Expr::Col(c.clone()),
        SqlExpr::Lit(v) => Expr::Lit(v.clone()),
        SqlExpr::Add(a, b) => to_expr(a)?.add(to_expr(b)?),
        SqlExpr::Sub(a, b) => to_expr(a)?.sub(to_expr(b)?),
        SqlExpr::Mul(a, b) => to_expr(a)?.mul(to_expr(b)?),
        SqlExpr::Div(a, b) => to_expr(a)?.div(to_expr(b)?),
        SqlExpr::Neg(a) => to_expr(a)?.neg(),
        SqlExpr::Agg(..) | SqlExpr::CountStar => {
            return Err(EngineError::Plan(
                "aggregate call in scalar context (nested aggregates unsupported)".into(),
            ))
        }
        other => {
            return Err(EngineError::Plan(format!(
                "boolean expression in scalar context: {other:?}"
            )))
        }
    })
}

/// Which FROM tables can resolve every column of `cols`?
fn resolving_tables(cols: &[&str], schemas: &[Schema]) -> Vec<usize> {
    (0..schemas.len())
        .filter(|&t| cols.iter().all(|c| schemas[t].resolve(c).is_ok()))
        .collect()
}

fn classify_conjunct(
    conjunct: &Pred,
    schemas: &[Schema],
    join_conds: &mut Vec<(usize, usize, String, String)>,
    pushed: &mut [Vec<Pred>],
    residual: &mut Vec<Pred>,
) -> Result<()> {
    if let Some((a, b)) = conjunct.as_column_equality() {
        let ta = resolving_tables(&[a], schemas);
        let tb = resolving_tables(&[b], schemas);
        if ta.len() == 1 && tb.len() == 1 && ta[0] != tb[0] {
            join_conds.push((ta[0], tb[0], a.to_owned(), b.to_owned()));
            return Ok(());
        }
        if ta.len() > 1 || tb.len() > 1 {
            let ambiguous = if ta.len() > 1 { a } else { b };
            return Err(EngineError::AmbiguousColumn(ambiguous.to_owned()));
        }
        // same table or unresolved → fall through to filter classification
    }
    let cols: Vec<&str> = pred_columns(conjunct);
    match resolving_tables(&cols, schemas).as_slice() {
        [t] => pushed[*t].push(conjunct.clone()),
        [] => residual.push(conjunct.clone()),
        _many => {
            // every column individually ambiguous across tables
            return Err(EngineError::AmbiguousColumn(
                cols.first().copied().unwrap_or("<none>").to_owned(),
            ));
        }
    }
    Ok(())
}

/// All column names referenced by a predicate.
fn pred_columns(p: &Pred) -> Vec<&str> {
    match p {
        Pred::Cmp(a, _, b) => {
            let mut cols = a.columns();
            cols.extend(b.columns());
            cols
        }
        Pred::And(a, b) | Pred::Or(a, b) => {
            let mut cols = pred_columns(a);
            cols.extend(pred_columns(b));
            cols
        }
        Pred::Not(a) => pred_columns(a),
    }
}

fn unqualified(name: &str) -> &str {
    name.rsplit_once('.').map(|(_, c)| c).unwrap_or(name)
}

fn lower_projection(stmt: &SelectStmt, plan: Plan, schemas: &[Schema]) -> Result<Plan> {
    let mut exprs: Vec<(Expr, String)> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Star => {
                for schema in schemas {
                    for col in schema.columns() {
                        exprs.push((Expr::col(col.to_string()), col.name.clone()));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let e = to_expr(expr)?;
                let name = alias.clone().unwrap_or_else(|| e.default_name());
                exprs.push((e, name));
            }
        }
    }
    Ok(plan.project(exprs))
}

fn lower_aggregate(stmt: &SelectStmt, plan: Plan, _schemas: &[Schema]) -> Result<Plan> {
    // Build aggregate list and the final output projection in SELECT order.
    let mut aggs: Vec<(AggFunc, Expr, String)> = Vec::new();
    let mut outputs: Vec<(Expr, String)> = Vec::new();
    let mut agg_counter = 0usize;
    for item in &stmt.items {
        let SelectItem::Expr { expr, alias } = item else {
            return Err(EngineError::Plan(
                "SELECT * is not allowed in aggregate queries".into(),
            ));
        };
        match expr {
            SqlExpr::Column(c) => {
                // must be (a suffix-match of) a GROUP BY column
                let matched = stmt
                    .group_by
                    .iter()
                    .any(|g| g == c || unqualified(g) == unqualified(c));
                if !matched {
                    return Err(EngineError::Plan(format!(
                        "column {c} is neither aggregated nor in GROUP BY"
                    )));
                }
                let out_name = alias.clone().unwrap_or_else(|| unqualified(c).to_owned());
                outputs.push((Expr::col(unqualified(c)), out_name));
            }
            agg_expr if contains_agg(agg_expr) => {
                let (func, inner) = match agg_expr {
                    SqlExpr::Agg(func, inner) => (*func, to_expr(inner)?),
                    SqlExpr::CountStar => (AggFunc::Count, Expr::lit(1)),
                    other => {
                        return Err(EngineError::Plan(format!(
                            "arithmetic over aggregates is unsupported: {other:?}"
                        )))
                    }
                };
                let name = alias.clone().unwrap_or_else(|| {
                    agg_counter += 1;
                    if agg_counter == 1 {
                        format!("{func}").to_ascii_lowercase()
                    } else {
                        format!("{}_{agg_counter}", format!("{func}").to_ascii_lowercase())
                    }
                });
                aggs.push((func, inner, name.clone()));
                outputs.push((Expr::col(name.clone()), name));
            }
            other => {
                return Err(EngineError::Plan(format!(
                    "non-aggregate expression in aggregate query: {other:?}"
                )))
            }
        }
    }
    let agg_plan = plan.aggregate(
        stmt.group_by.iter().map(String::as_str).collect(),
        aggs.iter()
            .map(|(f, e, n)| (*f, e.clone(), n.as_str()))
            .collect(),
    );
    let mut plan = agg_plan.project(outputs);
    // HAVING filters the aggregate output; aggregate calls in the clause
    // must structurally match a SELECT aggregate (they reuse its column).
    if let Some(having) = &stmt.having {
        let pred = to_pred(&rewrite_having(having, &aggs)?)?;
        plan = plan.filter(pred);
    }
    Ok(plan)
}

/// Replaces aggregate calls inside a HAVING expression with references to
/// the matching SELECT-list aggregate's output column.
fn rewrite_having(
    e: &SqlExpr,
    aggs: &[(AggFunc, Expr, String)],
) -> Result<SqlExpr> {
    let find = |func: AggFunc, inner: &Expr| -> Result<SqlExpr> {
        aggs.iter()
            .find(|(f, e, _)| *f == func && e == inner)
            .map(|(_, _, name)| SqlExpr::Column(name.clone()))
            .ok_or_else(|| {
                EngineError::Plan(format!(
                    "HAVING aggregate {func}({inner}) must also appear in the SELECT list"
                ))
            })
    };
    Ok(match e {
        SqlExpr::Agg(func, inner) => find(*func, &to_expr(inner)?)?,
        SqlExpr::CountStar => find(AggFunc::Count, &Expr::lit(1))?,
        SqlExpr::Column(_) | SqlExpr::Lit(_) => e.clone(),
        SqlExpr::Add(a, b) => SqlExpr::Add(
            Box::new(rewrite_having(a, aggs)?),
            Box::new(rewrite_having(b, aggs)?),
        ),
        SqlExpr::Sub(a, b) => SqlExpr::Sub(
            Box::new(rewrite_having(a, aggs)?),
            Box::new(rewrite_having(b, aggs)?),
        ),
        SqlExpr::Mul(a, b) => SqlExpr::Mul(
            Box::new(rewrite_having(a, aggs)?),
            Box::new(rewrite_having(b, aggs)?),
        ),
        SqlExpr::Div(a, b) => SqlExpr::Div(
            Box::new(rewrite_having(a, aggs)?),
            Box::new(rewrite_having(b, aggs)?),
        ),
        SqlExpr::Neg(a) => SqlExpr::Neg(Box::new(rewrite_having(a, aggs)?)),
        SqlExpr::Cmp(a, op, b) => SqlExpr::Cmp(
            Box::new(rewrite_having(a, aggs)?),
            *op,
            Box::new(rewrite_having(b, aggs)?),
        ),
        SqlExpr::And(a, b) => SqlExpr::And(
            Box::new(rewrite_having(a, aggs)?),
            Box::new(rewrite_having(b, aggs)?),
        ),
        SqlExpr::Or(a, b) => SqlExpr::Or(
            Box::new(rewrite_having(a, aggs)?),
            Box::new(rewrite_having(b, aggs)?),
        ),
        SqlExpr::Not(a) => SqlExpr::Not(Box::new(rewrite_having(a, aggs)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::value::Value;
    use cobra_util::Rat;

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn mini_db() -> Database {
        let mut db = Database::new();
        db.insert(
            "Cust",
            Relation::from_rows(
                ["ID", "Plan", "Zip"],
                vec![
                    vec![Value::Int(1), Value::str("A"), Value::Int(10001)],
                    vec![Value::Int(2), Value::str("B"), Value::Int(10002)],
                ],
            )
            .unwrap(),
        );
        db.insert(
            "Calls",
            Relation::from_rows(
                ["CID", "Mo", "Dur"],
                vec![
                    vec![Value::Int(1), Value::Int(1), Value::Int(522)],
                    vec![Value::Int(2), Value::Int(1), Value::Int(100)],
                    vec![Value::Int(1), Value::Int(3), Value::Int(480)],
                ],
            )
            .unwrap(),
        );
        db.insert(
            "Plans",
            Relation::from_rows(
                ["Plan", "Mo", "Price"],
                vec![
                    vec![Value::str("A"), Value::Int(1), Value::Num(rat("0.4"))],
                    vec![Value::str("A"), Value::Int(3), Value::Num(rat("0.5"))],
                    vec![Value::str("B"), Value::Int(1), Value::Num(rat("0.1"))],
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn end_to_end_running_example_shape() {
        let db = mini_db();
        let out = db
            .sql(
                "SELECT Zip, SUM(Calls.Dur * Plans.Price) AS revenue \
                 FROM Calls, Cust, Plans \
                 WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID AND Calls.Mo = Plans.Mo \
                 GROUP BY Cust.Zip",
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        // 522·0.4 + 480·0.5 = 448.8 for zip 10001; 100·0.1 = 10 for 10002
        let r = out.sorted_for_display();
        assert_eq!(r.rows()[0][0], Value::Int(10001));
        assert_eq!(r.rows()[0][1], Value::Num(rat("448.8")));
        assert_eq!(r.rows()[1][1], Value::Num(rat("10")));
    }

    #[test]
    fn projection_star_and_alias() {
        let db = mini_db();
        let out = db.sql("SELECT * FROM Plans WHERE Mo = 1").unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().len(), 3);
        let out2 = db
            .sql("SELECT Price * 2 AS dbl FROM Plans WHERE Plan = 'A' AND Mo = 1")
            .unwrap();
        assert_eq!(out2.rows()[0][0], Value::Num(rat("0.8")));
    }

    #[test]
    fn pushdown_produces_filtered_scans() {
        let db = mini_db();
        let plan = super::super::compile(
            "SELECT Dur FROM Calls, Cust WHERE Cust.ID = Calls.CID AND Zip = 10001",
            &db,
        )
        .unwrap();
        // The Zip filter must sit below the join, directly over the Cust scan.
        let text = plan.explain();
        let join_line = text.lines().position(|l| l.contains("HashJoin")).unwrap();
        let filter_line = text.lines().position(|l| l.contains("Filter Zip")).unwrap();
        assert!(filter_line > join_line, "filter should be under the join:\n{text}");
    }

    #[test]
    fn aggregate_without_alias_gets_default_name() {
        let db = mini_db();
        let out = db
            .sql("SELECT Zip, SUM(Dur) FROM Calls, Cust WHERE Cust.ID = Calls.CID GROUP BY Zip")
            .unwrap();
        assert!(out.schema().resolve("sum").is_ok());
    }

    #[test]
    fn count_star_and_global_aggregate() {
        let db = mini_db();
        let out = db.sql("SELECT COUNT(*) AS n FROM Calls").unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn select_order_can_put_aggregate_first() {
        let db = mini_db();
        let out = db
            .sql("SELECT SUM(Dur) AS s, Mo FROM Calls GROUP BY Mo")
            .unwrap();
        assert_eq!(out.schema().resolve("s").unwrap(), 0);
        assert_eq!(out.schema().resolve("Mo").unwrap(), 1);
        let r = out.sorted_for_display();
        assert_eq!(r.rows()[0][0], Value::Int(480)); // Mo=3
        assert_eq!(r.rows()[1][0], Value::Int(622)); // Mo=1
    }

    #[test]
    fn errors_are_informative() {
        let db = mini_db();
        assert!(matches!(
            db.sql("SELECT x FROM Nope"),
            Err(EngineError::UnknownTable(_))
        ));
        assert!(matches!(
            db.sql("SELECT Zip, SUM(Dur) FROM Calls, Cust GROUP BY Zip"),
            Err(EngineError::Plan(_)) // no join condition
        ));
        assert!(matches!(
            db.sql("SELECT Mo FROM Calls, Plans WHERE Calls.Mo = Plans.Mo AND Mo = 1"),
            Err(EngineError::AmbiguousColumn(_))
        ));
        assert!(matches!(
            db.sql("SELECT Dur FROM Calls GROUP BY Mo"),
            Err(EngineError::Plan(_)) // Dur not grouped
        ));
    }

    #[test]
    fn non_equi_cross_table_condition_is_residual() {
        let db = mini_db();
        // joinable via CID=ID, plus a residual cross-table inequality
        let out = db
            .sql(
                "SELECT Dur FROM Calls, Cust \
                 WHERE Cust.ID = Calls.CID AND Calls.Mo < Cust.ID",
            )
            .unwrap();
        // rows: (CID=2, Mo=1) qualifies (1 < 2); others have Mo >= ID
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(100));
    }
}
