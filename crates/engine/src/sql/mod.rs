//! SQL subset: `SELECT … FROM … WHERE … GROUP BY …`.
//!
//! Large enough for the paper's running example and the TPC-H-style
//! workloads: expressions with arithmetic, comparisons, `AND`/`OR`/`NOT`,
//! aggregates (`SUM`, `COUNT(*)`, `COUNT`, `MIN`, `MAX`, `AVG`), table
//! aliases, and multi-table `FROM` lists whose equality conditions are
//! turned into hash joins with single-table predicate pushdown.
//!
//! ```
//! use cobra_engine::{Database, Relation, Value};
//! let mut db = Database::new();
//! db.insert("t", Relation::from_rows(
//!     ["k", "v"],
//!     vec![vec![Value::Int(1), Value::Int(10)],
//!          vec![Value::Int(1), Value::Int(5)]],
//! ).unwrap());
//! let out = db.sql("SELECT k, SUM(v) AS total FROM t GROUP BY k").unwrap();
//! assert_eq!(out.rows()[0][1], Value::Int(15));
//! ```

mod lexer;
mod lower;
mod parser;

pub use lexer::{tokenize, Keyword, SqlToken};
pub use parser::{parse_select, SelectItem, SelectStmt, SqlExpr, TableRef};

use crate::catalog::Database;
use crate::error::Result;
use crate::query::Plan;

/// Parses a SQL query and lowers it to a logical [`Plan`] against `db`'s
/// catalog (schemas are needed to route join keys and push filters down).
pub fn compile(query: &str, db: &Database) -> Result<Plan> {
    let stmt = parse_select(query)?;
    lower::lower(&stmt, db)
}
