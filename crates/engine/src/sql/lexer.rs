//! SQL lexer.

use crate::error::{EngineError, Result};
use cobra_util::Rat;

/// SQL keywords (case-insensitive in the source).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    As,
    And,
    Or,
    Not,
    Sum,
    Count,
    Min,
    Max,
    Avg,
    Order,
    Limit,
    Asc,
    Desc,
    Having,
    Distinct,
}

impl Keyword {
    fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "AS" => Keyword::As,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "SUM" => Keyword::Sum,
            "COUNT" => Keyword::Count,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "AVG" => Keyword::Avg,
            "ORDER" => Keyword::Order,
            "LIMIT" => Keyword::Limit,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "HAVING" => Keyword::Having,
            "DISTINCT" => Keyword::Distinct,
            _ => return None,
        })
    }
}

/// A SQL token with its byte offset.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlToken {
    Kw(Keyword),
    /// Identifier (original case preserved). Qualified names arrive as
    /// `Ident . Ident` token sequences.
    Ident(String),
    /// Numeric literal; integers keep a flag so `1` stays an `Int`.
    Number { value: Rat, is_integer: bool },
    /// Single-quoted string literal.
    Str(String),
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LParen,
    RParen,
}

/// Tokenizes `src`, returning `(offset, token)` pairs.
pub fn tokenize(src: &str) -> Result<Vec<(usize, SqlToken)>> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    let err = |pos: usize, message: String| EngineError::Sql {
        offset: pos,
        message,
    };
    while pos < bytes.len() {
        let c = bytes[pos];
        if c.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        let start = pos;
        let tok = match c {
            b',' => {
                pos += 1;
                SqlToken::Comma
            }
            b'.' => {
                pos += 1;
                SqlToken::Dot
            }
            b'*' => {
                pos += 1;
                SqlToken::Star
            }
            b'+' => {
                pos += 1;
                SqlToken::Plus
            }
            b'-' => {
                // '--' line comment
                if bytes.get(pos + 1) == Some(&b'-') {
                    while pos < bytes.len() && bytes[pos] != b'\n' {
                        pos += 1;
                    }
                    continue;
                }
                pos += 1;
                SqlToken::Minus
            }
            b'/' => {
                pos += 1;
                SqlToken::Slash
            }
            b'(' => {
                pos += 1;
                SqlToken::LParen
            }
            b')' => {
                pos += 1;
                SqlToken::RParen
            }
            b'=' => {
                pos += 1;
                SqlToken::Eq
            }
            b'<' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    pos += 2;
                    SqlToken::Le
                }
                Some(b'>') => {
                    pos += 2;
                    SqlToken::Ne
                }
                _ => {
                    pos += 1;
                    SqlToken::Lt
                }
            },
            b'>' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    pos += 2;
                    SqlToken::Ge
                }
                _ => {
                    pos += 1;
                    SqlToken::Gt
                }
            },
            b'!' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    pos += 2;
                    SqlToken::Ne
                }
                _ => return Err(err(pos, "expected '=' after '!'".into())),
            },
            b'\'' => {
                pos += 1;
                let s_start = pos;
                while pos < bytes.len() && bytes[pos] != b'\'' {
                    pos += 1;
                }
                if pos >= bytes.len() {
                    return Err(err(start, "unterminated string literal".into()));
                }
                let s = std::str::from_utf8(&bytes[s_start..pos])
                    .map_err(|_| err(start, "invalid UTF-8 in string".into()))?
                    .to_owned();
                pos += 1; // closing quote
                SqlToken::Str(s)
            }
            b'0'..=b'9' => {
                let mut is_integer = true;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                if pos < bytes.len() && bytes[pos] == b'.' && bytes.get(pos + 1).is_some_and(|b| b.is_ascii_digit()) {
                    is_integer = false;
                    pos += 1;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                }
                // The scanned range contains only ASCII digits and dots,
                // so conversion cannot fail — but lexing must never
                // panic on any input, so route the impossible case to
                // the ordinary lex error.
                let text = std::str::from_utf8(&bytes[start..pos])
                    .map_err(|_| err(start, "invalid UTF-8 in number".into()))?;
                let value = Rat::parse(text)
                    .map_err(|_| err(start, format!("invalid number {text:?}")))?;
                SqlToken::Number { value, is_integer }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                // ASCII-alphanumeric range, same never-panic policy.
                let text = std::str::from_utf8(&bytes[start..pos])
                    .map_err(|_| err(start, "invalid UTF-8 in identifier".into()))?;
                match Keyword::from_ident(text) {
                    Some(kw) => SqlToken::Kw(kw),
                    None => SqlToken::Ident(text.to_owned()),
                }
            }
            other => {
                return Err(err(
                    pos,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        out.push((start, tok));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select FROM WhErE").unwrap();
        assert_eq!(toks[0].1, SqlToken::Kw(Keyword::Select));
        assert_eq!(toks[1].1, SqlToken::Kw(Keyword::From));
        assert_eq!(toks[2].1, SqlToken::Kw(Keyword::Where));
    }

    #[test]
    fn numbers_and_strings() {
        let toks = tokenize("42 3.14 'abc def'").unwrap();
        match &toks[0].1 {
            SqlToken::Number { value, is_integer } => {
                assert_eq!(*value, Rat::int(42));
                assert!(is_integer);
            }
            other => panic!("{other:?}"),
        }
        match &toks[1].1 {
            SqlToken::Number { is_integer, .. } => assert!(!is_integer),
            other => panic!("{other:?}"),
        }
        assert_eq!(toks[2].1, SqlToken::Str("abc def".into()));
    }

    #[test]
    fn operators_and_comments() {
        let toks = tokenize("a <= b <> c -- trailing comment\n>= !=").unwrap();
        let kinds: Vec<&SqlToken> = toks.iter().map(|(_, t)| t).collect();
        assert!(matches!(kinds[1], SqlToken::Le));
        assert!(matches!(kinds[3], SqlToken::Ne));
        assert!(matches!(kinds[5], SqlToken::Ge));
        assert!(matches!(kinds[6], SqlToken::Ne));
    }

    #[test]
    fn qualified_name_token_stream() {
        let toks = tokenize("Cust.Plan").unwrap();
        assert_eq!(toks.len(), 3);
        assert!(matches!(toks[1].1, SqlToken::Dot));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a ; b").is_err());
    }
}
