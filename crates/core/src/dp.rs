//! The exact single-tree optimizer (paper §2, "Optimization Problem").
//!
//! "The algorithm traverses the abstraction tree in a bottom-up fashion,
//! and using dynamic programming, computes an abstraction for the sub-tree
//! rooted by each one of the inner nodes." Concretely, because the
//! compressed size decomposes as `base + Σ_{v∈cut} w(v)`
//! ([`crate::groups`]), the problem becomes a **tree knapsack**: for every
//! node `v` and cut cardinality `k`, compute
//!
//! ```text
//! f_v(k) = min { Σ_{u∈cut} w(u) : cut of subtree(v), |cut| = k }
//! ```
//!
//! For a leaf, `f(1) = w`. For an inner node, either cut at the node
//! itself (`k = 1`, cost `w(v)`) or combine children cuts by knapsack
//! convolution. The optimum for bound `B` is the largest `k` with
//! `f_root(k) ≤ B − base`; the cut is recovered through backpointers.
//! Total work is `O(L²)` over the convolutions (`L` = number of leaves) —
//! the PTIME bound claimed in the paper.
//!
//! `f_root` is exposed in full as the **Pareto frontier** of
//! expressiveness vs. size, which drives the paper's interactive
//! bound-sweep (experiment E5).

use crate::cut::Cut;
use crate::error::{CoreError, Result};
use crate::groups::GroupAnalysis;
use crate::tree::{AbstractionTree, NodeId};

const INF: u64 = u64::MAX;

/// Per-node DP table: `cost[k-1]` = minimal Σw for a cut of this subtree
/// with exactly `k` nodes (`INF` if unattainable), plus backpointers.
struct NodeTable {
    cost: Vec<u64>,
    /// For each feasible `k`: `None` = cut at this node (only for k=1);
    /// `Some(splits)` = per-child cardinalities.
    choice: Vec<Option<Vec<usize>>>,
}

/// A point of the expressiveness/size trade-off curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParetoPoint {
    /// Cut cardinality (number of meta-variables for this tree).
    pub variables: usize,
    /// Total compressed provenance size (monomials, including base).
    pub size: u64,
}

/// The optimizer's output.
#[derive(Clone, Debug)]
pub struct DpSolution {
    /// The chosen cut.
    pub cut: Cut,
    /// `|cut|` — the expressiveness achieved on this tree.
    pub variables: usize,
    /// Compressed provenance size under the cut (monomials, incl. base).
    pub size: u64,
}

/// Exact optimizer: maximal-cardinality cut whose compressed size is
/// ≤ `bound`; ties broken by smaller size.
///
/// ```
/// use cobra_core::{dp, groups::GroupAnalysis, tree::AbstractionTree};
/// use cobra_provenance::{parse_polyset, VarRegistry};
///
/// let mut reg = VarRegistry::new();
/// let tree = AbstractionTree::parse("T(A(a1,a2), B(b1,b2))", &mut reg).unwrap();
/// let set = parse_polyset("P = 1*c*a1 + 2*c*a2 + 3*c*b1 + 4*c*b2", &mut reg).unwrap();
/// let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
/// // bound 3 forces one merge; the optimizer keeps three variables
/// let sol = dp::optimize(&tree, &analysis, 3).unwrap();
/// assert_eq!(sol.variables, 3);
/// assert_eq!(sol.size, 3);
/// ```
///
/// # Errors
/// [`CoreError::InfeasibleBound`] if even the root cut exceeds the bound.
pub fn optimize(
    tree: &AbstractionTree,
    analysis: &GroupAnalysis,
    bound: u64,
) -> Result<DpSolution> {
    let tables = build_tables(tree, analysis);
    let root = &tables[tree.root().index()];
    let budget = bound.saturating_sub(analysis.base_monomials);
    if analysis.base_monomials > bound || root.cost[0] > budget {
        return Err(CoreError::InfeasibleBound {
            min_achievable: analysis.base_monomials + root.cost[0],
        });
    }
    let mut best_k = 1usize;
    for k in 1..=root.cost.len() {
        let c = root.cost[k - 1];
        if c != INF && c <= budget {
            best_k = k; // larger k always preferred; cost for fixed k is minimal
        }
    }
    let mut nodes = Vec::with_capacity(best_k);
    reconstruct(tree, &tables, tree.root(), best_k, &mut nodes);
    let cut = Cut::new(tree, nodes).expect("DP reconstruction yields a valid cut");
    let size = analysis.base_monomials + root.cost[best_k - 1];
    debug_assert_eq!(size, analysis.compressed_size(cut.nodes()));
    Ok(DpSolution {
        variables: best_k,
        size,
        cut,
    })
}

/// The full trade-off curve: for every attainable cut cardinality `k`, the
/// minimal compressed size. Monotone non-decreasing in `k`.
pub fn pareto_frontier(tree: &AbstractionTree, analysis: &GroupAnalysis) -> Vec<ParetoPoint> {
    let tables = build_tables(tree, analysis);
    let root = &tables[tree.root().index()];
    (1..=root.cost.len())
        .filter(|&k| root.cost[k - 1] != INF)
        .map(|k| ParetoPoint {
            variables: k,
            size: analysis.base_monomials + root.cost[k - 1],
        })
        .collect()
}

/// The minimal-size cut for an exact cardinality `k`, if attainable — used
/// by the ablation experiments to pin expressiveness while varying cost.
pub fn optimize_for_cardinality(
    tree: &AbstractionTree,
    analysis: &GroupAnalysis,
    k: usize,
) -> Option<DpSolution> {
    let tables = build_tables(tree, analysis);
    let root = &tables[tree.root().index()];
    if k == 0 || k > root.cost.len() || root.cost[k - 1] == INF {
        return None;
    }
    let mut nodes = Vec::with_capacity(k);
    reconstruct(tree, &tables, tree.root(), k, &mut nodes);
    let cut = Cut::new(tree, nodes).expect("DP reconstruction yields a valid cut");
    Some(DpSolution {
        variables: k,
        size: analysis.base_monomials + root.cost[k - 1],
        cut,
    })
}

fn build_tables(tree: &AbstractionTree, analysis: &GroupAnalysis) -> Vec<NodeTable> {
    let mut tables: Vec<Option<NodeTable>> = (0..tree.num_nodes()).map(|_| None).collect();
    for node in tree.post_order() {
        let w = analysis.node_weight[node.index()];
        let table = if tree.is_leaf(node) {
            NodeTable {
                cost: vec![w],
                choice: vec![None],
            }
        } else {
            // Knapsack convolution over children: `acc_cost[k]` is the
            // minimal Σw over cuts of the already-folded children using
            // exactly `k` nodes; `acc_split[k]` records each child's share.
            let mut acc_cost: Vec<u64> = vec![0];
            let mut acc_split: Vec<Vec<usize>> = vec![Vec::new()];
            for &child in tree.children(node) {
                let ct = tables[child.index()].as_ref().expect("post-order fills children first");
                let new_len = acc_cost.len() + ct.cost.len();
                let mut new_cost = vec![INF; new_len];
                let mut new_split: Vec<Vec<usize>> = vec![Vec::new(); new_len];
                for (i, &ca) in acc_cost.iter().enumerate() {
                    if ca == INF {
                        continue;
                    }
                    for (j, &cb) in ct.cost.iter().enumerate() {
                        if cb == INF {
                            continue;
                        }
                        let k = i + j + 1; // this child contributes j+1 nodes
                        let total = ca + cb;
                        if total < new_cost[k] {
                            new_cost[k] = total;
                            let mut s = acc_split[i].clone();
                            s.push(j + 1);
                            new_split[k] = s;
                        }
                    }
                }
                acc_cost = new_cost;
                acc_split = new_split;
            }
            // Shift to 1-based cardinalities; k ranges up to #leaves(node).
            let max_k = acc_cost.len() - 1;
            let mut cost = vec![INF; max_k];
            let mut choice: Vec<Option<Vec<usize>>> = vec![None; max_k];
            for k in 1..=max_k {
                if acc_cost[k] != INF {
                    cost[k - 1] = acc_cost[k];
                    choice[k - 1] = Some(std::mem::take(&mut acc_split[k]));
                }
            }
            // Option: cut at this node itself (k = 1).
            if w < cost[0] {
                cost[0] = w;
                choice[0] = None;
            }
            NodeTable { cost, choice }
        };
        tables[node.index()] = Some(table);
    }
    tables.into_iter().map(|t| t.expect("all filled")).collect()
}

fn reconstruct(
    tree: &AbstractionTree,
    tables: &[NodeTable],
    node: NodeId,
    k: usize,
    out: &mut Vec<NodeId>,
) {
    match &tables[node.index()].choice[k - 1] {
        None => out.push(node),
        Some(splits) => {
            debug_assert_eq!(splits.len(), tree.children(node).len());
            for (&child, &ck) in tree.children(node).iter().zip(splits) {
                reconstruct(tree, tables, child, ck, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::{parse_polyset, VarRegistry};

    fn paper_analysis() -> (VarRegistry, AbstractionTree, GroupAnalysis) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set = parse_polyset(src, &mut reg).unwrap();
        let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
        (reg, tree, analysis)
    }

    #[test]
    fn unconstrained_bound_returns_leaf_cut() {
        let (_, tree, a) = paper_analysis();
        let sol = optimize(&tree, &a, 10_000).unwrap();
        assert_eq!(sol.variables, 11);
        assert_eq!(sol.size, 14); // no compression needed
    }

    #[test]
    fn tight_bound_returns_root_cut() {
        let (_, tree, a) = paper_analysis();
        let sol = optimize(&tree, &a, 4).unwrap();
        assert_eq!(sol.variables, 1);
        assert_eq!(sol.size, 4);
        assert_eq!(sol.cut.nodes(), &[tree.root()]);
    }

    #[test]
    fn infeasible_bound_reports_minimum() {
        let (_, tree, a) = paper_analysis();
        match optimize(&tree, &a, 3) {
            Err(CoreError::InfeasibleBound { min_achievable }) => {
                assert_eq!(min_achievable, 4)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn intermediate_bounds_maximize_variables() {
        let (_, tree, a) = paper_analysis();
        // The paper's S1 = {Business, Special, Standard} reaches size 6
        // with 3 variables, but the optimizer does better: p2 occurs in no
        // polynomial, so {p1, p2, Special, Business} also has size 6 with
        // 4 variables (free leaves cost nothing).
        let sol6 = optimize(&tree, &a, 6).unwrap();
        assert_eq!(sol6.variables, 4);
        assert_eq!(sol6.size, 6);
        // At bound 5 neither k=3 nor k=4 fits (both cost 6) and k=2 is
        // unattainable on Fig. 2, so the root cut wins.
        let sol5 = optimize(&tree, &a, 5).unwrap();
        assert_eq!(sol5.variables, 1);
        assert_eq!(sol5.size, 4);
    }

    #[test]
    fn pareto_frontier_is_monotone_and_complete() {
        let (_, tree, a) = paper_analysis();
        let frontier = pareto_frontier(&tree, &a);
        assert!(!frontier.is_empty());
        assert_eq!(frontier.first().unwrap().variables, 1);
        assert_eq!(frontier.first().unwrap().size, 4);
        assert_eq!(frontier.last().unwrap().variables, 11);
        assert_eq!(frontier.last().unwrap().size, 14);
        for w in frontier.windows(2) {
            assert!(w[0].variables < w[1].variables);
            assert!(w[0].size <= w[1].size, "size must be monotone in k");
        }
    }

    #[test]
    fn solution_size_matches_group_formula_and_cut_is_valid() {
        let (_, tree, a) = paper_analysis();
        for bound in [4, 5, 6, 8, 10, 12, 14] {
            let sol = optimize(&tree, &a, bound).unwrap();
            assert_eq!(sol.size, a.compressed_size(sol.cut.nodes()), "bound {bound}");
            assert!(sol.size <= bound);
            assert_eq!(sol.cut.len(), sol.variables);
        }
    }

    #[test]
    fn optimize_for_cardinality_pins_k() {
        let (_, tree, a) = paper_analysis();
        let sol = optimize_for_cardinality(&tree, &a, 3).unwrap();
        assert_eq!(sol.variables, 3);
        assert_eq!(sol.size, 6);
        // k=2 is NOT attainable on Fig. 2 (root has 3 children)
        assert!(optimize_for_cardinality(&tree, &a, 2).is_none());
        assert!(optimize_for_cardinality(&tree, &a, 0).is_none());
        assert!(optimize_for_cardinality(&tree, &a, 12).is_none());
    }

    #[test]
    fn dp_matches_brute_force_on_paper_input() {
        let (_, tree, a) = paper_analysis();
        let cuts = crate::cut::enumerate_cuts(&tree, 1_000).unwrap();
        for bound in 4..=14u64 {
            let dp = optimize(&tree, &a, bound).unwrap();
            // brute force: max k with size ≤ bound, tie → min size
            let best = cuts
                .iter()
                .map(|c| (c.len(), a.compressed_size(c.nodes())))
                .filter(|&(_, size)| size <= bound)
                .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
                .unwrap();
            assert_eq!(dp.variables, best.0, "bound {bound}");
            assert_eq!(dp.size, best.1, "bound {bound}");
        }
    }
}
