//! The exact single-tree optimizer (paper §2, "Optimization Problem") —
//! a thin wrapper over the unified planner.
//!
//! "The algorithm traverses the abstraction tree in a bottom-up fashion,
//! and using dynamic programming, computes an abstraction for the sub-tree
//! rooted by each one of the inner nodes." Concretely, because the
//! compressed size decomposes as `base + Σ_{v∈cut} w(v)`
//! ([`crate::groups`]), the problem becomes a **tree knapsack**: for every
//! node `v` and cut cardinality `k`, compute
//!
//! ```text
//! f_v(k) = min { Σ_{u∈cut} w(u) : cut of subtree(v), |cut| = k }
//! ```
//!
//! For a leaf, `f(1) = w`. For an inner node, either cut at the node
//! itself (`k = 1`, cost `w(v)`) or combine children cuts by knapsack
//! convolution. The optimum for bound `B` is the largest `k` with
//! `f_root(k) ≤ B − base`; the cut is recovered through backpointers.
//! Total work is `O(L²)` over the convolutions (`L` = number of leaves) —
//! the PTIME bound claimed in the paper.
//!
//! The knapsack itself lives in [`crate::planner`] ([`ExactDp`] over a
//! [`PlanContext`] that memoizes the shared cut statistics); these
//! functions keep the original one-shot entry points for callers that
//! plan a single `(tree, analysis, bound)` triple. Callers answering many
//! bounds should build one [`PlanContext`] (or use
//! [`CutPlanner::plan_frontier`]) so the tables are built once.

use crate::error::Result;
use crate::groups::GroupAnalysis;
use crate::planner::{CutPlanner, ExactDp, PlanContext};
use crate::tree::AbstractionTree;

pub use crate::planner::ParetoPoint;

/// The optimizer's output — an alias of the planner's
/// [`PlannedCut`](crate::planner::PlannedCut), kept under the historical
/// name used throughout the optimizer surface.
pub type DpSolution = crate::planner::PlannedCut;

/// Exact optimizer: maximal-cardinality cut whose compressed size is
/// ≤ `bound`; ties broken by smaller size.
///
/// ```
/// use cobra_core::{dp, groups::GroupAnalysis, tree::AbstractionTree};
/// use cobra_provenance::{parse_polyset, VarRegistry};
///
/// let mut reg = VarRegistry::new();
/// let tree = AbstractionTree::parse("T(A(a1,a2), B(b1,b2))", &mut reg).unwrap();
/// let set = parse_polyset("P = 1*c*a1 + 2*c*a2 + 3*c*b1 + 4*c*b2", &mut reg).unwrap();
/// let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
/// // bound 3 forces one merge; the optimizer keeps three variables
/// let sol = dp::optimize(&tree, &analysis, 3).unwrap();
/// assert_eq!(sol.variables, 3);
/// assert_eq!(sol.size, 3);
/// ```
///
/// # Errors
/// [`CoreError::InfeasibleBound`](crate::error::CoreError::InfeasibleBound)
/// if even the root cut exceeds the bound.
pub fn optimize(
    tree: &AbstractionTree,
    analysis: &GroupAnalysis,
    bound: u64,
) -> Result<DpSolution> {
    ExactDp.plan(&PlanContext::new(tree, analysis), bound)
}

/// The full trade-off curve: for every attainable cut cardinality `k`, the
/// minimal compressed size. Monotone non-decreasing in `k`. (The witness
/// cuts are available through
/// [`ExactDp::plan_frontier`](crate::planner::CutPlanner::plan_frontier).)
pub fn pareto_frontier(tree: &AbstractionTree, analysis: &GroupAnalysis) -> Vec<ParetoPoint> {
    ExactDp.frontier_sizes(&PlanContext::new(tree, analysis))
}

/// The minimal-size cut for an exact cardinality `k`, if attainable — used
/// by the ablation experiments to pin expressiveness while varying cost.
pub fn optimize_for_cardinality(
    tree: &AbstractionTree,
    analysis: &GroupAnalysis,
    k: usize,
) -> Option<DpSolution> {
    ExactDp.plan_cardinality(&PlanContext::new(tree, analysis), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::tree::paper_plans_tree;
    use cobra_provenance::{parse_polyset, VarRegistry};

    fn paper_analysis() -> (VarRegistry, AbstractionTree, GroupAnalysis) {
        let mut reg = VarRegistry::new();
        let tree = paper_plans_tree(&mut reg);
        let src = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";
        let set = parse_polyset(src, &mut reg).unwrap();
        let analysis = GroupAnalysis::analyze(&set, &tree).unwrap();
        (reg, tree, analysis)
    }

    #[test]
    fn unconstrained_bound_returns_leaf_cut() {
        let (_, tree, a) = paper_analysis();
        let sol = optimize(&tree, &a, 10_000).unwrap();
        assert_eq!(sol.variables, 11);
        assert_eq!(sol.size, 14); // no compression needed
    }

    #[test]
    fn tight_bound_returns_root_cut() {
        let (_, tree, a) = paper_analysis();
        let sol = optimize(&tree, &a, 4).unwrap();
        assert_eq!(sol.variables, 1);
        assert_eq!(sol.size, 4);
        assert_eq!(sol.cut.nodes(), &[tree.root()]);
    }

    #[test]
    fn infeasible_bound_reports_minimum() {
        let (_, tree, a) = paper_analysis();
        match optimize(&tree, &a, 3) {
            Err(CoreError::InfeasibleBound { min_achievable }) => {
                assert_eq!(min_achievable, 4)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn intermediate_bounds_maximize_variables() {
        let (_, tree, a) = paper_analysis();
        // The paper's S1 = {Business, Special, Standard} reaches size 6
        // with 3 variables, but the optimizer does better: p2 occurs in no
        // polynomial, so {p1, p2, Special, Business} also has size 6 with
        // 4 variables (free leaves cost nothing).
        let sol6 = optimize(&tree, &a, 6).unwrap();
        assert_eq!(sol6.variables, 4);
        assert_eq!(sol6.size, 6);
        // At bound 5 neither k=3 nor k=4 fits (both cost 6) and k=2 is
        // unattainable on Fig. 2, so the root cut wins.
        let sol5 = optimize(&tree, &a, 5).unwrap();
        assert_eq!(sol5.variables, 1);
        assert_eq!(sol5.size, 4);
    }

    #[test]
    fn pareto_frontier_is_monotone_and_complete() {
        let (_, tree, a) = paper_analysis();
        let frontier = pareto_frontier(&tree, &a);
        assert!(!frontier.is_empty());
        assert_eq!(frontier.first().unwrap().variables, 1);
        assert_eq!(frontier.first().unwrap().size, 4);
        assert_eq!(frontier.last().unwrap().variables, 11);
        assert_eq!(frontier.last().unwrap().size, 14);
        for w in frontier.windows(2) {
            assert!(w[0].variables < w[1].variables);
            assert!(w[0].size <= w[1].size, "size must be monotone in k");
        }
    }

    #[test]
    fn solution_size_matches_group_formula_and_cut_is_valid() {
        let (_, tree, a) = paper_analysis();
        for bound in [4, 5, 6, 8, 10, 12, 14] {
            let sol = optimize(&tree, &a, bound).unwrap();
            assert_eq!(sol.size, a.compressed_size(sol.cut.nodes()), "bound {bound}");
            assert!(sol.size <= bound);
            assert_eq!(sol.cut.len(), sol.variables);
        }
    }

    #[test]
    fn optimize_for_cardinality_pins_k() {
        let (_, tree, a) = paper_analysis();
        let sol = optimize_for_cardinality(&tree, &a, 3).unwrap();
        assert_eq!(sol.variables, 3);
        assert_eq!(sol.size, 6);
        // k=2 is NOT attainable on Fig. 2 (root has 3 children)
        assert!(optimize_for_cardinality(&tree, &a, 2).is_none());
        assert!(optimize_for_cardinality(&tree, &a, 0).is_none());
        assert!(optimize_for_cardinality(&tree, &a, 12).is_none());
    }

    #[test]
    fn dp_matches_brute_force_on_paper_input() {
        let (_, tree, a) = paper_analysis();
        let cuts = crate::cut::enumerate_cuts(&tree, 1_000).unwrap();
        for bound in 4..=14u64 {
            let dp = optimize(&tree, &a, bound).unwrap();
            // brute force: max k with size ≤ bound, tie → min size
            let best = cuts
                .iter()
                .map(|c| (c.len(), a.compressed_size(c.nodes())))
                .filter(|&(_, size)| size <= bound)
                .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
                .unwrap();
            assert_eq!(dp.variables, best.0, "bound {bound}");
            assert_eq!(dp.size, best.1, "bound {bound}");
        }
    }
}
