//! # cobra-core
//!
//! COBRA — **CO**mpression using a**B**st**RA**ction trees — the primary
//! contribution of Deutch, Moskovitch & Rinetzky (ICDE'19 demo; algorithm
//! from their SIGMOD'19 paper *Hypothetical Reasoning via Provenance
//! Abstraction*).
//!
//! Given provenance polynomials, a user-supplied **abstraction tree** over
//! (a subset of) the variables, and a bound on the provenance size, COBRA
//! chooses a **cut** of the tree — grouping the leaves below each cut node
//! into one meta-variable — that brings the polynomial's monomial count
//! under the bound while **maximizing the number of distinct variables**
//! (the degrees of freedom left for hypothetical reasoning).
//!
//! * [`tree`] — abstraction trees ([`AbstractionTree`]), built from specs
//!   or the compact text syntax; [`tree::paper_plans_tree`] is Fig. 2.
//! * [`cut`] — validated cuts, meta-variable substitutions, and full cut
//!   enumeration for the oracle.
//! * [`groups`] — the `(polynomial, context, exponent)` group analysis
//!   that makes the compressed size additive over cut nodes.
//! * [`planner`] — the **unified compression planner**: one
//!   [`CutPlanner`] interface (`plan` one bound, `plan_frontier` the whole
//!   Pareto curve) over a shared [`PlanContext`] of memoized cut
//!   statistics, implemented by [`ExactDp`], [`Greedy`] and [`BruteForce`];
//!   plus the orthogonal [`DagOptimizer`] axis ([`AlgebraicDag`],
//!   [`ProductCse`]) selecting the algebraic rewrite behind
//!   [`CobraSession::compile_dag`].
//! * [`dp`] — the exact PTIME optimizer: bottom-up tree-knapsack dynamic
//!   programming, plus the expressiveness/size Pareto frontier (thin
//!   wrappers over the planner).
//! * [`apply`] — applying a cut: variable renaming + monomial merging,
//!   plus the group-statistics fast path ([`apply::apply_cut_with_groups`])
//!   the frontier re-selection rides.
//! * [`brute`] — exhaustive search by real application, the correctness
//!   oracle for tests.
//! * [`budget`] — sweep budgets ([`SweepBudget`]: deadlines, scenario
//!   caps, cooperative cancellation) and exact partial results
//!   ([`SweepOutcome`]), threaded through every fold entry point.
//! * [`multi`] — multi-tree forests via coordinate descent (extension
//!   beyond the demo's single-tree setting), including the descent-built
//!   forest staircase ([`plan_forest_frontier`]) behind
//!   [`CobraSession::compress_forest_frontier`].
//! * [`hydrate`] — session persistence: snapshot a planned session
//!   (registry, tree, frontier, compiled engines) into one
//!   [`cobra_provenance::persist`] artifact and re-hydrate it — by mmap,
//!   zero-copy — into a session that answers bit-identically.
//! * [`assign`] — meta-variable defaults (group averages), scenario
//!   projection/expansion, result comparison and assignment-speedup
//!   measurement.
//! * [`scenario_set`] — lazily enumerated scenario families
//!   ([`ScenarioSet`]): cartesian factor grids, per-variable
//!   perturbations, and explicit lists, described in O(axes) memory.
//! * [`scenario`] — batched scenario sweeps over the compiled evaluation
//!   engine: many hypotheticals evaluated in one pass on both the full and
//!   the compressed provenance, with allocation-free grid binding and the
//!   streaming fold engine every sweep surface is built on — plus the
//!   parallel fold-combine engines (`sweep_fold_par`,
//!   [`fold_program_sweep_par`]) that fan scenario spans across cores.
//! * [`folds`] — built-in O(1)-memory sweep aggregates ([`folds::MaxAbsError`],
//!   [`folds::ArgmaxImpact`], [`folds::Histogram`], [`folds::TopK`]), all
//!   mergeable ([`MergeFold`]) so the same fold runs sequentially or
//!   fanned across cores with bit-identical results.
//! * [`session`] — [`CobraSession`], the end-to-end pipeline of Fig. 4,
//!   including `compile_dag()`: algebraic compression of the compiled
//!   engines (shared-subterm DAG programs), composable with any cut.
//! * [`report`] — displayable compression reports.
//!
//! ## Quick start
//!
//! ```
//! use cobra_core::CobraSession;
//!
//! let mut session = CobraSession::from_text(
//!     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
//! ).unwrap();
//! session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
//! session.set_bound(2);
//! let report = session.compress().unwrap();
//! assert_eq!(report.compressed_size, 2); // p1, v merged per month
//! ```

// The scenario surface (sweeps, sets, folds, the session) is the crate's
// public API contract: every exported item there must carry docs, and CI
// rejects broken intra-doc links (`cargo doc` with `-D warnings`).
#![warn(missing_docs)]

pub mod apply;
pub mod assign;
pub mod brute;
pub mod budget;
pub mod cut;
pub mod dp;
pub mod error;
pub mod folds;
pub mod greedy;
pub mod groups;
pub mod hydrate;
pub mod multi;
pub mod planner;
pub mod report;
pub mod scenario;
pub mod scenario_set;
pub mod sensitivity;
pub mod session;
pub mod tree;

pub use apply::{apply_cut, apply_cuts, AppliedAbstraction};
pub use assign::{ResultComparison, ResultRow, SpeedupMeasurement};
pub use budget::{StopReason, SweepBudget, SweepOutcome};
pub use cut::{enumerate_cuts, Cut, MetaVar};
pub use dp::{optimize, pareto_frontier, DpSolution, ParetoPoint};
pub use error::{CoreError, Result};
pub use greedy::optimize_greedy;
pub use groups::GroupAnalysis;
pub use cobra_provenance::{
    DagOptions, DagStats, DeltaAction, DeltaError, DeltaOp, DeltaReport, PolyDelta,
};
pub use planner::{
    AlgebraicDag, BruteForce, CutFrontier, CutPlanner, DagOptimizer, ExactDp, FrontierPoint,
    Greedy, NodeStats, PlanContext, PlanSnapshot, PlannedCut, ProductCse,
};
pub use folds::{MergeFold, SweepFold};
pub use scenario::{
    fold_program_sweep, fold_program_sweep_budgeted, fold_program_sweep_par,
    fold_program_sweep_par_budgeted, measure_sweep_speedup, sweep_full_vs_compressed,
    CompiledComparison, ErrorShadow, F64Divergence, F64ErrorBound, F64ScenarioSweep, FoldItem,
    PairBinder, ScenarioSweep,
};
pub use scenario_set::{Axis, AxisOp, GridBuilder, RowBinder, ScenarioSet};
pub use sensitivity::{scenario_impacts, SensitivityReport};
pub use hydrate::{restore_session, restore_session_from_bytes, snapshot_session};
pub use multi::{
    forest_sweep, forest_sweep_fold, forest_sweep_fold_budgeted, forest_sweep_fold_par,
    forest_sweep_fold_par_budgeted, optimize_forest_descent, plan_forest_frontier, ForestFrontier,
    ForestFrontierPoint, ForestSolution,
};
pub use report::{frontier_table, CompressionReport, DagReport};
pub use session::{CobraSession, MetaSummaryRow, SessionInfo};
pub use tree::{AbstractionTree, NodeId, TreeSpec};
