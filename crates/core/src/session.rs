//! The COBRA session: the end-to-end pipeline of the paper's Fig. 4.
//!
//! ```text
//! Provenance Engine → Provenance Polynomials ┐
//! Bound, Abstraction Trees ─────────────────→ Provenance Compression
//!                                             → Abstracted Polynomials
//! Meta-variables + Assignment ──────────────→ Results (+ speedup)
//! ```
//!
//! A [`CobraSession`] owns the variable registry, the input polynomials,
//! the user's valuation, trees and bound; [`compress`](CobraSession::compress)
//! runs the optimizer, after which meta-variables can be inspected
//! ([`meta_summary`](CobraSession::meta_summary), the paper's Fig. 5
//! screen) and scenarios evaluated ([`assign`](CobraSession::assign)).
//! With tracing enabled the session records the "under the hood" steps the
//! demonstration walks through (§4).

use crate::apply::AppliedAbstraction;
use crate::assign::{self, ResultComparison, SpeedupMeasurement};
use crate::cut::MetaVar;
use crate::error::{CoreError, Result};
use crate::folds::MergeFold;
use crate::multi::{optimize_forest_descent, optimize_single_tree};
use crate::report::CompressionReport;
use crate::scenario::{
    measure_sweep_speedup, CompiledComparison, F64Divergence, F64ScenarioSweep, FoldItem,
    ScenarioSweep,
};
use crate::scenario_set::ScenarioSet;
use crate::tree::AbstractionTree;
use cobra_provenance::{BatchEvaluator, PolySet, ProvenanceStats, Valuation, VarRegistry};
use cobra_util::Rat;
use std::cell::OnceCell;

/// One row of the meta-variable screen: the meta-variable, the original
/// variables it groups with their base values, and the default (average).
#[derive(Clone, Debug)]
pub struct MetaSummaryRow {
    /// Meta-variable name.
    pub name: String,
    /// `(leaf name, base value)` for each grouped variable.
    pub leaves: Vec<(String, Rat)>,
    /// Default value = average of the leaves' base values.
    pub default_value: Rat,
}

/// An interactive COBRA session (Fig. 4).
pub struct CobraSession {
    reg: VarRegistry,
    polys: PolySet<Rat>,
    base_valuation: Valuation<Rat>,
    trees: Vec<AbstractionTree>,
    bound: Option<u64>,
    /// Exact compiled engine over the full provenance. The input
    /// polynomials never change after construction, so this is compiled
    /// once per session (lazily, on first compression) and *shared* with
    /// every [`Compressed`] state — recompressing under a new bound only
    /// compiles the compressed side.
    full_rat: OnceCell<BatchEvaluator<Rat>>,
    /// `f64` shadow of the full-side engine for the timing fast path,
    /// likewise session-invariant and built on first use.
    full_f64: OnceCell<BatchEvaluator<f64>>,
    compressed: Option<Compressed>,
    trace: Vec<String>,
    trace_enabled: bool,
}

struct Compressed {
    applied: AppliedAbstraction<Rat>,
    cuts_display: Vec<String>,
    /// Exact batched engines over the full and compressed provenance; the
    /// full side shares the session's cached program (cheap `Arc` clone),
    /// only the compressed side is compiled per compression.
    engines: CompiledComparison,
    /// `f64` shadow of the compressed engine for the timing fast path,
    /// built lazily on the first speedup measurement (assign/sweep-only
    /// sessions never pay for the copy).
    comp_f64: OnceCell<BatchEvaluator<f64>>,
}

impl CobraSession {
    /// Starts a session over polynomials produced by any provenance engine
    /// (the registry must be the one the polynomials were built against).
    pub fn new(reg: VarRegistry, polys: PolySet<Rat>) -> CobraSession {
        CobraSession {
            reg,
            polys,
            base_valuation: Valuation::with_default(Rat::ONE),
            trees: Vec::new(),
            bound: None,
            full_rat: OnceCell::new(),
            full_f64: OnceCell::new(),
            compressed: None,
            trace: Vec::new(),
            trace_enabled: false,
        }
    }

    /// The session-invariant compiled engine over the full provenance
    /// (compiled on first use, shared by every compression).
    fn full_engine(&self) -> &BatchEvaluator<Rat> {
        self.full_rat
            .get_or_init(|| BatchEvaluator::compile(&self.polys))
    }

    /// The `f64` timing shadows: session-cached full side, per-compression
    /// compressed side.
    fn f64_engines<'a>(
        &'a self,
        state: &'a Compressed,
    ) -> (&'a BatchEvaluator<f64>, &'a BatchEvaluator<f64>) {
        let full = self.full_f64.get_or_init(|| {
            BatchEvaluator::new(self.full_engine().program().to_f64_program())
        });
        let compressed = state.comp_f64.get_or_init(|| {
            BatchEvaluator::new(state.engines.compressed.program().to_f64_program())
        });
        (full, compressed)
    }

    /// Parses polynomials from the text interchange format and starts a
    /// session (the "any provenance engine" entry point).
    pub fn from_text(polys: &str) -> Result<CobraSession> {
        let mut reg = VarRegistry::new();
        let set = cobra_provenance::parse_polyset(polys, &mut reg).map_err(|e| {
            CoreError::Session(format!("polynomial parse failed: {e}"))
        })?;
        Ok(CobraSession::new(reg, set))
    }

    /// Enables step tracing (the demo's "under the hood" view).
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// The recorded trace.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    fn log(&mut self, msg: impl FnOnce() -> String) {
        if self.trace_enabled {
            self.trace.push(msg());
        }
    }

    /// The variable registry.
    pub fn registry(&self) -> &VarRegistry {
        &self.reg
    }

    /// Mutable registry access (for building valuations by name).
    pub fn registry_mut(&mut self) -> &mut VarRegistry {
        &mut self.reg
    }

    /// The input polynomials.
    pub fn polynomials(&self) -> &PolySet<Rat> {
        &self.polys
    }

    /// Sets the default assignment of the provenance variables (the
    /// "original values"; defaults to the all-ones valuation meaning "no
    /// change").
    pub fn set_base_valuation(&mut self, val: Valuation<Rat>) {
        self.base_valuation = val;
    }

    /// The current base valuation.
    pub fn base_valuation(&self) -> &Valuation<Rat> {
        &self.base_valuation
    }

    /// Registers an abstraction tree.
    pub fn add_tree(&mut self, tree: AbstractionTree) {
        self.compressed = None;
        self.trees.push(tree);
    }

    /// Parses and registers an abstraction tree from the compact text
    /// syntax (`Plans(Standard(p1,p2), …)`).
    pub fn add_tree_text(&mut self, src: &str) -> Result<()> {
        let tree = AbstractionTree::parse(src, &mut self.reg)?;
        self.add_tree(tree);
        Ok(())
    }

    /// The registered trees.
    pub fn trees(&self) -> &[AbstractionTree] {
        &self.trees
    }

    /// Sets the bound over the compressed provenance size.
    pub fn set_bound(&mut self, bound: u64) {
        self.compressed = None;
        self.bound = Some(bound);
    }

    /// Runs the compression: the exact DP for a single tree, coordinate
    /// descent for a forest.
    ///
    /// # Errors
    /// `Session` if trees/bound are missing; `InfeasibleBound` if no
    /// abstraction fits.
    pub fn compress(&mut self) -> Result<CompressionReport> {
        let bound = self
            .bound
            .ok_or_else(|| CoreError::Session("set_bound must be called first".into()))?;
        if self.trees.is_empty() {
            return Err(CoreError::Session("no abstraction tree registered".into()));
        }
        let full_stats = ProvenanceStats::compute(&self.polys);
        self.log(|| format!("input: {full_stats}"));
        let trees: Vec<&AbstractionTree> = self.trees.iter().collect();
        let (cuts, applied) = if trees.len() == 1 {
            let (sol, applied) =
                optimize_single_tree(&self.polys, trees[0], bound, &mut self.reg)?;
            (sol.cuts, applied)
        } else {
            let sol =
                optimize_forest_descent(&self.polys, &trees, bound, &mut self.reg, 32)?;
            let pairs: Vec<(&AbstractionTree, &crate::cut::Cut)> =
                trees.iter().copied().zip(sol.cuts.iter()).collect();
            let applied = crate::apply::apply_cuts(&self.polys, &pairs, &mut self.reg);
            (sol.cuts, applied)
        };
        let cuts_display: Vec<String> = self
            .trees
            .iter()
            .zip(&cuts)
            .map(|(t, c)| format!("{}: {}", t.name(), c.display(t)))
            .collect();
        for line in &cuts_display {
            let line = line.clone();
            self.log(move || format!("chosen cut — {line}"));
        }
        self.log(|| {
            format!(
                "compressed {} → {} monomials",
                applied.original_size, applied.compressed_size
            )
        });
        let report = CompressionReport {
            bound,
            original_size: applied.original_size as u64,
            compressed_size: applied.compressed_size as u64,
            original_vars: full_stats.distinct_vars,
            compressed_vars: applied.distinct_vars(),
            cuts: cuts_display.clone(),
            speedup: None,
        };
        // The full-side program is session-invariant: reuse the cached
        // engine (an `Arc` clone) and compile only the compressed side.
        let engines = CompiledComparison::from_engines(
            self.full_engine().clone(),
            BatchEvaluator::compile(&applied.compressed),
        );
        self.compressed = Some(Compressed {
            applied,
            cuts_display,
            engines,
            comp_f64: OnceCell::new(),
        });
        Ok(report)
    }

    fn compressed_state(&self) -> Result<&Compressed> {
        self.compressed
            .as_ref()
            .ok_or_else(|| CoreError::Session("compress must be called first".into()))
    }

    /// The compressed polynomials.
    pub fn compressed_polynomials(&self) -> Result<&PolySet<Rat>> {
        Ok(&self.compressed_state()?.applied.compressed)
    }

    /// The applied abstraction (substitution + meta-variables).
    pub fn abstraction(&self) -> Result<&AppliedAbstraction<Rat>> {
        Ok(&self.compressed_state()?.applied)
    }

    /// The meta-variable screen (paper Fig. 5): every meta-variable with
    /// its grouped originals and the average default.
    pub fn meta_summary(&self) -> Result<Vec<MetaSummaryRow>> {
        let state = self.compressed_state()?;
        let fallback = self
            .base_valuation
            .default_value()
            .copied()
            .unwrap_or(Rat::ONE);
        Ok(state
            .applied
            .meta_vars
            .iter()
            .map(|meta: &MetaVar| {
                let leaves: Vec<(String, Rat)> = meta
                    .leaves
                    .iter()
                    .map(|&l| {
                        (
                            self.reg.name(l).to_owned(),
                            self.base_valuation.get(l).unwrap_or(fallback),
                        )
                    })
                    .collect();
                let sum: Rat = leaves.iter().map(|(_, v)| *v).sum();
                MetaSummaryRow {
                    name: meta.name.clone(),
                    default_value: sum / Rat::int(leaves.len() as i64),
                    leaves,
                }
            })
            .collect())
    }

    /// Evaluates a single **leaf-level** scenario on both the full and the
    /// compressed provenance (the scenario is projected onto the
    /// meta-variables by group averaging) and returns the side-by-side
    /// results. Accepts anything convertible to a one-scenario
    /// [`ScenarioSet`] — typically `&Valuation<Rat>`.
    ///
    /// # Errors
    /// `Session` if `compress` has not run or the set does not contain
    /// exactly one scenario (use [`sweep`](Self::sweep) for families).
    pub fn assign(&self, scenario: impl Into<ScenarioSet>) -> Result<ResultComparison> {
        // A one-scenario sweep: the single-assignment screen runs through
        // the same compiled engine as the batched explorer.
        let set = scenario.into();
        if set.len() != 1 {
            return Err(CoreError::Session(format!(
                "assign takes exactly one scenario, got {}; use sweep for families",
                set.len()
            )));
        }
        Ok(self.sweep(set)?.comparison(0))
    }

    /// Evaluates a whole family of **leaf-level** scenarios in one
    /// compiled pass over both the full and the compressed provenance (the
    /// interactive explorer's bulk what-if screen). Accepts anything
    /// convertible to a [`ScenarioSet`]: grids and perturbation families
    /// stream straight into the batch kernels without materializing
    /// per-scenario valuations, flat `&[Valuation]` slices keep working.
    /// Results are exact and ordered like the set's enumeration.
    ///
    /// This **materializes** the O(scenarios × polys) result matrix. For
    /// families too large to hold (10⁶–10⁷-scenario grids), aggregate
    /// through [`sweep_fold`](Self::sweep_fold) instead, or trade
    /// exactness for lane-kernel speed with [`sweep_f64`](Self::sweep_f64).
    pub fn sweep(&self, scenarios: impl Into<ScenarioSet>) -> Result<ScenarioSweep> {
        let state = self.compressed_state()?;
        Ok(state.engines.sweep(
            &state.applied.meta_vars,
            &self.base_valuation,
            &scenarios.into(),
        ))
    }

    /// Streams a scenario family through both compiled engines and folds
    /// each scenario's **exact** results into an accumulator, without
    /// ever materializing the result matrix: the aggregate hypothetical
    /// questions the paper motivates — worst-case abstraction error,
    /// argmax impact, outcome histograms — run over 10⁷-scenario grids in
    /// O(1) output memory ([`folds`](crate::folds) ships the common
    /// aggregates). `f` receives each scenario as a [`FoldItem`] in
    /// enumeration order; the rows it borrows are reused block buffers,
    /// so copy out whatever must outlive the call.
    ///
    /// Results are identical to [`sweep`](Self::sweep) — `sweep` *is*
    /// this fold with an appending accumulator.
    ///
    /// ```
    /// use cobra_core::{folds, CobraSession, ScenarioSet};
    /// use cobra_core::folds::MaxAbsError;
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.set_bound(2);
    /// session.compress().unwrap();
    /// let m3 = session.registry_mut().var("m3");
    /// let rat = |s: &str| Rat::parse(s).unwrap();
    /// let grid = ScenarioSet::grid()
    ///     .axis([m3], [rat("0.8"), rat("1"), rat("1.2")])
    ///     .build()
    ///     .unwrap();
    ///
    /// // Count the lossless scenarios with a plain closure fold…
    /// let exact_points = session
    ///     .sweep_fold(&grid, 0usize, |n, item| {
    ///         n + usize::from(item.full == item.compressed)
    ///     })
    ///     .unwrap();
    /// assert_eq!(exact_points, 3); // m3 is outside the tree: all exact
    ///
    /// // …or plug in a built-in aggregate via `folds::step`.
    /// let worst = session
    ///     .sweep_fold(&grid, MaxAbsError::new(), folds::step)
    ///     .unwrap();
    /// assert_eq!(worst.max_rel_error, 0.0);
    /// ```
    ///
    /// # Errors
    /// `Session` if `compress` has not run.
    pub fn sweep_fold<A>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        init: A,
        f: impl FnMut(A, FoldItem<'_, Rat>) -> A,
    ) -> Result<A> {
        let state = self.compressed_state()?;
        Ok(state.engines.sweep_fold(
            &state.applied.meta_vars,
            &self.base_valuation,
            &scenarios.into(),
            init,
            f,
        ))
    }

    /// [`sweep_fold`](Self::sweep_fold) **fanned across cores**: the
    /// scenario family is split into contiguous per-worker spans, each
    /// worker thread owns its own binder, batch buffers and a replica of
    /// `fold` ([`MergeFold::init`]), and the partial accumulators merge
    /// back in ascending span order ([`MergeFold::merge`]) — so the
    /// result is **bit-identical** to the sequential
    /// `sweep_fold(set, fold, folds::step)` at any thread count
    /// (`COBRA_THREADS`, or
    /// [`par::with_threads`](cobra_util::par::with_threads) in tests).
    /// This lifts the fold path's single-thread bind bottleneck: binding
    /// dominated compressed-side sweeps, and it now scales with cores.
    ///
    /// Any [`MergeFold`] plugs in, including tuple compositions:
    ///
    /// ```
    /// use cobra_core::folds::{MaxAbsError, SweepFold, TopK};
    /// use cobra_core::{CobraSession, ScenarioSet};
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.set_bound(2);
    /// session.compress().unwrap();
    /// let m3 = session.registry_mut().var("m3");
    /// let p1 = session.registry_mut().var("p1");
    /// let rat = |s: &str| Rat::parse(s).unwrap();
    /// let grid = ScenarioSet::grid()
    ///     .axis([m3], [rat("0.8"), rat("1"), rat("1.2")])
    ///     .axis([p1], [rat("1"), rat("1.1")])
    ///     .build()
    ///     .unwrap();
    ///
    /// // worst-case error and top-2 revenue scenarios in one parallel pass
    /// let (worst, top) = session
    ///     .sweep_fold_par(&grid, (MaxAbsError::new(), TopK::new(0, 2)))
    ///     .unwrap();
    /// let top = top.finish();
    /// assert!(worst.max_rel_error > 0.0); // p1 moves alone in its group
    /// assert_eq!(top.len(), 2);
    /// // identical to the sequential fold engine, bit for bit
    /// let seq = session
    ///     .sweep_fold(&grid, MaxAbsError::new(), cobra_core::folds::step)
    ///     .unwrap();
    /// assert_eq!(worst.max_rel_error, seq.max_rel_error);
    /// assert_eq!(worst.argmax_rel, seq.argmax_rel);
    /// ```
    ///
    /// # Errors
    /// `Session` if `compress` has not run.
    pub fn sweep_fold_par<F: MergeFold + Send + Sync>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        fold: F,
    ) -> Result<F> {
        let state = self.compressed_state()?;
        Ok(state.engines.sweep_fold_par(
            &state.applied.meta_vars,
            &self.base_valuation,
            &scenarios.into(),
            fold,
        ))
    }

    /// [`sweep_fold`](Self::sweep_fold) on the **approximate `f64` fast
    /// path**: scenarios bind as `f64` rows and every block runs through
    /// the lane-blocked SIMD kernel, making huge grids aggregate at the
    /// `f64` per-scenario cost instead of exact rational arithmetic — the
    /// E10 experiment measures 0.12 µs vs 8.2 µs per scenario (~67×) on
    /// the paper example at 10⁶ grid points.
    ///
    /// The trade-off is floating-point rounding: coefficients, bound
    /// rows and evaluation all round to nearest. The engine therefore
    /// re-evaluates up to 16 evenly spaced scenarios on the exact
    /// engines and returns the largest observed relative deviation as an
    /// [`F64Divergence`] next to the fold output — a measured spot check
    /// (not a proven worst-case bound) that surfaces catastrophic
    /// cancellation if a workload ever triggers it. Exactness-critical
    /// sweeps should use [`sweep_fold`](Self::sweep_fold).
    ///
    /// # Errors
    /// `Session` if `compress` has not run.
    pub fn sweep_fold_f64<A>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        init: A,
        f: impl FnMut(A, FoldItem<'_, f64>) -> A,
    ) -> Result<(A, F64Divergence)> {
        let state = self.compressed_state()?;
        Ok(state.engines.sweep_fold_f64(
            self.f64_engines(state),
            &state.applied.meta_vars,
            &self.base_valuation,
            &scenarios.into(),
            init,
            f,
        ))
    }

    /// [`sweep_fold_f64`](Self::sweep_fold_f64) **fanned across cores**:
    /// the parallel `f64` fast path — per-worker binders, lane-kernel
    /// scratch and fold replicas, merged in ascending span order, with
    /// the divergence probes distributed to the workers whose spans
    /// contain them. Fold output and [`F64Divergence`] are bit-identical
    /// to the sequential engine at any thread count; at 10⁷ scenarios
    /// this is the fastest aggregate surface in the crate.
    ///
    /// ```
    /// use cobra_core::folds::{self, Histogram, SweepFold};
    /// use cobra_core::{CobraSession, ScenarioSet};
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.set_bound(2);
    /// session.compress().unwrap();
    /// let m3 = session.registry_mut().var("m3");
    /// let rat = |s: &str| Rat::parse(s).unwrap();
    /// let grid = ScenarioSet::grid()
    ///     .axis([m3], [rat("0.8"), rat("0.9"), rat("1"), rat("1.1")])
    ///     .build()
    ///     .unwrap();
    ///
    /// let (hist, div) = session
    ///     .sweep_fold_f64_par(&grid, Histogram::new(0, 0.0, 2000.0, 8))
    ///     .unwrap();
    /// assert_eq!(hist.total(), grid.len() as u64);
    /// assert!(div.max_rel_divergence < 1e-12);
    /// // bit-identical to the sequential f64 fold engine
    /// let (seq, _) = session
    ///     .sweep_fold_f64(&grid, Histogram::new(0, 0.0, 2000.0, 8), folds::step)
    ///     .unwrap();
    /// assert_eq!(hist.counts, seq.counts);
    /// ```
    ///
    /// # Errors
    /// `Session` if `compress` has not run.
    pub fn sweep_fold_f64_par<F: MergeFold + Send + Sync>(
        &self,
        scenarios: impl Into<ScenarioSet>,
        fold: F,
    ) -> Result<(F, F64Divergence)> {
        let state = self.compressed_state()?;
        Ok(state.engines.sweep_fold_f64_par(
            self.f64_engines(state),
            &state.applied.meta_vars,
            &self.base_valuation,
            &scenarios.into(),
            fold,
        ))
    }

    /// Evaluates a scenario family approximately (`f64` lane kernel on
    /// both sides) and materializes the result matrix — the interactive
    /// default for large grids where exact rationals are too slow but
    /// per-scenario results are still wanted. Built on
    /// [`sweep_fold_f64`](Self::sweep_fold_f64) with an appending fold;
    /// the returned [`F64ScenarioSweep`] carries the measured
    /// exact-vs-approximate [`F64Divergence`] of the run.
    ///
    /// ```
    /// use cobra_core::{CobraSession, ScenarioSet};
    /// use cobra_util::Rat;
    ///
    /// let mut session = CobraSession::from_text(
    ///     "P1 = 208.8*p1*m1 + 240*p1*m3 + 42*v*m1 + 24.2*v*m3",
    /// ).unwrap();
    /// session.add_tree_text("Plans(Standard(p1,p2), v)").unwrap();
    /// session.set_bound(2);
    /// session.compress().unwrap();
    /// let m3 = session.registry_mut().var("m3");
    /// let rat = |s: &str| Rat::parse(s).unwrap();
    /// let grid = ScenarioSet::grid()
    ///     .axis([m3], [rat("0.8"), rat("1"), rat("1.2")])
    ///     .build()
    ///     .unwrap();
    ///
    /// let exact = session.sweep(&grid).unwrap();
    /// let approx = session.sweep_f64(&grid).unwrap();
    /// assert_eq!(approx.len(), exact.len());
    /// // the f64 shadow tracks the exact path to rounding error
    /// for i in 0..exact.len() {
    ///     for (e, a) in exact.full_row(i).iter().zip(approx.full_row(i)) {
    ///         assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs());
    ///     }
    /// }
    /// assert!(approx.divergence().max_rel_divergence < 1e-12);
    /// ```
    ///
    /// # Errors
    /// `Session` if `compress` has not run.
    pub fn sweep_f64(&self, scenarios: impl Into<ScenarioSet>) -> Result<F64ScenarioSweep> {
        let state = self.compressed_state()?;
        let set = scenarios.into();
        let n = set.len();
        let np = state.engines.full.program().num_polys();
        let init = (Vec::with_capacity(n * np), Vec::with_capacity(n * np));
        let ((full, compressed), divergence) =
            self.sweep_fold_f64(set, init, |(mut f, mut c), item| {
                f.extend_from_slice(item.full);
                c.extend_from_slice(item.compressed);
                (f, c)
            })?;
        Ok(F64ScenarioSweep {
            labels: state.engines.full.program().labels().to_vec(),
            num_scenarios: n,
            full,
            compressed,
            divergence,
        })
    }

    /// The full-provenance results under the session's base valuation
    /// (one `f64` per result tuple, label order) — the reference row
    /// impact folds compare against
    /// ([`folds::ArgmaxImpact::against`](crate::folds::ArgmaxImpact::against)).
    ///
    /// # Errors
    /// `Session` if `compress` has not run.
    pub fn baseline_results(&self) -> Result<Vec<f64>> {
        let state = self.compressed_state()?;
        let prog = state.engines.full.program();
        let row = prog
            .bind(&self.base_valuation)
            .expect("base valuation must be total");
        Ok(prog.eval_scenario(&row).iter().map(|r| r.to_f64()).collect())
    }

    /// Evaluates a single **meta-level** assignment directly (the user
    /// typed values into the Fig. 5 screen). The full provenance is
    /// evaluated under the expansion of the meta values to their leaves,
    /// so the comparison isolates compression loss (zero here by
    /// construction). Scenario-set levels resolve against the default
    /// meta-valuation (group averages over the base).
    ///
    /// # Errors
    /// `Session` if `compress` has not run or the set does not contain
    /// exactly one scenario.
    pub fn assign_meta(&self, meta_scenario: impl Into<ScenarioSet>) -> Result<ResultComparison> {
        let state = self.compressed_state()?;
        let set = meta_scenario.into();
        if set.len() != 1 {
            return Err(CoreError::Session(format!(
                "assign_meta takes exactly one scenario, got {}",
                set.len()
            )));
        }
        let defaults =
            assign::default_meta_valuation(&state.applied.meta_vars, &self.base_valuation);
        let meta_base = self.base_valuation.overridden_by(&defaults);
        let meta_val = meta_base.overridden_by(&set.scenario_valuation(0, &meta_base));
        let leaf_val = self
            .base_valuation
            .overridden_by(&assign::expand_to_leaves(&state.applied.meta_vars, &meta_val));
        let full_row = state
            .engines
            .full
            .program()
            .bind(&leaf_val)
            .expect("leaf valuation must be total");
        let meta_row = state
            .engines
            .compressed
            .program()
            .bind(&meta_val)
            .expect("meta valuation must be total");
        let full = state.engines.full.program().eval_scenario(&full_row);
        let compressed = state.engines.compressed.program().eval_scenario(&meta_row);
        Ok(crate::scenario::compare_rows(
            state.engines.full.program().labels(),
            full,
            compressed,
        ))
    }

    /// Measures the assignment speedup (paper §4) on the `f64` fast path —
    /// a one-scenario batch through the compiled engines.
    pub fn measure_speedup(
        &self,
        scenario: &Valuation<Rat>,
        warmup: usize,
        runs: usize,
    ) -> Result<SpeedupMeasurement> {
        self.measure_batch_speedup(scenario, warmup, runs)
    }

    /// Measures the assignment speedup over a whole scenario family: both
    /// sides are evaluated by the same compiled batch engine, so the
    /// full-vs-compressed comparison isolates provenance size (the paper's
    /// variable) from evaluation machinery. Accepts anything convertible
    /// to a [`ScenarioSet`]; rows are bound once up front (timing covers
    /// evaluation only).
    pub fn measure_batch_speedup(
        &self,
        scenarios: impl Into<ScenarioSet>,
        warmup: usize,
        runs: usize,
    ) -> Result<SpeedupMeasurement> {
        let state = self.compressed_state()?;
        let (full_f64, compressed_f64) = self.f64_engines(state);
        let set = scenarios.into();
        // Exact projection, f64 rows: the shadow programs share the exact
        // programs' variable numbering.
        let (full_rows, comp_rows) = state.engines.bind_rows(
            &state.applied.meta_vars,
            &self.base_valuation,
            &set,
            |r| r.to_f64(),
        );
        Ok(measure_sweep_speedup(
            full_f64,
            compressed_f64,
            &full_rows,
            &comp_rows,
            warmup,
            runs,
        ))
    }

    /// A full report, optionally including a speedup measurement.
    pub fn report(&self, speedup: Option<SpeedupMeasurement>) -> Result<CompressionReport> {
        let state = self.compressed_state()?;
        Ok(CompressionReport {
            bound: self.bound.unwrap_or(0),
            original_size: state.applied.original_size as u64,
            compressed_size: state.applied.compressed_size as u64,
            original_vars: self.polys.distinct_vars().len(),
            compressed_vars: state.applied.distinct_vars(),
            cuts: state.cuts_display.clone(),
            speedup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const PAPER_POLYS: &str = "\
P1 = 208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 \
   + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
P2 = 77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3";

    const FIG2_TREE: &str =
        "Plans(Standard(p1,p2), Special(Y(y1,y2,y3), F(f1,f2), v), Business(SB(b1,b2), e))";

    fn rat(s: &str) -> Rat {
        Rat::parse(s).unwrap()
    }

    fn session_with_bound(bound: u64) -> CobraSession {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        s.set_bound(bound);
        s
    }

    #[test]
    fn pipeline_end_to_end() {
        let mut s = session_with_bound(6);
        s.enable_trace();
        let report = s.compress().unwrap();
        assert_eq!(report.original_size, 14);
        assert_eq!(report.compressed_size, 6);
        assert!(report.cuts[0].contains("Business"));
        assert!(!s.trace().is_empty());
        // meta screen: 4 rows ({p1, p2, Special, Business} — the optimal
        // size-6 cut), Business groups b1,b2,e with default 1
        let metas = s.meta_summary().unwrap();
        assert_eq!(metas.len(), 4);
        let business = metas.iter().find(|m| m.name == "Business").unwrap();
        assert_eq!(business.leaves.len(), 3);
        assert_eq!(business.default_value, Rat::ONE);
    }

    #[test]
    fn missing_inputs_are_session_errors() {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        assert!(matches!(s.compress(), Err(CoreError::Session(_))));
        s.set_bound(6);
        assert!(matches!(s.compress(), Err(CoreError::Session(_))));
        assert!(matches!(s.meta_summary(), Err(CoreError::Session(_))));
    }

    #[test]
    fn assign_reports_march_discount() {
        // the paper's first hypothetical: price of all plans −20% in March
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let scenario = Valuation::with_default(Rat::ONE).bind(m3, rat("0.8"));
        let cmp = s.assign(&scenario).unwrap();
        // month variables are outside the tree → compression is lossless
        assert!(cmp.is_exact());
        // P1 = m1-part + 0.8 × m3-part = 454.1 + 0.8·451.15
        assert_eq!(cmp.rows[0].full, rat("454.1") + rat("0.8") * rat("451.15"));
    }

    #[test]
    fn assign_meta_is_always_internally_consistent() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let business = s.registry_mut().var("Business");
        let scenario = Valuation::new().bind(business, rat("1.1"));
        let cmp = s.assign_meta(&scenario).unwrap();
        // meta-level assignment has no projection loss by construction
        assert!(cmp.is_exact());
        assert_eq!(
            cmp.rows[1].full,
            (rat("77.9") + rat("52.2") + rat("69.7")) * rat("1.1")
                + (rat("80.5") + rat("56.5") + rat("100.65")) * rat("1.1")
        );
    }

    #[test]
    fn speedup_measurement_runs() {
        let mut s = session_with_bound(4);
        s.compress().unwrap();
        let m = s
            .measure_speedup(&Valuation::with_default(Rat::ONE), 1, 3)
            .unwrap();
        assert_eq!(m.full_size, 14);
        assert_eq!(m.compressed_size, 4);
    }

    #[test]
    fn sweep_batches_many_scenarios_exactly() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let b1 = s.registry_mut().var("b1");
        let scenarios: Vec<Valuation<Rat>> = (0..20)
            .map(|i: i128| {
                Valuation::with_default(Rat::ONE)
                    .bind(m3, Rat::ONE - Rat::new(i, 100))
                    .bind(b1, Rat::ONE + Rat::new(i, 50))
            })
            .collect();
        let sweep = s.sweep(&scenarios).unwrap();
        assert_eq!(sweep.len(), 20);
        // every batched row equals the single-assignment path
        for (scenario, cmp) in scenarios.iter().zip(sweep.comparisons()) {
            let single = s.assign(scenario).unwrap();
            assert_eq!(single.rows, cmp.rows);
        }
        // scenario 0 leaves b1 at 1 → aligned, exact; later ones perturb
        // b1 alone inside the Business group → lossy
        assert!(sweep.comparison(0).is_exact());
        assert!(!sweep.comparison(10).is_exact());
    }

    #[test]
    fn grid_sweep_through_session_matches_assign() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let b1 = s.registry_mut().var("b1");
        let grid = ScenarioSet::grid()
            .axis([m3], (0..5).map(|i| Rat::ONE - Rat::new(i, 20)).collect::<Vec<_>>())
            .axis([b1], [rat("1"), rat("1.1")])
            .build()
            .unwrap();
        let sweep = s.sweep(&grid).unwrap();
        assert_eq!(sweep.len(), 10);
        for i in 0..grid.len() {
            let materialized = grid.scenario_valuation(i, s.base_valuation());
            let single = s.assign(&materialized).unwrap();
            assert_eq!(single.rows, sweep.comparison(i).rows, "scenario {i}");
        }
        // grids feed the timing path too
        let m = s.measure_batch_speedup(&grid, 0, 1).unwrap();
        assert_eq!(m.full_size, 14);
    }

    #[test]
    fn sweep_fold_aggregates_without_materializing() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let b1 = s.registry_mut().var("b1");
        let grid = ScenarioSet::grid()
            .axis([m3], (0..5).map(|i| Rat::ONE - Rat::new(i, 20)).collect::<Vec<_>>())
            .axis([b1], [rat("1"), rat("1.1")])
            .build()
            .unwrap();
        let sweep = s.sweep(&grid).unwrap();
        // a max-rel-error fold over the stream equals the matrix statistic
        let max_rel = s
            .sweep_fold(&grid, 0.0f64, |acc: f64, item| {
                item.full
                    .iter()
                    .zip(item.compressed)
                    .map(|(f, c)| {
                        if f.is_zero() {
                            0.0
                        } else {
                            ((*f - *c).abs() / f.abs()).to_f64()
                        }
                    })
                    .fold(acc, f64::max)
            })
            .unwrap();
        assert_eq!(max_rel, sweep.max_rel_error());
        // built-in folds plug in through folds::step (MaxAbsError
        // aggregates in f64, so it matches the exact statistic to rounding)
        let worst = s
            .sweep_fold(&grid, crate::folds::MaxAbsError::new(), crate::folds::step)
            .unwrap();
        assert!((worst.max_rel_error - sweep.max_rel_error()).abs() < 1e-12);
        assert_eq!(worst.argmax_rel, Some(9));
        let impacts = s
            .sweep_fold(
                &grid,
                crate::folds::ArgmaxImpact::against(s.baseline_results().unwrap()),
                crate::folds::step,
            )
            .unwrap()
            .best();
        // the largest move is the deepest discount with b1 still at 1
        // (scenario 8): bumping b1 offsets part of the March discount
        assert_eq!(impacts.map(|(i, _)| i), Some(8));
    }

    #[test]
    fn sweep_f64_matches_exact_sweep_to_rounding() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let m3 = s.registry_mut().var("m3");
        let b1 = s.registry_mut().var("b1");
        let grid = ScenarioSet::grid()
            .axis([m3], (0..5).map(|i| Rat::ONE - Rat::new(i, 20)).collect::<Vec<_>>())
            .axis([b1], [rat("1"), rat("1.1")])
            .build()
            .unwrap();
        let exact = s.sweep(&grid).unwrap();
        let approx = s.sweep_f64(&grid).unwrap();
        assert_eq!(approx.len(), exact.len());
        assert_eq!(approx.num_polys(), exact.num_polys());
        assert_eq!(approx.labels(), exact.labels());
        for i in 0..exact.len() {
            for (e, a) in exact.full_row(i).iter().zip(approx.full_row(i)) {
                assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs().max(1.0));
            }
            for (e, a) in exact.compressed_row(i).iter().zip(approx.compressed_row(i)) {
                assert!((e.to_f64() - a).abs() <= 1e-9 * e.to_f64().abs().max(1.0));
            }
        }
        let div = approx.divergence();
        assert!(div.probed > 0);
        assert!(div.max_rel_divergence < 1e-12, "divergence {div:?}");
        // the lossy grid points show the same error signature in f64
        assert!((approx.max_rel_error() - exact.max_rel_error()).abs() < 1e-9);
        // streaming f64 fold agrees with the materialized f64 sweep
        let (count, div2) = s
            .sweep_fold_f64(&grid, 0usize, |n, item| {
                assert_eq!(item.full, approx.full_row(item.scenario));
                n + 1
            })
            .unwrap();
        assert_eq!(count, grid.len());
        assert_eq!(div2.probed, div.probed);
    }

    #[test]
    fn baseline_results_evaluate_the_base_valuation() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let base = s.baseline_results().unwrap();
        // all-ones base: P1 = 454.1 + 451.15, P2 = 199.8 + 237.65
        assert_eq!(base.len(), 2);
        assert!((base[0] - 905.25).abs() < 1e-9);
        assert!((base[1] - 437.45).abs() < 1e-9);
    }

    #[test]
    fn fold_surfaces_require_compression() {
        let s = CobraSession::from_text(PAPER_POLYS).unwrap();
        let scenario = Valuation::with_default(Rat::ONE);
        assert!(matches!(
            s.sweep_fold(&scenario, (), |(), _| ()),
            Err(CoreError::Session(_))
        ));
        assert!(matches!(
            s.sweep_fold_f64(&scenario, (), |(), _| ()),
            Err(CoreError::Session(_))
        ));
        assert!(matches!(s.sweep_f64(&scenario), Err(CoreError::Session(_))));
        assert!(matches!(s.baseline_results(), Err(CoreError::Session(_))));
    }

    #[test]
    fn assign_rejects_multi_scenario_sets() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let scenarios =
            [Valuation::with_default(Rat::ONE), Valuation::with_default(Rat::ONE)];
        assert!(matches!(s.assign(&scenarios[..]), Err(CoreError::Session(_))));
        assert!(matches!(
            s.assign_meta(&scenarios[..]),
            Err(CoreError::Session(_))
        ));
    }

    #[test]
    fn recompression_reuses_the_full_side_program() {
        let mut s = session_with_bound(6);
        s.compress().unwrap();
        let first = s.abstraction().unwrap().compressed.clone();
        let full_before: *const _ = s.compressed.as_ref().unwrap().engines.full.program();
        s.set_bound(4);
        s.compress().unwrap();
        let full_after: *const _ = s.compressed.as_ref().unwrap().engines.full.program();
        // same Arc'd program, not a recompilation
        assert_eq!(full_before, full_after);
        assert_ne!(first.total_monomials(), s.abstraction().unwrap().compressed.total_monomials());
    }

    #[test]
    fn batch_speedup_measurement_runs() {
        let mut s = session_with_bound(4);
        s.compress().unwrap();
        let scenarios: Vec<Valuation<Rat>> =
            (0..8).map(|_| Valuation::with_default(Rat::ONE)).collect();
        let m = s.measure_batch_speedup(&scenarios, 1, 3).unwrap();
        assert_eq!(m.full_size, 14);
        assert_eq!(m.compressed_size, 4);
        assert!(m.full_time > Duration::ZERO);
    }

    #[test]
    fn multi_tree_session() {
        let mut s = CobraSession::from_text(PAPER_POLYS).unwrap();
        s.add_tree_text(FIG2_TREE).unwrap();
        s.add_tree_text("Months(m1,m3)").unwrap();
        s.set_bound(2);
        let report = s.compress().unwrap();
        assert_eq!(report.compressed_size, 2);
        assert_eq!(report.cuts.len(), 2);
    }

    #[test]
    fn recompression_after_bound_change() {
        let mut s = session_with_bound(14);
        let r1 = s.compress().unwrap();
        assert_eq!(r1.compressed_size, 14); // leaf cut, no loss
        s.set_bound(4);
        let r2 = s.compress().unwrap();
        assert_eq!(r2.compressed_size, 4);
    }
}
